#!/bin/bash
# Regenerate every table and figure (HUS_SCALE=1000 by default).
set -u
cd /root/repo
BINS="table2_datasets fig1_active_edges fig7_hybrid fig8_prediction table3_runtime fig9_io fig10_threads fig11_devices ablation_alpha ablation_partitions ablation_synchrony exp_semi_external exp_memory_budget exp_high_diameter"
for b in $BINS; do
  echo "=== $b (start $(date +%H:%M:%S)) ==="
  ./target/release/$b > results/$b.txt 2>&1 && echo "ok" || echo "FAILED"
done
echo "ALL DONE $(date +%H:%M:%S)"
