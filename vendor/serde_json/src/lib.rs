//! Offline stand-in for `serde_json` over the vendored `serde` [`Value`]
//! data model: compact and pretty writers plus a recursive-descent
//! parser. Covers the subset of JSON the workspace emits (no exponents
//! are ever written, though the parser accepts them).

use serde::{DeError, Deserialize, Serialize};

pub use serde::Value;

/// Parse/serialize error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse a JSON string into the raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            // `{}` prints integral floats without a decimal point; both
            // forms are valid JSON and the parser reads them back.
            out.push_str(&format!("{f}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items.iter(), b"[]", |item, out, d| {
                write_value(item, out, indent, d)
            })
        }
        Value::Object(pairs) => {
            write_seq(out, indent, depth, pairs.iter(), b"{}", |(k, v), out, d| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, d);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    items: I,
    brackets: &[u8; 2],
    mut write_item: impl FnMut(I::Item, &mut String, usize),
) {
    out.push(brackets[0] as char);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets[1] as char);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {pos}", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("bad \\u code point".into()))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let start = *pos;
                let rest = std::str::from_utf8(&b[start..])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error("invalid number".into()))?;
    if text.is_empty() {
        return Err(Error(format!("expected value at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(n) = stripped.parse::<u64>() {
                if n > 0 {
                    return i64::try_from(n)
                        .map(|n| Value::I64(-n))
                        .map_err(|_| Error(format!("integer {text} out of range")));
                }
                return Ok(Value::U64(0));
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(parse_value_str("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value_str("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse_value_str("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse_value_str("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value_str("null").unwrap(), Value::Null);
        assert_eq!(parse_value_str("\"a\\nb\"").unwrap(), Value::Str("a\nb".to_string()));
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("xs".into(), Value::Array(vec![Value::U64(1), Value::I64(-2)])),
            ("s".into(), Value::Str("q\"uote".into())),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn nan_serializes_as_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }
}
