//! Offline stand-in for `criterion`, with the API shape the workspace's
//! benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short
//! calibration pass to size the batch, then `sample_size` timed batches,
//! and prints min/median/mean per-iteration times (plus throughput when
//! configured). No statistical outlier analysis, no HTML reports, no
//! baseline comparison — enough to eyeball regressions in an offline
//! container.

use std::time::{Duration, Instant};

/// Target time per sample batch during measurement.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// How benchmark input setup cost relates to the routine (mirrors
/// criterion's enum; this stand-in sizes batches the same way for all
/// variants except `PerIteration`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Cheap inputs: large batches.
    SmallInput,
    /// Expensive inputs: smaller batches.
    LargeInput,
    /// Re-create the input for every single call.
    PerIteration,
}

/// Work-per-iteration declaration for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size, throughput: None }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&name.into(), self.sample_size, None, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.throughput, f);
    }

    /// End the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the routine.
pub struct Bencher {
    /// Iterations to run in the current timed batch.
    iters: u64,
    /// Accumulated routine time for the current batch.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` back-to-back for the batch.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: how many iterations fit in the target sample time?
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({:.1} Melem/s)", n as f64 / median / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 / median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "{name:<40} min {}  median {}  mean {}{rate}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2}ms", secs * 1e3)
    } else {
        format!("{secs:8.3}s ")
    }
}

/// Declare a set of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_routine() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_with_batched_setup() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter_batched(
                || (0u64..100).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
