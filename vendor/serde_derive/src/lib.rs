//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io dependency set is unavailable in this build
//! environment, so the workspace vendors a minimal `serde` data model
//! (see `vendor/serde`) and this proc-macro derives its two traits for
//! the shapes the workspace actually uses:
//!
//! * structs with named fields (no generics, no `#[serde(...)]` attrs),
//! * enums whose variants are all unit variants.
//!
//! Anything else is rejected with a compile-time panic so a future
//! change that needs more serde surface fails loudly instead of
//! serializing garbage.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input turned out to be.
enum Shape {
    /// Named fields of a braced struct, in declaration order.
    Struct(Vec<String>),
    /// Unit variants of an enum, in declaration order.
    Enum(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "Self::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let inits: String =
                fields.iter().map(|f| format!("{f}: ::serde::from_field(v, \"{f}\")?,")).collect();
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok(Self::{v}),"))
                .collect();
            format!(
                "match ::serde::as_variant(v)? {{ {arms} other => \
                 ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
                 \"unknown variant `{{other}}` for {name}\"))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// Parse the derive input down to (type name, shape). Attributes and
/// visibility are skipped; generics are unsupported.
fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // `#[...]` / `#![...]` attribute: skip the bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if matches!(iter.peek(), Some(TokenTree::Punct(b)) if b.as_char() == '!') {
                    iter.next();
                }
                iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "pub" {
                    // Optional `pub(crate)` / `pub(super)` scope group.
                    if matches!(
                        iter.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        iter.next();
                    }
                } else if kw == "struct" || kw == "enum" {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(n)) => n.to_string(),
                        other => panic!("serde derive: expected type name, got {other:?}"),
                    };
                    // Everything up to the brace body; `<` would mean
                    // generics, which the stub does not support.
                    for tt2 in iter.by_ref() {
                        match tt2 {
                            TokenTree::Punct(p) if p.as_char() == '<' => {
                                panic!("serde derive stub: generic type `{name}` unsupported")
                            }
                            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                                let shape = if kw == "struct" {
                                    Shape::Struct(parse_named_fields(g.stream()))
                                } else {
                                    Shape::Enum(parse_unit_variants(g.stream()))
                                };
                                return (name, shape);
                            }
                            TokenTree::Punct(p) if p.as_char() == ';' => {
                                panic!("serde derive stub: tuple/unit struct `{name}` unsupported")
                            }
                            _ => {}
                        }
                    }
                    panic!("serde derive: no body found for `{name}`");
                }
            }
            _ => {}
        }
    }
    panic!("serde derive: no struct or enum found in input");
}

/// Field names of a braced struct body, tolerating attributes,
/// visibility, and commas nested inside generic argument lists.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Skip doc comments / attributes before the field.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let name = loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if matches!(
                        iter.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                    ) {
                        iter.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde derive: unexpected token {other:?} in struct body"),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type: ends at a comma outside any `<...>` nesting
        // (brackets and parens arrive pre-grouped in the token tree).
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// Variant names of an enum body; any variant with a payload is
/// rejected.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let v = id.to_string();
                match iter.next() {
                    None => {
                        variants.push(v);
                        break;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(v),
                    Some(TokenTree::Group(_)) => {
                        panic!("serde derive stub: enum variant `{v}` with payload unsupported")
                    }
                    Some(other) => {
                        panic!("serde derive: unexpected token {other:?} after variant `{v}`")
                    }
                }
            }
            Some(other) => panic!("serde derive: unexpected token {other:?} in enum body"),
        }
    }
    variants
}
