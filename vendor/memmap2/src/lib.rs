//! Offline stand-in for `memmap2`.
//!
//! Without the real crate there is no safe portable `mmap(2)` wrapper,
//! so [`Mmap`] emulates a read-only map by reading the whole file into
//! memory at `map` time. Semantics relied on by this workspace hold:
//! `Deref<Target = [u8]>`, a stable `len`, and contents frozen at map
//! time (the builders never rewrite a published file). The difference is
//! residency: pages are always resident rather than demand-paged, which
//! only matters for the paper's *modeled* I/O, tracked separately by
//! `IoTracker` at the logical access layer.

use std::fs::File;
use std::ops::Deref;
use std::os::unix::fs::FileExt;

/// Read-only "memory map" of an entire file.
pub struct Mmap {
    data: Vec<u8>,
}

impl Mmap {
    /// Snapshot `file`'s current contents.
    ///
    /// # Safety
    ///
    /// Unsafe only for signature compatibility with the real crate
    /// (where an underlying file mutation would alias mapped memory);
    /// this emulation copies, so the call is actually safe.
    pub unsafe fn map(file: &File) -> std::io::Result<Mmap> {
        // Positional reads: independent of (and not disturbing) the
        // caller's file cursor, like a real map.
        let len = file.metadata()?.len() as usize;
        let mut data = vec![0u8; len];
        file.read_exact_at(&mut data, 0)?;
        Ok(Mmap { data })
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Seek, SeekFrom, Write};

    #[test]
    fn maps_whole_file_regardless_of_cursor() {
        let dir = std::env::temp_dir().join(format!("memmap2-stub-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        let mut f = File::create(&path).unwrap();
        f.write_all(&[1, 2, 3, 4]).unwrap();
        drop(f);
        let mut f = File::open(&path).unwrap();
        f.seek(SeekFrom::Start(2)).unwrap();
        let m = unsafe { Mmap::map(&f) }.unwrap();
        assert_eq!(&m[..], &[1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
