//! Offline stand-in for `rayon`, covering the surface this workspace
//! uses: `ThreadPoolBuilder`/`ThreadPool::install`, `into_par_iter()`
//! on integer ranges with `map(..).collect()`, and
//! `par_iter_mut().enumerate().for_each(..)` on slices.
//!
//! Parallelism is real (scoped OS threads) but simple: no work
//! stealing, no splitting heuristics. Fan-out work shares one atomic
//! index; slice work is split into contiguous chunks. `install` records
//! the pool's thread count in a thread-local that parallel operations
//! on the same thread consult, mirroring how rayon scopes work to the
//! installed pool.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker budget installed for the current thread (0 = pool default).
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The worker budget parallel operations on this thread should use.
pub fn current_num_threads() -> usize {
    let t = INSTALLED_THREADS.with(Cell::get);
    if t == 0 {
        default_threads()
    } else {
        t
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Pool construction failure (never produced by this stand-in; the type
/// exists so caller error plumbing compiles unchanged).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A worker budget; threads are spawned per operation, not kept alive.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's budget installed for nested parallel
    /// operations.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(prev));
        result
    }

    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Fan-out: into_par_iter().map().collect()
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator (materializes the items).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert; the stand-in eagerly collects the items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map; `f` runs concurrently across the worker budget.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    /// Run `f` on every item concurrently.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, &|item| f(item));
    }
}

/// Mapped parallel iterator, consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Evaluate in parallel (input order preserved) and collect.
    pub fn collect<C>(self) -> C
    where
        F: Fn(T) -> C::Item + Sync,
        C: FromParallelIterator,
    {
        C::from_ordered(parallel_map(self.items, &self.f))
    }
}

/// Collection targets for [`ParMap::collect`].
pub trait FromParallelIterator {
    /// Element type collected.
    type Item: Send;
    /// Build the collection from results in input order.
    fn from_ordered(items: Vec<Self::Item>) -> Self;
}

impl<T: Send> FromParallelIterator for Vec<T> {
    type Item = T;
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Short-circuiting collect: first error wins (by input order).
impl<T: Send, E: Send> FromParallelIterator for Result<Vec<T>, E> {
    type Item = Result<T, E>;
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Evaluate `f` over `items` on the installed worker budget, returning
/// results in input order.
fn parallel_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<(Option<T>, Option<U>)>> =
        items.into_iter().map(|t| Mutex::new((Some(t), None))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let input = slots[i].lock().unwrap().0.take().expect("slot claimed once");
                let output = f(input);
                slots[i].lock().unwrap().1 = Some(output);
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().unwrap().1.expect("all slots computed")).collect()
}

// ---------------------------------------------------------------------------
// Slices: par_iter_mut().enumerate().for_each()
// ---------------------------------------------------------------------------

/// `par_iter_mut` entry point for slices.
pub trait ParallelSliceMut<T: Send> {
    /// Borrow as a parallel mutable iterator.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

/// Parallel mutable borrow of a slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> ParEnumerateMut<'a, T> {
        ParEnumerateMut { slice: self.slice }
    }

    /// Run `f` on every element, split across the worker budget.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        ParEnumerateMut { slice: self.slice }.for_each(|(_, v)| f(v))
    }
}

/// Enumerated parallel mutable iterator.
pub struct ParEnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParEnumerateMut<'_, T> {
    /// Run `f((index, &mut element))` over contiguous chunks in
    /// parallel.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        let len = self.slice.len();
        let workers = current_num_threads().min(len);
        if workers <= 1 {
            for (i, v) in self.slice.iter_mut().enumerate() {
                f((i, v));
            }
            return;
        }
        let chunk = len.div_ceil(workers);
        std::thread::scope(|scope| {
            for (k, part) in self.slice.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move || {
                    let base = k * chunk;
                    for (i, v) in part.iter_mut().enumerate() {
                        f((base + i, v));
                    }
                });
            }
        });
    }
}

/// Drop-in for `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u32..1000).into_par_iter().map(|i| i as u64 * 2).collect();
        assert_eq!(out, (0u64..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn result_collect_short_circuits_by_order() {
        let out: Result<Vec<u32>, String> = (0u32..100)
            .into_par_iter()
            .map(|i| if i >= 40 { Err(format!("bad {i}")) } else { Ok(i) })
            .collect();
        assert_eq!(out.unwrap_err(), "bad 40");
    }

    #[test]
    fn enumerate_for_each_touches_every_index() {
        let mut data = vec![0usize; 997];
        data.par_iter_mut().enumerate().for_each(|(i, v)| *v = i + 1);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn install_scopes_thread_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }
}
