//! Offline stand-in for `tempfile`: the `tempdir()`/[`TempDir`] subset
//! this workspace uses. Directory names combine the process id, a
//! process-wide counter, and the monotonic clock, so concurrent tests
//! and repeated runs never collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, deleted on drop.
pub struct TempDir {
    path: PathBuf,
}

/// Create a fresh uniquely-named temporary directory.
pub fn tempdir() -> std::io::Result<TempDir> {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let name = format!(
        "hus-tmp-{}-{}-{nanos}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
    );
    let path = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&path)?;
    Ok(TempDir { path })
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Delete now and report any error (drop ignores errors).
    pub fn close(self) -> std::io::Result<()> {
        let path = self.path.clone();
        std::mem::forget(self);
        std::fs::remove_dir_all(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn creates_then_removes() {
        let dir = super::tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("f"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn distinct_paths() {
        let a = super::tempdir().unwrap();
        let b = super::tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
