//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal serialization surface it actually uses: a JSON-ish
//! [`Value`] data model, [`Serialize`]/[`Deserialize`] traits converting
//! to/from it, and (behind the `derive` feature) the derive macros from
//! `vendor/serde_derive`. `vendor/serde_json` renders and parses the
//! textual form.
//!
//! Deliberate simplifications versus real serde:
//!
//! * no `Serializer`/`Deserializer` visitor architecture — everything
//!   goes through an owned [`Value`] tree (fine at manifest/trace size);
//! * non-finite floats serialize to [`Value::Null`] and deserialize back
//!   to `NaN`, matching `serde_json`'s lossy behavior for `NaN`;
//! * unknown object keys are ignored, missing keys are an error.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// The data model every serializable type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also carries non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Finite float.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Construct from any message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and convert a required object field (derive-macro helper).
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => {
            T::from_value(field).map_err(|e| DeError(format!("field `{name}`: {}", e.0)))
        }
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

/// Read a unit enum variant name (derive-macro helper).
pub fn as_variant(v: &Value) -> Result<&str, DeError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(DeError(format!("expected variant string, got {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        DeError(format!("value {n} out of i64 range"))
                    })?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::F64(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // Round-trip of NaN/±inf (serialized as null).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Static strings deserialize by leaking — only metadata-sized constants
/// (e.g. dataset display names) ever take this path.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => {
                pairs.iter().map(|(k, v)| Ok((k.clone(), T::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
