//! Offline stand-in for `proptest`, covering the API surface the
//! workspace's property tests use: range/tuple strategies, `prop_map` /
//! `prop_flat_map`, `collection::{vec, btree_set}`, `any::<T>()`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and
//! `prop_assert!`-family macros.
//!
//! Deliberate simplifications: cases are generated from a fixed seed
//! (runs are deterministic and reproducible, but there is no
//! persistence file), and failures are not shrunk — the failing case's
//! inputs appear in the panic message via the assertion text instead of
//! a minimized counterexample.

use std::ops::Range;

/// Deterministic case-generation RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed generator; every test run sees the same cases.
    pub fn deterministic() -> Self {
        TestRng { state: 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Test-case failure carrier (the stand-in panics instead, but bodies
/// `return Ok(())` early and mention the type through inference).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Generate one case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-range strategy for [`Arbitrary`] types, as `any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draw a value covering the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// `BTreeSet` built from up to `size` draws (duplicates collapse,
    /// so the final cardinality may be smaller).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    /// Strategy from [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy from [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drop-in for `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Define property tests: generates one `#[test]` per `fn`, running
/// `cases` deterministic samples of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property {} failed on case {}: {}", stringify!($name), case, e.0);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property body (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let (a, b) = crate::Strategy::generate(&(0u32..5, 10usize..12), &mut rng);
            assert!(a < 5 && (10..12).contains(&b));
            let xs = crate::Strategy::generate(&crate::collection::vec(0u32..9, 2..6), &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 9));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::deterministic();
        let strat = (1u32..10)
            .prop_flat_map(|n| crate::collection::vec(0..n, 1..4).prop_map(move |xs| (n, xs)));
        for _ in 0..100 {
            let (n, xs) = crate::Strategy::generate(&strat, &mut rng);
            assert!(xs.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_args(x in 0u32..100, ys in crate::collection::vec(0u64..9, 0..5),) {
            prop_assert!(x < 100);
            if ys.is_empty() {
                return Ok(());
            }
            prop_assert!(ys.iter().all(|&y| y < 9));
        }
    }
}
