//! Offline stand-in for `crossbeam`: just the bounded MPSC channel the
//! COP prefetch pipeline uses, delegating to `std::sync::mpsc`'s
//! rendezvous-capable `sync_channel`.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half; `send` blocks while the channel is full.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half; iterate to drain until all senders drop.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Send failed because the receiver disconnected.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Create a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Block until the message is accepted or the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Block for the next message; `None` when all senders dropped.
        pub fn recv(&self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = super::channel::bounded(1);
        let producer = std::thread::spawn(move || {
            for i in 0..10u32 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
