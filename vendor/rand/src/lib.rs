//! Offline stand-in for `rand`, providing the surface the generators
//! use: `StdRng::seed_from_u64`, `random::<f64>()`, and
//! `random_range(lo..hi)`. Backed by SplitMix64 — statistically fine
//! for synthetic graph generation, NOT cryptographic. Note the stream
//! differs from the real `rand` crate's `StdRng`, so generated graphs
//! are deterministic per seed but not bit-identical to upstream's.

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Derive the full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling methods the workspace calls (named to match the
/// `random`/`random_range` spelling of modern `rand`).
pub trait RngExt {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A sample of `T` over its natural range (`f64` ∈ [0, 1)).
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Uniform sample from a half-open integer range.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::from_uniform(self.next_u64(), range)
    }
}

/// Types drawable by [`RngExt::random`].
pub trait Sample {
    /// Map 64 uniform bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Sample for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 top bits → [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Sample for u32 {
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Sample for bool {
    fn sample(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy {
    /// Map 64 uniform bits into `range` (panics if empty).
    fn from_uniform(bits: u64, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_uniform(bits: u64, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is < span/2^64 — irrelevant at graph-gen
                // span sizes.
                range.start + (bits % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let n = rng.random_range(5u32..17);
            assert!((5..17).contains(&n));
            let m = rng.random_range(0usize..3);
            assert!(m < 3);
        }
    }
}
