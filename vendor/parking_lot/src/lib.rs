//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind
//! parking_lot's non-poisoning API (`lock()` returns the guard directly).
//! A poisoned lock — some holder panicked — propagates the panic, which
//! matches how this workspace treats worker panics (fatal).

pub use std::sync::MutexGuard;

/// Mutual exclusion with an infallible `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create an unlocked mutex (const, usable in statics).
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned: a holder panicked")
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(_)) => {
                panic!("mutex poisoned: a holder panicked")
            }
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0u32);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
