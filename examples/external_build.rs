//! Building a graph that never fits in memory: the streaming two-pass
//! external builder over a binary edge-list file, plus the fio-like
//! host throughput probe the paper's predictor is calibrated with.
//!
//! ```sh
//! cargo run --release --example external_build
//! ```

use husgraph::core::{build_external, BinaryFileSource, BuildConfig, HusGraph};
use husgraph::storage::{probe, StorageDir};

fn main() -> hus_storage::Result<()> {
    let dir = std::env::temp_dir().join(format!("husgraph-extbuild-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();

    // 1. A large-ish edge file on disk (in real use this is your dataset;
    //    here we synthesize one).
    let edges =
        husgraph::gen::Dataset::Twitter2010.generate_at_scale(500.0).with_hash_weights(1.0, 2.0);
    let file = dir.join("twitter.husg");
    husgraph::gen::io::write_binary(&edges, &file).map_err(hus_storage::StorageError::from)?;
    println!(
        "edge file: {} ({:.1} MB, {} edges)",
        file.display(),
        std::fs::metadata(&file).map(|m| m.len()).unwrap_or(0) as f64 / 1e6,
        edges.num_edges()
    );

    // 2. Stream-build the dual-block representation: two passes over the
    //    file, memory bounded by O(|V| + |E|/P) — the input edge list is
    //    never loaded whole.
    let source = BinaryFileSource::open(&file)?;
    let graph_dir = StorageDir::create(dir.join("graph"))?;
    let start = std::time::Instant::now();
    let meta = build_external(&source, &graph_dir, &BuildConfig::with_p(8))?;
    println!(
        "external build: P = {} intervals, {:.1} MB on disk, {:.2}s \
         ({:.1} MB of tracked build I/O)",
        meta.p,
        graph_dir.disk_footprint()? as f64 / 1e6,
        start.elapsed().as_secs_f64(),
        graph_dir.tracker().snapshot().total_bytes() as f64 / 1e6,
    );

    // 3. The result is a normal graph directory.
    graph_dir.tracker().reset();
    let graph = HusGraph::open(graph_dir)?;
    let sssp = husgraph::algos::Sssp::new(0);
    let engine = husgraph::core::Engine::new(&graph, &sssp, husgraph::core::RunConfig::default());
    let (dist, stats) = engine.run()?;
    println!(
        "\nSSSP over the externally-built graph: reached {} vertices in {} iterations",
        dist.iter().filter(|d| d.is_finite()).count(),
        stats.num_iterations()
    );

    // 4. Measure this host's throughputs, as the paper does with fio
    //    (§3.4). On a page-cached container these come out memory-speed —
    //    which is exactly why the experiments price I/O with the HDD/SSD
    //    profiles instead.
    let report = probe::measure(&dir, &probe::ProbeOptions::default())?;
    println!(
        "\nhost probe: {:.0} MB/s sequential, {:.0} MB/s random, {:.0} MB/s write",
        report.read.sequential_bps / 1e6,
        report.read.random_bps / 1e6,
        report.write_bps / 1e6
    );
    println!("(feed these into RunConfig::throughput to predict on real hardware)");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
