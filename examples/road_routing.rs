//! Road-network routing: weighted SSSP over a grid-like road mesh,
//! comparing the three update strategies on a workload whose frontier is
//! *never* dense (a wavefront expanding over a planar-ish mesh).
//!
//! Road networks are the opposite extreme from power-law social graphs:
//! huge diameter, bounded degree. Full-I/O systems rescan the whole map
//! every wavefront step; selective access wins by orders of magnitude —
//! the strongest case for ROP in the paper's design space.
//!
//! ```sh
//! cargo run --release --example road_routing
//! ```

use husgraph::algos::Sssp;
use husgraph::core::{Engine, RunConfig, UpdateMode};
use husgraph::storage::{CostModel, DeviceProfile};
use husgraph::Graph;

fn main() -> hus_storage::Result<()> {
    // A 200x200 city grid; travel times vary per road segment.
    let roads = husgraph::gen::grid2d(200, 200).with_hash_weights(1.0, 5.0);
    println!(
        "road mesh: {} intersections, {} road segments",
        roads.num_vertices,
        roads.num_edges()
    );

    let dir = std::env::temp_dir().join(format!("husgraph-roads-{}", std::process::id()));
    // Row-major grid ids give the wavefront strong interval locality:
    // with P = 8, each step touches only a couple of intervals, so ROP
    // loads a fraction of the index/vertex data per step.
    let graph = Graph::build_with(&roads, &dir, &husgraph::core::BuildConfig::with_p(8))?;

    // Route from the north-west corner.
    let depot = 0u32;
    let model = CostModel::new(DeviceProfile::hdd());
    println!("\n{:<8} {:>11} {:>12} {:>14}", "mode", "iterations", "I/O (MB)", "modeled HDD");
    let mut travel_times = Vec::new();
    for (name, mode) in [
        ("ROP", UpdateMode::ForceRop),
        ("COP", UpdateMode::ForceCop),
        ("Hybrid", UpdateMode::Hybrid),
    ] {
        let config = RunConfig { mode, max_iterations: 5_000, ..Default::default() };
        let (times, stats) = Engine::new(graph.inner(), &Sssp::new(depot), config).run()?;
        println!(
            "{:<8} {:>11} {:>12.1} {:>12.2} s",
            name,
            stats.num_iterations(),
            stats.total_io.total_bytes() as f64 / 1e6,
            stats.modeled_seconds(&model),
        );
        travel_times = times;
    }

    // All three agree on the answer; print a few routes.
    println!("\ntravel times from the depot (intersection 0):");
    for (r, c) in [(0u32, 199u32), (199, 0), (199, 199), (100, 100)] {
        let v = r * 200 + c;
        println!("  to ({r:3},{c:3}): {:7.1} minutes", travel_times[v as usize]);
    }
    println!(
        "\nOn a high-diameter mesh the wavefront never exceeds the α gate: the \
         hybrid runs ROP throughout and matches it, while COP pays a full map \
         rescan for every one of the hundreds of wavefront steps."
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
