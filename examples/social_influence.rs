//! Social-network influence analysis: standard PageRank vs
//! PageRank-Delta on a LiveJournal-like social graph.
//!
//! Demonstrates the workload distinction at the heart of the paper:
//! standard PageRank keeps every vertex active (the hybrid engine stays
//! in COP), while PageRank-Delta's frontier drains as ranks converge —
//! so the engine starts in COP and switches to ROP for the long tail,
//! doing a fraction of the I/O for the same ranking.
//!
//! ```sh
//! cargo run --release --example social_influence
//! ```

use husgraph::algos::PageRankDelta;
use husgraph::core::{Engine, RunConfig, UpdateModel};
use husgraph::gen::Dataset;
use husgraph::Graph;

fn main() -> hus_storage::Result<()> {
    let edges = Dataset::LiveJournal.generate_at_scale(500.0);
    println!(
        "LiveJournal-like social graph: {} users, {} follow edges",
        edges.num_vertices,
        edges.num_edges()
    );

    let dir = std::env::temp_dir().join(format!("husgraph-social-{}", std::process::id()));
    let graph = Graph::build(&edges, &dir)?;
    let n = graph.num_vertices();

    // Standard PageRank: 5 iterations, everything always active.
    let (ranks, pr_stats) = graph.pagerank(5)?;

    // PageRank-Delta: run to convergence; frontier shrinks over time.
    // A looser tolerance than the library default trades a little rank
    // precision for a longer sparse tail (the regime ROP exists for).
    let mut delta_program = PageRankDelta::new(n);
    delta_program.tolerance = 0.05 / n as f32;
    let config = RunConfig { max_iterations: 100, ..Default::default() };
    let (delta_values, delta_stats) = Engine::new(graph.inner(), &delta_program, config).run()?;

    // Influence ranking agreement between the two.
    let top_of = |scores: &[f32]| -> Vec<u32> {
        let mut idx: Vec<u32> = (0..n).collect();
        idx.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
        idx.truncate(10);
        idx
    };
    let pr_top = top_of(&ranks);
    let delta_ranks: Vec<f32> = delta_values.iter().map(|rd| rd.rank).collect();
    let delta_top = top_of(&delta_ranks);
    let overlap = pr_top.iter().filter(|v| delta_top.contains(v)).count();

    println!("\ntop-10 influencers (standard PageRank): {pr_top:?}");
    println!("top-10 influencers (PageRank-Delta):   {delta_top:?}");
    println!("overlap: {overlap}/10");

    println!("\n{:<22} {:>12} {:>12} {:>8} {:>8}", "run", "iterations", "I/O (MB)", "ROP", "COP");
    for (name, stats) in [("PageRank", &pr_stats), ("PageRank-Delta", &delta_stats)] {
        println!(
            "{:<22} {:>12} {:>12.1} {:>8} {:>8}",
            name,
            stats.num_iterations(),
            stats.total_io.total_bytes() as f64 / 1e6,
            stats.iterations_with_model(UpdateModel::Rop),
            stats.iterations_with_model(UpdateModel::Cop),
        );
    }
    println!(
        "\nPageRank-Delta's shrinking frontier lets the hybrid engine switch \
         from COP to ROP once the predicted selective-load cost drops below a \
         full streaming pass."
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
