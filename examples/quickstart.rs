//! Quickstart: build a graph, run the bundled algorithms, inspect stats.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use husgraph::Graph;

fn main() -> hus_storage::Result<()> {
    // 1. Get a graph. Any `EdgeList` works: generate one, or load one
    //    with `husgraph::gen::io::read_text` / `read_binary`.
    let edges = husgraph::gen::rmat(50_000, 500_000, 42, Default::default());
    println!(
        "generated an R-MAT graph: {} vertices, {} edges",
        edges.num_vertices,
        edges.num_edges()
    );

    // 2. Build the dual-block representation on disk.
    let dir = std::env::temp_dir().join(format!("husgraph-quickstart-{}", std::process::id()));
    let graph = Graph::build(&edges, &dir)?;
    println!(
        "built dual-block representation with P = {} intervals at {}",
        graph.inner().p(),
        dir.display()
    );

    // 3. BFS from vertex 0.
    let (levels, stats) = graph.bfs(0)?;
    let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
    println!(
        "\nBFS: reached {reached}/{} vertices in {} iterations",
        graph.num_vertices(),
        stats.num_iterations()
    );
    for it in &stats.iterations {
        println!(
            "  iteration {:2}: model {:4}, {:7} active vertices, {:9} active edges",
            it.iteration + 1,
            it.model.to_string(),
            it.active_vertices,
            it.active_edges
        );
    }

    // 4. PageRank, five iterations as in the paper.
    let (ranks, pr_stats) = graph.pagerank(5)?;
    let mut top: Vec<(u32, f32)> =
        ranks.iter().copied().enumerate().map(|(v, r)| (v as u32, r)).collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nPageRank (5 iterations): top 5 vertices");
    for (v, r) in top.iter().take(5) {
        println!("  vertex {v:6}  rank {r:.6}");
    }

    // 5. The I/O ledger every run carries, and the paper's device model.
    let model = husgraph::storage::CostModel::new(husgraph::storage::DeviceProfile::hdd());
    println!(
        "\nPageRank I/O: {:.1} MB total ({:.1} MB sequential reads, {:.1} MB writes)",
        pr_stats.total_io.total_bytes() as f64 / 1e6,
        pr_stats.total_io.seq_read_bytes as f64 / 1e6,
        pr_stats.total_io.write_bytes as f64 / 1e6,
    );
    println!(
        "modeled runtime on the paper's 7200rpm HDD: {:.2} s (wall here: {:.2} s)",
        pr_stats.modeled_seconds(&model),
        pr_stats.wall_seconds
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
