//! Web-graph reachability: BFS over a UK2007-like crawl graph, showing
//! the active-edge curve (paper Figure 1) and the hybrid engine's
//! per-iteration ROP/COP choices.
//!
//! ```sh
//! cargo run --release --example web_reachability
//! ```

use husgraph::algos::Bfs;
use husgraph::core::{Engine, RunConfig};
use husgraph::gen::Dataset;
use husgraph::Graph;

fn main() -> hus_storage::Result<()> {
    let edges = Dataset::Uk2007.generate_at_scale(2000.0);
    println!(
        "UK2007-like web graph: {} pages, {} hyperlinks",
        edges.num_vertices,
        edges.num_edges()
    );

    let dir = std::env::temp_dir().join(format!("husgraph-web-{}", std::process::id()));
    let graph = Graph::build(&edges, &dir)?;

    // Crawl frontier: BFS from a low-degree page that reaches a large
    // out-component (found by probing candidates with an in-memory BFS).
    let csr = husgraph::gen::Csr::from_edge_list(&edges);
    let source = (0..edges.num_vertices)
        .filter(|&v| csr.out_degree(v) >= 1)
        .min_by_key(|&v| csr.out_degree(v))
        .and_then(|candidate| {
            let levels = husgraph::algos::reference::bfs_levels(&csr, candidate);
            let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
            (reached * 4 >= edges.num_vertices as usize).then_some(candidate)
        })
        .unwrap_or(0);

    let (levels, stats) =
        Engine::new(graph.inner(), &Bfs::new(source), RunConfig::default()).run()?;

    let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
    let depth = levels.iter().filter(|&&l| l != u32::MAX).max().copied().unwrap_or(0);
    println!(
        "\ncrawl from page {source}: reached {reached}/{} pages, depth {depth}",
        edges.num_vertices
    );

    println!("\niter  model  active-vertices  active-edges  (% of |E|)");
    let e = edges.num_edges() as f64;
    for it in &stats.iterations {
        let bar_len = (50.0 * it.active_edges as f64 / e).round() as usize;
        println!(
            "{:4}  {:5}  {:15}  {:12}  {:5.1}% {}",
            it.iteration + 1,
            it.model.to_string(),
            it.active_vertices,
            it.active_edges,
            100.0 * it.active_edges as f64 / e,
            "#".repeat(bar_len)
        );
    }
    println!(
        "\nThe sparse ramp-up and tail run under ROP (selective loads); only \
         the dense middle iterations stream whole in-blocks under COP."
    );

    // Depth histogram — how far the crawl had to go.
    let mut by_depth = vec![0usize; depth as usize + 1];
    for &l in &levels {
        if l != u32::MAX {
            by_depth[l as usize] += 1;
        }
    }
    println!("\npages per crawl depth: {by_depth:?}");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
