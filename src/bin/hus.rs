//! `hus` — command-line front end to the HUS-Graph engine.
//!
//! ```text
//! hus gen    <rmat|er|ws|ba> <vertices> <edges-or-param> <out.husg> [--seed N] [--weighted]
//! hus build  <edges.{husg,txt}> <graph-dir> [--p N] [--external] [--codec raw|delta-varint]
//! hus stats  <graph-dir>
//! hus fsck   <graph-dir> [--repair]
//! hus bfs    <graph-dir> <source> [--mode hybrid|rop|cop]
//! hus sssp   <graph-dir> <source> [--mode ...]
//! hus wcc    <graph-dir> [--mode ...]
//! hus pagerank <graph-dir> [--iters N] [--top K]
//! hus diameter <graph-dir> [--sources N]
//! hus audit  <graph-dir> [--algo bfs|sssp|wcc|pagerank] [--iters N] [--mode ...]
//! hus top    <graph-dir> [--algo ...] [--refresh-ms N] [--plain]
//! hus ingest <graph-dir> [--insert s,d[,w]]... [--delete s,d]... [--random N] [--flush]
//! hus compact <graph-dir>
//! hus convert <in.{husg,txt}> <out.{husg,txt}>
//! hus probe  [dir]
//! ```
//!
//! Algorithms print the run's iteration trace, I/O ledger, and modeled
//! HDD time alongside a result summary. `audit` replays an algorithm
//! with full telemetry and renders the cost-model audit trail
//! (predicted `C_rop`/`C_cop` vs. actual per iteration) plus the
//! hottest blocks; `top` is a live terminal view of a run in flight.

use hus_algos::{Bfs, PageRank, Sssp, Wcc};
use hus_core::{
    build, build_external, BinaryFileSource, BuildConfig, Engine, HusGraph, ListSource, RunConfig,
    RunStats, UpdateMode, VertexProgram,
};
use hus_gen::EdgeList;
use hus_storage::{CostModel, DeviceProfile, StorageDir};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  hus gen <rmat|er|ws|ba> <vertices> <edges> <out.husg> [--seed N] [--weighted]
  hus build <edges.{husg,txt}> <graph-dir> [--p N] [--external] [--codec raw|delta-varint]
  hus stats <graph-dir>
  hus fsck <graph-dir> [--repair]
  hus bfs <graph-dir> <source> [--mode hybrid|rop|cop]
  hus sssp <graph-dir> <source> [--mode hybrid|rop|cop]
  hus wcc <graph-dir> [--mode hybrid|rop|cop]
  hus pagerank <graph-dir> [--iters N] [--top K]
  hus diameter <graph-dir> [--sources N]
  hus audit <graph-dir> [--algo bfs|sssp|wcc|pagerank] [--iters N] [--source S] \
            [--mode hybrid|rop|cop] [--blocks K]
  hus top <graph-dir> [--algo bfs|sssp|wcc|pagerank] [--iters N] [--source S] \
          [--refresh-ms N] [--plain]
  hus ingest <graph-dir> [--insert s,d[,w]]... [--delete s,d]... \
             [--random N] [--seed S] [--flush] [--verify]
  hus compact <graph-dir>
  hus convert <in.{husg,txt}> <out.{husg,txt}>
  hus probe [dir]
  hus serve <graph-dir> [--addr host:port] [--max-inflight N] [--byte-budget B] \
            [--threads N] [--deadline-ms N] [--idle-ms N]

graph-reading commands also accept --backend file|mmap|direct
(default: $HUS_BACKEND, else file; direct degrades to file where
O_DIRECT is unsupported, e.g. tmpfs)";

type CliResult = Result<(), String>;

fn run(args: &[String]) -> CliResult {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing command")?;
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "gen" => cmd_gen(&rest),
        "build" => cmd_build(&rest),
        "stats" => cmd_stats(&rest),
        "fsck" => cmd_fsck(&rest),
        "bfs" => cmd_algo(&rest, Algo::Bfs),
        "sssp" => cmd_algo(&rest, Algo::Sssp),
        "wcc" => cmd_algo(&rest, Algo::Wcc),
        "pagerank" => cmd_pagerank(&rest),
        "diameter" => cmd_diameter(&rest),
        "audit" => cmd_audit(&rest),
        "top" => cmd_top(&rest),
        "ingest" => cmd_ingest(&rest),
        "compact" => cmd_compact(&rest),
        "convert" => cmd_convert(&rest),
        "probe" => cmd_probe(&rest),
        "serve" => cmd_serve(&rest),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn flag_value<'a>(rest: &'a [&String], name: &str) -> Option<&'a str> {
    rest.iter().position(|a| *a == name).and_then(|i| rest.get(i + 1)).map(|s| s.as_str())
}

fn has_flag(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| *a == name)
}

fn positional<'a>(rest: &'a [&String], k: usize) -> Result<&'a str, String> {
    rest.iter()
        .filter(|a| !a.starts_with("--"))
        .nth(k)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing argument #{}", k + 1))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: {s:?}"))
}

fn cmd_gen(rest: &[&String]) -> CliResult {
    let family = positional(rest, 0)?;
    let n: u32 = parse(positional(rest, 1)?, "vertex count")?;
    let m: usize = parse(positional(rest, 2)?, "edge count / parameter")?;
    let out = positional(rest, 3)?;
    let seed: u64 = flag_value(rest, "--seed").map(|s| parse(s, "seed")).transpose()?.unwrap_or(42);
    let mut el: EdgeList = match family {
        "rmat" => hus_gen::rmat(n, m, seed, Default::default()),
        "er" => hus_gen::erdos_renyi(n, m, seed),
        "ws" => hus_gen::watts_strogatz(n, (m as u32).max(1), 0.05, seed),
        "ba" => hus_gen::barabasi_albert(n, (m as u32).max(1), seed),
        other => return Err(format!("unknown family {other:?} (rmat|er|ws|ba)")),
    };
    if has_flag(rest, "--weighted") {
        el = el.with_hash_weights(0.1, 10.0);
    }
    hus_gen::io::write_binary(&el, out).map_err(|e| e.to_string())?;
    println!("wrote {} vertices / {} edges to {out}", el.num_vertices, el.num_edges());
    Ok(())
}

fn cmd_build(rest: &[&String]) -> CliResult {
    let input = positional(rest, 0)?;
    let out = positional(rest, 1)?;
    let mut config = BuildConfig::default();
    if let Some(p) = flag_value(rest, "--p") {
        config.p = Some(parse(p, "partition count")?);
    }
    if let Some(codec) = flag_value(rest, "--codec") {
        // Explicit flag beats the HUS_CODEC default; a typo'd name is a
        // loud error, not a silent raw build.
        config.codec = codec.parse().map_err(|e| format!("--codec: {e}"))?;
    }
    let dir = StorageDir::create(out).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let meta = if has_flag(rest, "--external") && input.ends_with(".husg") {
        let source = BinaryFileSource::open(input).map_err(|e| e.to_string())?;
        build_external(&source, &dir, &config).map_err(|e| e.to_string())?
    } else {
        let el = if input.ends_with(".husg") {
            hus_gen::io::read_binary(input).map_err(|e| e.to_string())?
        } else {
            hus_gen::io::read_text(input).map_err(|e| e.to_string())?
        };
        if has_flag(rest, "--external") {
            build_external(&ListSource(&el), &dir, &config).map_err(|e| e.to_string())?
        } else {
            build(&el, &dir, &config).map_err(|e| e.to_string())?
        }
    };
    println!(
        "built {out}: {} vertices, {} edges, P = {} intervals, codec {} ({:.2}x), \
         {:.1} MB on disk, {:.2}s",
        meta.num_vertices,
        meta.num_edges,
        meta.p,
        meta.codec,
        meta.compression_ratio(),
        dir.disk_footprint().map_err(|e| e.to_string())? as f64 / 1e6,
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

fn cmd_stats(rest: &[&String]) -> CliResult {
    let dir = StorageDir::open(positional(rest, 0)?).map_err(|e| e.to_string())?;
    let dg = hus_core::DynamicGraph::open(dir).map_err(|e| e.to_string())?;
    let runs = dg.run_count();
    let generation = dg.generation();
    let g = dg.into_snapshot().map_err(|e| e.to_string())?;
    let meta = g.meta();
    println!("vertices:  {}", meta.num_vertices);
    if runs == 0 {
        println!("edges:     {}", meta.num_edges);
    } else {
        println!("edges:     {} ({} in base + {runs} delta run(s))", g.num_edges(), meta.num_edges);
    }
    println!("intervals: {}", meta.p);
    println!("generation: {generation} ({runs} live delta run(s))");
    println!("weighted:  {}", meta.weighted);
    println!("record:    {} bytes/edge", meta.edge_record_bytes());
    println!("codec:     {}", meta.codec);
    println!(
        "on disk:   {:.2} bytes/edge ({:.2}x compression)",
        meta.disk_edge_bytes(),
        meta.compression_ratio()
    );
    let max_deg = g.out_degrees().iter().max().copied().unwrap_or(0);
    println!("max out-degree: {max_deg}");
    println!(
        "disk footprint: {:.1} MB",
        g.dir().disk_footprint().map_err(|e| e.to_string())? as f64 / 1e6
    );
    for i in 0..g.p() {
        let row: u64 = (0..g.p()).map(|j| meta.out_block(i, j).edge_count).sum();
        println!("  interval {i}: vertices {:8}, out-edges {row}", meta.interval_len(i));
    }
    Ok(())
}

/// Deep integrity check: exits non-zero (without the generic usage
/// banner) when the directory is corrupt, so scripts and CI can gate on
/// it.
fn cmd_fsck(rest: &[&String]) -> CliResult {
    let dir = StorageDir::open(positional(rest, 0)?).map_err(|e| e.to_string())?;
    let report = hus_core::fsck(&dir, has_flag(rest, "--repair")).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    if !report.is_clean() {
        std::process::exit(1);
    }
    Ok(())
}

/// Apply streaming edge updates to a built graph directory through the
/// dynamic-graph write path: updates buffer in a memtable and spill to
/// on-disk delta runs (see `DESIGN.md` §11).
fn cmd_ingest(rest: &[&String]) -> CliResult {
    let dir = StorageDir::open(positional(rest, 0)?).map_err(|e| e.to_string())?;
    let mut dg = hus_core::DynamicGraph::open(dir).map_err(|e| e.to_string())?;
    let mut inserts = 0u64;
    let mut deletes = 0u64;
    // Repeatable --insert / --delete flags, applied in argv order so a
    // delete can override an earlier insert of the same edge.
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--insert" => {
                let spec = rest.get(i + 1).ok_or("--insert needs src,dst[,weight]")?;
                let (src, dst, w) = parse_edge_spec(spec)?;
                dg.insert_edge(src, dst, w).map_err(|e| e.to_string())?;
                inserts += 1;
                i += 2;
            }
            "--delete" => {
                let spec = rest.get(i + 1).ok_or("--delete needs src,dst")?;
                let (src, dst, _) = parse_edge_spec(spec)?;
                dg.delete_edge(src, dst).map_err(|e| e.to_string())?;
                deletes += 1;
                i += 2;
            }
            _ => i += 1,
        }
    }
    if let Some(n) = flag_value(rest, "--random") {
        let n: u64 = parse(n, "update count")?;
        let seed: u64 =
            flag_value(rest, "--seed").map(|s| parse(s, "seed")).transpose()?.unwrap_or(42);
        let nv = dg.snapshot().map_err(|e| e.to_string())?.meta().num_vertices as u64;
        if nv == 0 {
            return Err("--random needs a non-empty graph".into());
        }
        let mut state = seed;
        for _ in 0..n {
            let x = splitmix64(&mut state);
            let src = (x % nv) as u32;
            let dst = ((x >> 32) % nv) as u32;
            // 1-in-8 updates are deletes so random workloads exercise
            // tombstones without emptying the graph.
            if x.is_multiple_of(8) {
                dg.delete_edge(src, dst).map_err(|e| e.to_string())?;
                deletes += 1;
            } else {
                let w = 0.1 + (x >> 16 & 0xffff) as f32 / 6554.0;
                dg.insert_edge(src, dst, w).map_err(|e| e.to_string())?;
                inserts += 1;
            }
        }
    }
    if has_flag(rest, "--flush") {
        match dg.flush().map_err(|e| e.to_string())? {
            Some(run) => println!("spilled memtable to {run}"),
            None => println!("memtable empty, nothing to spill"),
        }
    }
    let runs = dg.run_count();
    let buffered = dg.memtable_bytes();
    if has_flag(rest, "--verify") {
        let g = dg.snapshot().map_err(|e| e.to_string())?;
        let mut out_total = 0u64;
        let mut in_total = 0u64;
        for i in 0..g.p() {
            for j in 0..g.p() {
                out_total += g.out_block_len(i, j);
                in_total += g.in_block_len(i, j);
            }
        }
        let degrees: u64 = g.out_degrees().iter().map(|&d| d as u64).sum();
        let want = g.num_edges();
        if out_total != want || in_total != want || degrees != want {
            return Err(format!(
                "verify failed: out-blocks {out_total}, in-blocks {in_total}, \
                 degrees {degrees}, expected {want}"
            ));
        }
        println!("verify: OK ({want} edges consistent across both orientations)");
    }
    let edges = dg.snapshot().map_err(|e| e.to_string())?.num_edges();
    println!(
        "applied {inserts} insert(s), {deletes} delete(s): {edges} edges, \
         {runs} delta run(s), {:.1} KB buffered",
        buffered as f64 / 1024.0
    );
    Ok(())
}

/// Fold all delta runs and buffered updates into a fresh base build
/// (atomic staged swap; readers opened afterwards see the new
/// generation).
fn cmd_compact(rest: &[&String]) -> CliResult {
    let dir = StorageDir::open(positional(rest, 0)?).map_err(|e| e.to_string())?;
    let mut dg = hus_core::DynamicGraph::open(dir).map_err(|e| e.to_string())?;
    let pending_runs = dg.run_count();
    let buffered = dg.memtable_len();
    let start = std::time::Instant::now();
    if !dg.compact().map_err(|e| e.to_string())? {
        println!("nothing to compact (no delta runs or buffered updates)");
        return Ok(());
    }
    let edges = dg.snapshot().map_err(|e| e.to_string())?.num_edges();
    println!(
        "folded {pending_runs} run(s) + {buffered} buffered update(s) into a new \
         base build: {edges} edges, {:.2}s",
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

fn parse_edge_spec(spec: &str) -> Result<(u32, u32, f32), String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(format!("bad edge spec {spec:?} (want src,dst or src,dst,weight)"));
    }
    let src = parse(parts[0], "src vertex")?;
    let dst = parse(parts[1], "dst vertex")?;
    let w = match parts.get(2) {
        Some(s) => parse(s, "weight")?,
        None => 1.0,
    };
    Ok((src, dst, w))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

enum Algo {
    Bfs,
    Sssp,
    Wcc,
}

fn parse_mode(rest: &[&String]) -> Result<UpdateMode, String> {
    Ok(match flag_value(rest, "--mode").unwrap_or("hybrid") {
        "hybrid" => UpdateMode::Hybrid,
        "rop" => UpdateMode::ForceRop,
        "cop" => UpdateMode::ForceCop,
        other => return Err(format!("unknown mode {other:?}")),
    })
}

/// Run the concurrent multi-query daemon over one graph directory
/// (DESIGN.md §12): MVCC snapshots pinned to the `MANIFEST` generation,
/// admission control (`--max-inflight`, rejected queries get a `busy`
/// error), per-query byte budgets (`--byte-budget`), and graceful drain
/// on SIGINT/SIGTERM or a `shutdown` wire op.
fn cmd_serve(rest: &[&String]) -> CliResult {
    // Start the metrics exporter (HUS_METRICS_ADDR) before serving so
    // serve.* metrics are scrapeable for the daemon's whole life; the
    // drain path below shuts it down again.
    hus_obs::init_from_env();
    let path = positional(rest, 0)?;
    let mut config = hus_serve::ServeConfig::from_env();
    if let Some(addr) = flag_value(rest, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(v) = flag_value(rest, "--max-inflight") {
        config.max_inflight = parse::<usize>(v, "max inflight")?.max(1);
    }
    if let Some(v) = flag_value(rest, "--byte-budget") {
        config.byte_budget = parse(v, "byte budget")?;
    }
    if let Some(v) = flag_value(rest, "--threads") {
        config.query_threads = parse::<usize>(v, "threads")?.max(1);
    }
    if let Some(v) = flag_value(rest, "--deadline-ms") {
        config.deadline_ms = parse(v, "deadline ms")?;
    }
    if let Some(v) = flag_value(rest, "--idle-ms") {
        config.idle_ms = parse(v, "idle ms")?;
    }
    let mut dir = StorageDir::open(path).map_err(|e| e.to_string())?;
    if let Some(kind) = parse_backend(rest)? {
        dir = dir.with_backend(kind);
    }
    let max_inflight = config.max_inflight;
    let mut server = hus_serve::serve(dir, config).map_err(|e| e.to_string())?;
    let snap = server.snapshots().current();
    println!(
        "serving {path} on {} (generation {}, {} delta run(s), {} query slots)",
        server.addr(),
        snap.generation(),
        snap.runs(),
        max_inflight,
    );
    drop(snap);
    server.wait();
    println!("serve: drained and stopped");
    Ok(())
}

fn parse_backend(rest: &[&String]) -> Result<Option<hus_storage::BackendKind>, String> {
    use hus_storage::BackendKind;
    match flag_value(rest, "--backend") {
        None => Ok(None),
        Some("file") => Ok(Some(BackendKind::File)),
        Some("mmap") => Ok(Some(BackendKind::Mmap)),
        Some("direct") => Ok(Some(BackendKind::Direct)),
        Some(other) => Err(format!("unknown backend {other:?} (file|mmap|direct)")),
    }
}

/// Open a graph directory for reading. Goes through [`hus_core::DynamicGraph`]
/// so any live delta runs are layered over the base — `hus pagerank`
/// on a directory with un-compacted streaming updates sees the updated
/// graph, not the stale base generation (DESIGN.md §11: reads must see
/// updates immediately).
fn open_graph(path: &str, rest: &[&String]) -> Result<HusGraph, String> {
    let mut dir = StorageDir::open(path).map_err(|e| e.to_string())?;
    if let Some(kind) = parse_backend(rest)? {
        dir = dir.with_backend(kind);
    }
    hus_core::DynamicGraph::open(dir)
        .and_then(hus_core::DynamicGraph::into_snapshot)
        .map_err(|e| e.to_string())
}

fn report_run(stats: &RunStats) {
    println!("\niter  model  active-vertices  active-edges");
    for itn in &stats.iterations {
        println!(
            "{:4}  {:5}  {:15}  {:12}",
            itn.iteration + 1,
            itn.model.to_string(),
            itn.active_vertices,
            itn.active_edges
        );
    }
    let model = CostModel::new(DeviceProfile::hdd());
    println!(
        "\n{} iterations, {:.1} MB I/O ({:.1} seq / {:.1} rand / {:.1} batched / {:.1} written)",
        stats.num_iterations(),
        stats.total_io.total_bytes() as f64 / 1e6,
        stats.total_io.seq_read_bytes as f64 / 1e6,
        stats.total_io.rand_read_bytes as f64 / 1e6,
        stats.total_io.batched_read_bytes as f64 / 1e6,
        stats.total_io.write_bytes as f64 / 1e6,
    );
    println!(
        "wall {:.2}s, modeled 7200rpm-HDD {:.2}s",
        stats.wall_seconds,
        stats.modeled_seconds(&model)
    );
}

fn run_program<Pr: VertexProgram>(
    g: &HusGraph,
    program: &Pr,
    mode: UpdateMode,
    max_iterations: usize,
) -> Result<(Vec<Pr::Value>, RunStats), String> {
    let config = RunConfig { mode, max_iterations, ..Default::default() };
    Engine::new(g, program, config).run().map_err(|e| e.to_string())
}

fn cmd_algo(rest: &[&String], algo: Algo) -> CliResult {
    let g = open_graph(positional(rest, 0)?, rest)?;
    let mode = parse_mode(rest)?;
    match algo {
        Algo::Bfs => {
            let source: u32 = parse(positional(rest, 1)?, "source")?;
            let (levels, stats) = run_program(&g, &Bfs::new(source), mode, 100_000)?;
            let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
            println!("BFS from {source}: reached {reached}/{} vertices", levels.len());
            report_run(&stats);
        }
        Algo::Sssp => {
            let source: u32 = parse(positional(rest, 1)?, "source")?;
            let (dist, stats) = run_program(&g, &Sssp::new(source), mode, 100_000)?;
            let reached = dist.iter().filter(|d| d.is_finite()).count();
            let max = dist.iter().filter(|d| d.is_finite()).fold(0.0f32, |a, &b| a.max(b));
            println!(
                "SSSP from {source}: reached {reached}/{} vertices, max distance {max:.2}",
                dist.len()
            );
            report_run(&stats);
        }
        Algo::Wcc => {
            let (labels, stats) = run_program(&g, &Wcc, mode, 100_000)?;
            let mut unique = labels.clone();
            unique.sort_unstable();
            unique.dedup();
            println!("WCC: {} components over {} vertices", unique.len(), labels.len());
            report_run(&stats);
        }
    }
    Ok(())
}

fn cmd_pagerank(rest: &[&String]) -> CliResult {
    let g = open_graph(positional(rest, 0)?, rest)?;
    let iters: usize =
        flag_value(rest, "--iters").map(|s| parse(s, "iterations")).transpose()?.unwrap_or(5);
    let top: usize = flag_value(rest, "--top").map(|s| parse(s, "top")).transpose()?.unwrap_or(10);
    let n = g.meta().num_vertices;
    let (ranks, stats) = run_program(&g, &PageRank::new(n), UpdateMode::Hybrid, iters)?;
    let mut order: Vec<u32> = (0..n).collect();
    order.sort_by(|&a, &b| ranks[b as usize].total_cmp(&ranks[a as usize]));
    println!("top {top} vertices by PageRank ({iters} iterations):");
    for &v in order.iter().take(top) {
        println!("  {v:10}  {:.8}", ranks[v as usize]);
    }
    report_run(&stats);
    Ok(())
}

fn cmd_diameter(rest: &[&String]) -> CliResult {
    let g = open_graph(positional(rest, 0)?, rest)?;
    let sources: usize =
        flag_value(rest, "--sources").map(|s| parse(s, "sources")).transpose()?.unwrap_or(16);
    let nf = hus_algos::diameter::estimate(&g, sources, 42, RunConfig::default())
        .map_err(|e| e.to_string())?;
    println!(
        "neighborhood function from {} sampled sources (graph: {} vertices):",
        nf.sources,
        g.meta().num_vertices
    );
    for (h, &c) in nf.counts.iter().enumerate() {
        println!("  depth {h:4}: {c:12} (source, vertex) pairs reached");
    }
    println!("effective diameter (90%): {}", nf.effective_diameter(0.9));
    println!("max sampled depth:        {}", nf.max_depth());
    Ok(())
}

/// Shared algorithm runner for `audit` and `top`: runs `algo` on `g`
/// with the given config and returns the run statistics.
fn run_named(g: &HusGraph, algo: &str, source: u32, config: RunConfig) -> Result<RunStats, String> {
    let n = g.meta().num_vertices;
    let stats = match algo {
        "pagerank" => Engine::new(g, &PageRank::new(n), config).run().map_err(|e| e.to_string())?.1,
        "bfs" => Engine::new(g, &Bfs::new(source), config).run().map_err(|e| e.to_string())?.1,
        "sssp" => Engine::new(g, &Sssp::new(source), config).run().map_err(|e| e.to_string())?.1,
        "wcc" => Engine::new(g, &Wcc, config).run().map_err(|e| e.to_string())?.1,
        other => return Err(format!("unknown algo {other:?} (bfs|sssp|wcc|pagerank)")),
    };
    Ok(stats)
}

fn print_hot_blocks(k: usize) {
    let hot = hus_obs::attr::top_k(k);
    if hot.is_empty() {
        return;
    }
    let mut t = hus_obs::Table::new(&[
        "block",
        "raw MB",
        "encoded MB",
        "cache hit%",
        "decode ms",
        "retries",
        "degraded",
    ]);
    for b in &hot {
        t.row(vec![
            format!("({}, {})", b.i, b.j),
            format!("{:.2}", b.raw_bytes as f64 / 1e6),
            format!("{:.2}", b.encoded_bytes as f64 / 1e6),
            format!("{:.1}", b.hit_rate() * 100.0),
            format!("{:.2}", b.decode_ns as f64 / 1e6),
            b.retries.to_string(),
            b.degradations.to_string(),
        ]);
    }
    t.print(&format!("hottest {} blocks by device bytes", hot.len()));
    print!("{}", hus_obs::attr::render_heatmap(&hus_obs::attr::snapshot()));
}

/// `hus audit`: replay an algorithm with full telemetry and render the
/// cost-model audit trail — per-iteration predicted `C_rop`/`C_cop`
/// against the I/O actually performed, the mean misprediction ratio,
/// and the hottest blocks by attributed device bytes.
fn cmd_audit(rest: &[&String]) -> CliResult {
    let g = open_graph(positional(rest, 0)?, rest)?;
    let algo = flag_value(rest, "--algo").unwrap_or("bfs");
    let iters: usize =
        flag_value(rest, "--iters").map(|s| parse(s, "iterations")).transpose()?.unwrap_or(50);
    let source: u32 =
        flag_value(rest, "--source").map(|s| parse(s, "source")).transpose()?.unwrap_or(0);
    let blocks: usize =
        flag_value(rest, "--blocks").map(|s| parse(s, "block count")).transpose()?.unwrap_or(10);
    let mode = parse_mode(rest)?;
    // The audit needs metrics and per-block attribution regardless of
    // the HUS_TRACE / HUS_HEATMAP environment.
    hus_obs::set_enabled(true);
    hus_obs::set_heatmap_enabled(true);
    hus_obs::attr::reset();
    let config = RunConfig { mode, max_iterations: iters, ..Default::default() };
    let throughput = config.throughput;
    let stats = run_named(&g, algo, source, config)?;
    println!(
        "cost-model audit: {algo}, {} iterations ({})",
        stats.num_iterations(),
        if stats.converged { "converged" } else { "iteration cap" }
    );
    print!("{}", hus_core::audit::render_table(&hus_core::audit::audit_rows(&stats, &throughput)));
    print_hot_blocks(blocks);
    Ok(())
}

/// One refresh frame of `hus top`.
#[allow(clippy::too_many_arguments)]
fn draw_top_frame(
    algo: &str,
    iters: usize,
    started: std::time::Instant,
    io_now: &hus_storage::IoSnapshot,
    io_prev: &hus_storage::IoSnapshot,
    dt: f64,
    resilience: &hus_storage::ResilienceSnapshot,
    plain: bool,
) {
    if !plain {
        // Clear screen, home cursor.
        print!("\x1b[2J\x1b[H");
    }
    let reg = hus_obs::metrics::global();
    let gauge = |name: &str| {
        reg.gauge_values().iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0)
    };
    let counter = |name: &str| {
        reg.counter_values().iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0)
    };
    let rate = io_now.total_bytes().saturating_sub(io_prev.total_bytes()) as f64 / 1e6 / dt;
    println!(
        "hus top — {algo}  iter {}/{iters}  frontier {}  elapsed {:.1}s",
        gauge("engine.iteration") + 1,
        gauge("engine.active_vertices"),
        started.elapsed().as_secs_f64()
    );
    println!(
        "io: {:6.1} MB/s  read {:.1} MB (seq {:.1} / rand {:.1} / batched {:.1})  written {:.1} MB",
        rate,
        io_now.read_bytes() as f64 / 1e6,
        io_now.seq_read_bytes as f64 / 1e6,
        io_now.rand_read_bytes as f64 / 1e6,
        io_now.batched_read_bytes as f64 / 1e6,
        io_now.write_bytes as f64 / 1e6,
    );
    let (hits, misses) = (
        counter("storage.cache.hits") + counter("storage.codec.cache_hits"),
        counter("storage.cache.misses") + counter("storage.codec.cache_misses"),
    );
    let hit_pct =
        if hits + misses > 0 { hits as f64 / (hits + misses) as f64 * 100.0 } else { 0.0 };
    println!(
        "cache: {hit_pct:.1}% hit ({hits} hits / {misses} misses)  \
         predict: {} gated / {} rop / {} cop  edges {}",
        counter("predict.gated"),
        counter("predict.rop_selected"),
        counter("predict.cop_selected"),
        counter("engine.edges_processed"),
    );
    println!(
        "resilience: {} retries, {} giveups, {} checksum failures, \
         fallbacks {} mmap / {} direct / {} ranged / {} sync",
        resilience.retries,
        resilience.giveups,
        resilience.checksum_failures,
        resilience.mmap_fallbacks,
        resilience.direct_fallbacks,
        resilience.ranged_fallbacks,
        resilience.sync_fallbacks,
    );
    let heat = hus_obs::attr::render_heatmap(&hus_obs::attr::snapshot());
    if !heat.is_empty() {
        println!("\nblock heatmap (device bytes):\n{heat}");
    }
}

/// `hus top`: run an algorithm on a background thread and refresh a
/// compact live view (progress, throughput, cache hit rate, resilience
/// counters, block heatmap) until the run finishes.
fn cmd_top(rest: &[&String]) -> CliResult {
    let g = open_graph(positional(rest, 0)?, rest)?;
    let algo = flag_value(rest, "--algo").unwrap_or("pagerank").to_string();
    let iters: usize =
        flag_value(rest, "--iters").map(|s| parse(s, "iterations")).transpose()?.unwrap_or(10);
    let source: u32 =
        flag_value(rest, "--source").map(|s| parse(s, "source")).transpose()?.unwrap_or(0);
    let refresh_ms: u64 = flag_value(rest, "--refresh-ms")
        .map(|s| parse(s, "refresh interval"))
        .transpose()?
        .unwrap_or(500);
    let plain = has_flag(rest, "--plain");
    hus_obs::set_enabled(true);
    hus_obs::set_heatmap_enabled(true);
    hus_obs::attr::reset();
    let tracker = g.dir().tracker();
    let resilience = g.dir().resilience();
    let config = RunConfig { max_iterations: iters, ..RunConfig::with_mode(parse_mode(rest)?) };
    let started = std::time::Instant::now();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let worker = {
        let algo = algo.clone();
        std::thread::spawn(move || {
            let r = run_named(&g, &algo, source, config);
            drop(done_tx); // disconnects the channel: run is over
            r
        })
    };
    let mut prev = tracker.snapshot();
    let mut prev_t = started;
    while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) =
        done_rx.recv_timeout(std::time::Duration::from_millis(refresh_ms.max(50)))
    {
        let now = tracker.snapshot();
        let now_t = std::time::Instant::now();
        let dt = (now_t - prev_t).as_secs_f64().max(1e-6);
        draw_top_frame(&algo, iters, started, &now, &prev, dt, &resilience.snapshot(), plain);
        prev = now;
        prev_t = now_t;
    }
    let stats = worker.join().map_err(|_| "run thread panicked".to_string())??;
    let final_io = tracker.snapshot();
    draw_top_frame(
        &algo,
        iters,
        started,
        &final_io,
        &prev,
        (std::time::Instant::now() - prev_t).as_secs_f64().max(1e-6),
        &resilience.snapshot(),
        plain,
    );
    report_run(&stats);
    Ok(())
}

fn cmd_convert(rest: &[&String]) -> CliResult {
    let input = positional(rest, 0)?;
    let output = positional(rest, 1)?;
    let el = if input.ends_with(".husg") {
        hus_gen::io::read_binary(input).map_err(|e| e.to_string())?
    } else {
        hus_gen::io::read_text(input).map_err(|e| e.to_string())?
    };
    if output.ends_with(".husg") {
        hus_gen::io::write_binary(&el, output).map_err(|e| e.to_string())?;
    } else {
        hus_gen::io::write_text(&el, output).map_err(|e| e.to_string())?;
    }
    println!(
        "converted {} -> {} ({} vertices, {} edges{})",
        input,
        output,
        el.num_vertices,
        el.num_edges(),
        if el.is_weighted() { ", weighted" } else { "" }
    );
    Ok(())
}

fn cmd_probe(rest: &[&String]) -> CliResult {
    let dir = rest
        .first()
        .map(|s| std::path::PathBuf::from(s.as_str()))
        .unwrap_or_else(std::env::temp_dir);
    let report = hus_storage::probe::measure(&dir, &hus_storage::probe::ProbeOptions::default())
        .map_err(|e| e.to_string())?;
    println!("throughput probe in {}:", dir.display());
    println!("  sequential read: {:8.1} MB/s", report.read.sequential_bps / 1e6);
    println!("  random read:     {:8.1} MB/s", report.read.random_bps / 1e6);
    println!("  batched (est.):  {:8.1} MB/s", report.read.batched_bps / 1e6);
    println!("  write:           {:8.1} MB/s", report.write_bps / 1e6);
    println!("(page cache inflates these on most hosts; see hus-storage::probe docs)");
    Ok(())
}
