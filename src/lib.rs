//! # husgraph — I/O-efficient out-of-core graph processing with a hybrid
//! update strategy
//!
//! A from-scratch Rust reproduction of **HUS-Graph** (Xu, Wang, Jiang,
//! Cheng, Feng, Zhang — ICPP 2018): a single-machine out-of-core graph
//! engine that balances I/O amount against I/O access locality by
//! adaptively switching between **Row-oriented Push** (selective random
//! loads of only the active edges) and **Column-oriented Pull**
//! (sequential streaming of whole in-edge blocks), driven by an I/O-based
//! cost predictor.
//!
//! This umbrella crate re-exports the workspace and offers a compact
//! facade ([`Graph`]) for the common case:
//!
//! ```
//! use husgraph::Graph;
//!
//! let edges = husgraph::gen::rmat(1_000, 8_000, 42, Default::default());
//! let tmp = tempfile::tempdir().unwrap();
//! let graph = Graph::build(&edges, tmp.path().join("g")).unwrap();
//! let (levels, stats) = graph.bfs(0).unwrap();
//! assert_eq!(levels[0], 0);
//! println!("BFS took {} iterations, {:.1} MB of I/O",
//!          stats.num_iterations(), stats.total_io.total_bytes() as f64 / 1e6);
//! ```
//!
//! The full API lives in the member crates:
//!
//! * [`storage`] — tracked file/mmap backends, device cost models
//! * [`codec`] — per-block edge codecs (raw, delta-varint)
//! * [`gen`] — synthetic graph generators and dataset presets
//! * [`core`] — the dual-block representation, ROP/COP, the hybrid engine
//! * [`algos`] — BFS, WCC, SSSP, PageRank(-Delta), PPR, SpMV + references
//! * [`baselines`] — GraphChi-style and GridGraph-style engines
//! * [`serve`] — the concurrent multi-query daemon behind `hus serve`

#![warn(missing_docs)]

pub use hus_algos as algos;
pub use hus_baselines as baselines;
pub use hus_codec as codec;
pub use hus_core as core;
pub use hus_gen as gen;
pub use hus_obs as obs;
pub use hus_serve as serve;
pub use hus_storage as storage;

use hus_algos::{Bfs, PageRank, Sssp, Wcc};
use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, RunStats, VertexProgram};
use hus_gen::EdgeList;
use hus_storage::{Result, StorageDir};
use std::path::Path;

/// High-level handle: build or open a dual-block graph and run the
/// bundled algorithms with default settings.
pub struct Graph {
    inner: HusGraph,
}

impl Graph {
    /// Build `edges` into a new graph directory at `path` with default
    /// build settings (automatic interval count).
    pub fn build(edges: &EdgeList, path: impl AsRef<Path>) -> Result<Self> {
        Self::build_with(edges, path, &BuildConfig::default())
    }

    /// Build with explicit build configuration.
    pub fn build_with(
        edges: &EdgeList,
        path: impl AsRef<Path>,
        config: &BuildConfig,
    ) -> Result<Self> {
        let dir = StorageDir::create(path)?;
        Ok(Graph { inner: HusGraph::build_into(edges, &dir, config)? })
    }

    /// Open a previously built graph directory.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Graph { inner: HusGraph::open(StorageDir::open(path)?)? })
    }

    /// The underlying engine-level graph.
    pub fn inner(&self) -> &HusGraph {
        &self.inner
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.inner.meta().num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u64 {
        self.inner.meta().num_edges
    }

    /// Run any [`VertexProgram`] with an explicit run configuration.
    pub fn run<Pr: VertexProgram>(
        &self,
        program: &Pr,
        config: RunConfig,
    ) -> Result<(Vec<Pr::Value>, RunStats)> {
        Engine::new(&self.inner, program, config).run()
    }

    /// BFS levels from `source` (`u32::MAX` = unreachable).
    pub fn bfs(&self, source: u32) -> Result<(Vec<u32>, RunStats)> {
        self.run(&Bfs::new(source), RunConfig::default())
    }

    /// Weakly-connected-component labels (build the graph from a
    /// symmetrized edge list for meaningful results).
    pub fn wcc(&self) -> Result<(Vec<u32>, RunStats)> {
        self.run(&Wcc, RunConfig::default())
    }

    /// Shortest-path distances from `source` (`f32::INFINITY` =
    /// unreachable; unweighted edges count 1.0).
    pub fn sssp(&self, source: u32) -> Result<(Vec<f32>, RunStats)> {
        self.run(&Sssp::new(source), RunConfig::default())
    }

    /// PageRank for a fixed number of iterations (the paper uses 5).
    pub fn pagerank(&self, iterations: usize) -> Result<(Vec<f32>, RunStats)> {
        let config = RunConfig { max_iterations: iterations, ..Default::default() };
        self.run(&PageRank::new(self.num_vertices()), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_roundtrip() {
        let el = hus_gen::classic::cycle(12);
        let tmp = tempfile::tempdir().unwrap();
        let g = Graph::build(&el, tmp.path().join("g")).unwrap();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 12);
        let (levels, stats) = g.bfs(3).unwrap();
        assert_eq!(levels[3], 0);
        assert_eq!(levels[2], 11);
        assert!(stats.converged);
        // Re-open from disk.
        let g2 = Graph::open(tmp.path().join("g")).unwrap();
        assert_eq!(g2.num_vertices(), 12);
        let (levels2, _) = g2.bfs(3).unwrap();
        assert_eq!(levels, levels2);
    }

    #[test]
    fn facade_pagerank_and_wcc() {
        let el = hus_gen::rmat(100, 600, 1, Default::default()).symmetrize();
        let tmp = tempfile::tempdir().unwrap();
        let g = Graph::build(&el, tmp.path().join("g")).unwrap();
        let (ranks, _) = g.pagerank(5).unwrap();
        assert_eq!(ranks.len(), 100);
        assert!(ranks.iter().all(|r| *r > 0.0));
        let (labels, _) = g.wcc().unwrap();
        assert!(labels.iter().all(|&l| l < 100));
    }
}
