//! Crash-recovery: the crash-at-any-point property for both builders,
//! resumable external builds, and checkpointed engine runs.
//!
//! The harness re-executes this test binary as a child process with
//! `HUS_CRASH_AT=<point>` armed, so the child genuinely dies (exit code
//! [`CRASH_EXIT_CODE`], no `Drop` cleanup, buffered writes lost) at each
//! staged write point. The parent then asserts the contract from
//! DESIGN.md §10: after a crash at *any* point, the target directory is
//! either absent, fully valid (deep-verified by `fsck`), or `open()`
//! fails with a typed `IncompleteBuild`/`ManifestMismatch` error —
//! never silently wrong. On top of that, interrupted external builds
//! must resume to byte-identical output, and a killed checkpointed
//! engine run must resume to bit-identical PageRank values.
//!
//! The guarded `recovery_child_*` tests are the child-process entry
//! points: inert (they return immediately) unless `RECOVERY_CHILD`
//! names them, so a normal `cargo test` run is unaffected.

use std::path::{Path, PathBuf};
use std::process::Command;

use husgraph::algos::PageRank;
use husgraph::core::{build_external, fsck, BuildConfig, Engine, HusGraph, ListSource, RunConfig};
use husgraph::gen::EdgeList;
use husgraph::storage::durable::CRASH_EXIT_CODE;
use husgraph::storage::{StorageDir, StorageError};

/// Deterministic workload shared by parent and child processes.
fn edges() -> EdgeList {
    husgraph::gen::rmat(600, 5_000, 42, Default::default())
}

fn build_config() -> BuildConfig {
    BuildConfig::with_p(3)
}

/// Engine config for the kill/resume test: single-threaded (so float
/// accumulation order is fixed and bitwise comparison is meaningful),
/// checkpoint every 2 iterations into a well-known scratch name.
fn engine_config() -> RunConfig {
    RunConfig {
        threads: 1,
        max_iterations: 8,
        checkpoint_every: 2,
        scratch_name: Some("rck".into()),
        ..Default::default()
    }
}

fn child_role() -> Option<String> {
    std::env::var("RECOVERY_CHILD").ok()
}

fn recovery_dir() -> PathBuf {
    PathBuf::from(std::env::var("RECOVERY_DIR").expect("RECOVERY_DIR set for child"))
}

/// Child entry point: in-memory build of the shared workload.
#[test]
fn recovery_child_mem_build() {
    if child_role().as_deref() != Some("mem_build") {
        return;
    }
    let dir = StorageDir::create(recovery_dir().join("g")).unwrap();
    HusGraph::build_into(&edges(), &dir, &build_config()).unwrap();
}

/// Child entry point: external (streaming) build of the shared workload.
#[test]
fn recovery_child_ext_build() {
    if child_role().as_deref() != Some("ext_build") {
        return;
    }
    let el = edges();
    let dir = StorageDir::create(recovery_dir().join("g")).unwrap();
    build_external(&ListSource(&el), &dir, &build_config()).unwrap();
}

/// Child entry point: checkpointed PageRank over a pre-built graph.
#[test]
fn recovery_child_engine_run() {
    if child_role().as_deref() != Some("engine_run") {
        return;
    }
    let g = HusGraph::open(StorageDir::open(recovery_dir().join("g")).unwrap()).unwrap();
    let pr = PageRank::new(g.meta().num_vertices);
    Engine::new(&g, &pr, engine_config()).run().unwrap();
}

/// Re-execute this test binary running exactly `test` with
/// `HUS_CRASH_AT=crash_at` armed; returns the child's exit code.
/// `HUS_NO_FSYNC=1` keeps the sweep fast — crash points fire via
/// `process::exit`, so buffered-but-unflushed data is lost either way.
fn run_child(test: &str, role: &str, dir: &Path, crash_at: &str) -> Option<i32> {
    let status = Command::new(std::env::current_exe().unwrap())
        .arg(test)
        .arg("--exact")
        .arg("--test-threads=1")
        .env("RECOVERY_CHILD", role)
        .env("RECOVERY_DIR", dir)
        .env("HUS_CRASH_AT", crash_at)
        .env("HUS_NO_FSYNC", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap();
    status.code()
}

/// The §10 contract: after a crash, the target is absent, fully valid
/// (deep-verified), or rejected by `open()` with a typed lifecycle
/// error. Anything else is silent corruption.
fn assert_crash_left_consistent_state(target: &Path, point: &str) {
    if !target.exists() {
        return; // crash before the staging dir was even created
    }
    let dir = StorageDir::open(target).unwrap();
    match HusGraph::open(dir.clone()) {
        Ok(_) => {
            let report = fsck(&dir, false).unwrap();
            assert!(
                report.is_clean(),
                "crash at `{point}`: directory opened but fsck disagrees:\n{}",
                report.render()
            );
        }
        Err(StorageError::IncompleteBuild { .. }) | Err(StorageError::ManifestMismatch { .. }) => {}
        Err(other) => panic!("crash at `{point}` surfaced as an untyped error: {other}"),
    }
}

/// Crash the given builder child at `point`, check the §10 contract,
/// then rebuild over the crashed state and require a clean result.
fn crash_then_recover(test: &str, role: &str, point: &str, rebuild: impl Fn(&StorageDir)) {
    let tmp = tempfile::tempdir().unwrap();
    let code = run_child(test, role, tmp.path(), point);
    assert_eq!(code, Some(CRASH_EXIT_CODE), "point `{point}` never fired (exit {code:?})");

    let target = tmp.path().join("g");
    assert_crash_left_consistent_state(&target, point);

    // Recovery: building again over whatever the crash left behind must
    // succeed and deep-verify clean.
    let dir = StorageDir::create(&target).unwrap();
    rebuild(&dir);
    let report = fsck(&dir, false).unwrap();
    assert!(report.is_clean(), "rebuild after `{point}` not clean:\n{}", report.render());
    let g = HusGraph::open(dir).unwrap();
    assert_eq!(g.meta().num_edges, edges().num_edges() as u64);
}

#[test]
fn in_memory_build_crash_at_any_point_is_never_silently_wrong() {
    // Every staged write point of the in-memory builder, including a
    // torn shard (`build.shard_mid` fires with writes still buffered)
    // and both sides of the atomic rename.
    for point in [
        "build.shard_mid",
        "build.shard",
        "build.shard:3",
        "build.degrees",
        "build.meta",
        "build.manifest",
        "build.pre_rename",
        "build.post_rename",
    ] {
        crash_then_recover("recovery_child_mem_build", "mem_build", point, |dir| {
            HusGraph::build_into(&edges(), dir, &build_config()).unwrap();
        });
    }
}

#[test]
fn external_build_crash_at_any_point_is_never_silently_wrong() {
    // External-builder phase boundaries plus the shared finalize points.
    for point in [
        "ext.degrees",
        "ext.spill",
        "ext.shard",
        "ext.shard:3",
        "build.meta",
        "build.manifest",
        "build.pre_rename",
        "build.post_rename",
    ] {
        crash_then_recover("recovery_child_ext_build", "ext_build", point, |dir| {
            let el = edges();
            build_external(&ListSource(&el), dir, &build_config()).unwrap();
        });
    }
}

#[test]
fn interrupted_external_build_resumes_to_byte_identical_output() {
    let tmp = tempfile::tempdir().unwrap();
    let el = edges();

    // Uninterrupted reference build.
    let ref_dir = StorageDir::create(tmp.path().join("ref")).unwrap();
    build_external(&ListSource(&el), &ref_dir, &build_config()).unwrap();

    // Crash mid shard phase: degrees and spills are durable, some
    // shards are done, progress.json records exactly how far.
    let code = run_child("recovery_child_ext_build", "ext_build", tmp.path(), "ext.shard:2");
    assert_eq!(code, Some(CRASH_EXIT_CODE));

    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    assert!(!dir.staging_siblings().is_empty(), "crash left a resumable staging sibling");
    build_external(&ListSource(&el), &dir, &build_config()).unwrap();
    assert!(dir.staging_siblings().is_empty(), "staging sibling adopted and committed");

    // Every committed file — shards, indexes, degrees, meta.json and the
    // generation-stamped MANIFEST — is byte-identical to the reference.
    let listing = |root: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(root)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    let names = listing(&tmp.path().join("ref"));
    assert_eq!(names, listing(&tmp.path().join("g")));
    for name in &names {
        let a = std::fs::read(tmp.path().join("ref").join(name)).unwrap();
        let b = std::fs::read(tmp.path().join("g").join(name)).unwrap();
        assert_eq!(a, b, "file `{name}` differs between resumed and uninterrupted builds");
    }
}

#[test]
fn killed_checkpointed_run_resumes_bit_identical_pagerank() {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    HusGraph::build_into(&edges(), &dir, &build_config()).unwrap();

    // Uninterrupted 8-iteration reference (separate scratch, no
    // checkpointing so nothing could possibly leak between the runs).
    let g = HusGraph::open(StorageDir::open(tmp.path().join("g")).unwrap()).unwrap();
    let pr = PageRank::new(g.meta().num_vertices);
    let ref_cfg =
        RunConfig { scratch_name: Some("ref".into()), checkpoint_every: 0, ..engine_config() };
    let (ref_vals, ref_stats) = Engine::new(&g, &pr, ref_cfg).run().unwrap();
    assert_eq!(ref_stats.num_iterations(), 8);

    // Kill a checkpointed run at the end of iteration 4 (the 5th hit of
    // `engine.iteration_end`). Checkpoints were saved after iterations
    // 1 and 3, so the freshest durable snapshot is iteration 3.
    let code =
        run_child("recovery_child_engine_run", "engine_run", tmp.path(), "engine.iteration_end:5");
    assert_eq!(code, Some(CRASH_EXIT_CODE));

    // Resume with the same scratch: re-enters at iteration 4 and the
    // final ranks are bit-for-bit the uninterrupted run's.
    let (vals, stats) = Engine::new(&g, &pr, engine_config()).run().unwrap();
    assert_eq!(stats.checkpoints.resumed_from, Some(3), "resumed from the iteration-3 snapshot");
    assert_eq!(stats.num_iterations(), 4, "iterations 4..8 re-run, 0..4 skipped");
    assert!(stats.checkpoints.written > 0);
    assert_eq!(
        vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        ref_vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "resumed PageRank is not bit-identical to the uninterrupted run"
    );
}

/// Deterministic update batch shared by the delta-crash children and
/// their parents: 50 inserts with distinct keys, then a tombstone for
/// one of them (so the batch exercises puts *and* a delete of a
/// just-put key).
fn apply_updates(dg: &mut husgraph::core::DynamicGraph) {
    for k in 0..50u32 {
        dg.insert_edge(k, (k * 7 + 1) % 600, 1.0).unwrap();
    }
    dg.delete_edge(2, 15).unwrap();
}

/// Edge count of the base workload after `apply_updates` is fully
/// durable: base edges whose key the batch never touched (an insert
/// collapses every base copy of its key) plus the 49 surviving puts.
fn expected_edges_after_updates() -> u64 {
    let keys: std::collections::BTreeSet<(u32, u32)> =
        (0..50u32).map(|k| (k, (k * 7 + 1) % 600)).collect();
    let untouched = edges().edges.iter().filter(|e| !keys.contains(&(e.src, e.dst))).count() as u64;
    untouched + 49
}

/// Child entry point: streaming updates + memtable spill over a
/// pre-built graph.
#[test]
fn recovery_child_delta_spill() {
    if child_role().as_deref() != Some("delta_spill") {
        return;
    }
    let mut dg =
        husgraph::core::DynamicGraph::open(StorageDir::open(recovery_dir().join("g")).unwrap())
            .unwrap();
    apply_updates(&mut dg);
    dg.flush().unwrap();
}

/// Child entry point: compaction of a graph carrying a live delta run.
#[test]
fn recovery_child_delta_compact() {
    if child_role().as_deref() != Some("delta_compact") {
        return;
    }
    let mut dg =
        husgraph::core::DynamicGraph::open(StorageDir::open(recovery_dir().join("g")).unwrap())
            .unwrap();
    dg.compact().unwrap();
}

#[test]
fn delta_spill_crash_at_any_point_is_never_silently_wrong() {
    // The spill's own staged-write points: before the run's rename
    // (only a quarantinable .tmp survives), after the run commits but
    // before the manifest lists it (an orphaned run — stale, not
    // corruption), and after the manifest rewrite (fully durable).
    for point in ["delta.run_tmp", "delta.spill_run", "delta.spill_manifest"] {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        HusGraph::build_into(&edges(), &dir, &build_config()).unwrap();

        let code = run_child("recovery_child_delta_spill", "delta_spill", tmp.path(), point);
        assert_eq!(code, Some(CRASH_EXIT_CODE), "point `{point}` never fired (exit {code:?})");
        assert_crash_left_consistent_state(&tmp.path().join("g"), point);

        // The base build is untouched by any spill crash, and repair
        // quarantines whatever the crash left behind.
        let dir = StorageDir::open(tmp.path().join("g")).unwrap();
        HusGraph::open(dir.clone()).unwrap();
        let report = fsck(&dir, true).unwrap();
        assert!(report.is_clean(), "crash at `{point}`:\n{}", report.render());

        // Recovery is redo: the memtable is volatile by contract, so
        // the writer re-applies the batch; inserts and tombstones are
        // idempotent, so this is safe whether or not the crashed spill
        // made it to disk.
        let mut dg = husgraph::core::DynamicGraph::open(dir).unwrap();
        apply_updates(&mut dg);
        dg.flush().unwrap();
        assert!(dg.compact().unwrap());
        assert_eq!(dg.snapshot().unwrap().num_edges(), expected_edges_after_updates());
        let dir = StorageDir::open(tmp.path().join("g")).unwrap();
        let report = fsck(&dir, false).unwrap();
        assert!(report.is_clean(), "after redo at `{point}`:\n{}", report.render());
    }
}

#[test]
fn delta_compaction_crash_at_any_point_is_never_silently_wrong() {
    // Compaction is an ordinary staged build, so it inherits the
    // builder's crash points: a crash before the commit rename leaves
    // the old base + delta runs fully intact; after it, the folded
    // build. Either way the update batch is durable (it was spilled
    // before compaction started) and must survive.
    for point in
        ["build.shard", "build.meta", "build.manifest", "build.pre_rename", "build.post_rename"]
    {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        HusGraph::build_into(&edges(), &dir, &build_config()).unwrap();
        let mut dg = husgraph::core::DynamicGraph::open(dir).unwrap();
        apply_updates(&mut dg);
        dg.flush().unwrap();
        assert_eq!(dg.run_count(), 1);
        drop(dg);

        let code = run_child("recovery_child_delta_compact", "delta_compact", tmp.path(), point);
        assert_eq!(code, Some(CRASH_EXIT_CODE), "point `{point}` never fired (exit {code:?})");
        assert_crash_left_consistent_state(&tmp.path().join("g"), point);

        // Recovery: reopen, finish (or redo) the compaction, and the
        // spilled updates are all still there.
        let mut dg =
            husgraph::core::DynamicGraph::open(StorageDir::open(tmp.path().join("g")).unwrap())
                .unwrap();
        assert_eq!(
            dg.snapshot().unwrap().num_edges(),
            expected_edges_after_updates(),
            "crash at `{point}` lost durable updates"
        );
        if dg.run_count() > 0 {
            assert!(dg.compact().unwrap());
        }
        assert_eq!(dg.run_count(), 0);
        assert_eq!(dg.snapshot().unwrap().num_edges(), expected_edges_after_updates());
        let dir = StorageDir::open(tmp.path().join("g")).unwrap();
        let report = fsck(&dir, true).unwrap();
        assert!(report.is_clean(), "after recovery at `{point}`:\n{}", report.render());
    }
}
