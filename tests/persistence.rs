//! Persistence and lifecycle: a built graph directory can be reopened
//! cold and produces identical results; edge-list files round-trip
//! through the on-disk formats into the engines.

use husgraph::gen::io as gio;
use husgraph::Graph;

#[test]
fn reopened_graph_produces_identical_results() {
    let el = husgraph::gen::rmat(300, 2500, 99, Default::default());
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("persisted");

    let (levels_a, ranks_a) = {
        let g = Graph::build(&el, &path).unwrap();
        (g.bfs(0).unwrap().0, g.pagerank(5).unwrap().0)
    };
    // Fresh handle from disk only.
    let g = Graph::open(&path).unwrap();
    assert_eq!(g.num_vertices(), 300);
    assert_eq!(g.num_edges(), el.num_edges() as u64);
    assert_eq!(g.bfs(0).unwrap().0, levels_a);
    assert_eq!(g.pagerank(5).unwrap().0, ranks_a);
}

#[test]
fn binary_edge_list_to_engine_pipeline() {
    let tmp = tempfile::tempdir().unwrap();
    let el = husgraph::gen::rmat(150, 1200, 5, Default::default()).with_hash_weights(0.5, 2.0);
    let file = tmp.path().join("graph.husg");
    gio::write_binary(&el, &file).unwrap();

    let loaded = gio::read_binary(&file).unwrap();
    assert_eq!(loaded, el);
    let g = Graph::build(&loaded, tmp.path().join("g")).unwrap();
    let (dist, stats) = g.sssp(0).unwrap();
    assert!(stats.converged);
    assert_eq!(dist[0], 0.0);
}

#[test]
fn text_edge_list_to_engine_pipeline() {
    let tmp = tempfile::tempdir().unwrap();
    let text = "# tiny road net\n0 1 2.5\n1 2 1.0\n0 2 5.0\n2 3 1.0\n";
    let file = tmp.path().join("roads.txt");
    std::fs::write(&file, text).unwrap();
    let el = gio::read_text(&file).unwrap();
    let g = Graph::build(&el, tmp.path().join("g")).unwrap();
    let (dist, _) = g.sssp(0).unwrap();
    assert_eq!(dist, vec![0.0, 2.5, 3.5, 4.5]);
}

#[test]
fn corrupted_manifest_is_rejected_cleanly() {
    let el = husgraph::gen::rmat(50, 300, 1, Default::default());
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    Graph::build(&el, &path).unwrap();
    std::fs::write(path.join("meta.json"), "{ not json").unwrap();
    let err = Graph::open(&path);
    assert!(err.is_err(), "corrupt manifest must not open");
}

#[test]
fn concurrent_runs_on_one_graph_do_not_interfere() {
    let el = husgraph::gen::rmat(200, 1500, 3, Default::default());
    let tmp = tempfile::tempdir().unwrap();
    let g = Graph::build(&el, tmp.path().join("g")).unwrap();
    let (want, _) = g.bfs(0).unwrap();
    // Engine scratch directories are uniquely named, so interleaved runs
    // on the same graph handle can't clobber each other's vertex stores.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let g = &g;
                s.spawn(move || g.bfs(0).unwrap().0)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), want);
        }
    });
}

#[test]
fn mmap_backend_produces_identical_results() {
    use husgraph::core::{BuildConfig, Engine, HusGraph, RunConfig};
    use husgraph::storage::{BackendKind, StorageDir};
    let el = husgraph::gen::rmat(250, 2000, 77, Default::default());
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    let file_dir = StorageDir::create(&path).unwrap();
    let g_file = HusGraph::build_into(&el, &file_dir, &BuildConfig::with_p(4)).unwrap();
    let (want, _) =
        Engine::new(&g_file, &husgraph::algos::Bfs::new(0), RunConfig::default()).run().unwrap();
    // Re-open the same directory with the mmap read backend.
    let mmap_dir = StorageDir::open(&path).unwrap().with_backend(BackendKind::Mmap);
    let g_mmap = HusGraph::open(mmap_dir).unwrap();
    let (got, stats) =
        Engine::new(&g_mmap, &husgraph::algos::Bfs::new(0), RunConfig::default()).run().unwrap();
    assert_eq!(got, want);
    // Accounting is identical regardless of the backend serving reads.
    assert!(stats.total_io.total_bytes() > 0);
}

#[test]
fn all_backends_and_codecs_agree_bit_for_bit() {
    use husgraph::algos::{PageRank, Wcc};
    use husgraph::codec::Codec;
    use husgraph::core::{BuildConfig, Engine, HusGraph, RunConfig};
    use husgraph::storage::{BackendKind, StorageDir};
    let el = husgraph::gen::rmat(400, 3500, 31, Default::default());
    let tmp = tempfile::tempdir().unwrap();
    // PageRank is float arithmetic, so "agree" here is the strongest
    // claim available: bit-identical vertex values for every (backend,
    // codec) combination, regardless of how reads were aligned,
    // batched or decoded underneath.
    let mut want: Option<(Vec<f32>, Vec<u32>)> = None;
    for (ci, codec) in [Codec::Raw, Codec::DeltaVarint].into_iter().enumerate() {
        let path = tmp.path().join(format!("g{ci}"));
        let dir = StorageDir::create(&path).unwrap();
        HusGraph::build_into(&el, &dir, &BuildConfig::with_p_codec(4, codec)).unwrap();
        for kind in [BackendKind::File, BackendKind::Mmap, BackendKind::Direct] {
            let g = HusGraph::open(StorageDir::open(&path).unwrap().with_backend(kind)).unwrap();
            let cfg = RunConfig { max_iterations: 5, ..RunConfig::default() };
            let (ranks, _) =
                Engine::new(&g, &PageRank::new(el.num_vertices), cfg.clone()).run().unwrap();
            let (comps, _) = Engine::new(&g, &Wcc, cfg).run().unwrap();
            match &want {
                None => want = Some((ranks, comps)),
                Some((wr, wc)) => {
                    assert_eq!(&ranks, wr, "PageRank diverged under {kind:?}/{codec}");
                    assert_eq!(&comps, wc, "WCC diverged under {kind:?}/{codec}");
                }
            }
        }
    }
}
