//! Algorithm-level invariants checked on engine output (not just
//! equality with references): structural facts that must hold for *any*
//! correct BFS/SSSP/WCC/PageRank, probed on random graphs.

use husgraph::algos::{Bfs, PageRank, Sssp, Wcc, UNREACHED};
use husgraph::core::{BuildConfig, Engine, HusGraph, RunConfig};
use husgraph::gen::{Csr, EdgeList};
use husgraph::storage::StorageDir;
use proptest::prelude::*;

fn arb_graph(max_v: u32, max_e: usize) -> impl Strategy<Value = EdgeList> {
    (3..max_v).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 1..max_e).prop_map(move |pairs| {
            let mut el = EdgeList::from_pairs(pairs);
            el.num_vertices = n;
            el
        })
    })
}

fn build(el: &EdgeList, p: u32) -> (tempfile::TempDir, HusGraph) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
    (tmp, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// BFS levels satisfy the edge relaxation property:
    /// `level[dst] <= level[src] + 1` for every edge with reached src,
    /// and every reached non-source vertex has an in-neighbor exactly
    /// one level shallower (a valid BFS tree exists).
    #[test]
    fn bfs_levels_are_tight(el in arb_graph(60, 300), p in 1u32..5) {
        let (_t, g) = build(&el, p);
        let (levels, _) =
            Engine::new(&g, &Bfs::new(0), RunConfig::default()).run().unwrap();
        for e in &el.edges {
            let (ls, ld) = (levels[e.src as usize], levels[e.dst as usize]);
            if ls != UNREACHED {
                prop_assert!(ld != UNREACHED && ld <= ls + 1, "edge {e:?}: {ls} -> {ld}");
            }
        }
        let csr = Csr::from_edge_list(&el);
        for v in 0..el.num_vertices {
            let l = levels[v as usize];
            if v == 0 || l == UNREACHED {
                continue;
            }
            let has_parent = csr
                .in_neighbors(v)
                .iter()
                .any(|&u| levels[u as usize] != UNREACHED && levels[u as usize] + 1 == l);
            prop_assert!(has_parent, "vertex {v} at level {l} has no parent");
        }
    }

    /// SSSP distances satisfy the triangle inequality over every edge and
    /// are realized by some in-edge (each reached vertex's distance is
    /// exactly an in-neighbor's distance plus the edge weight).
    #[test]
    fn sssp_distances_are_tight(el in arb_graph(50, 250), p in 1u32..5) {
        let el = el.with_hash_weights(0.5, 2.0);
        let (_t, g) = build(&el, p);
        let (dist, _) =
            Engine::new(&g, &Sssp::new(0), RunConfig::default()).run().unwrap();
        let csr = Csr::from_edge_list(&el);
        for v in 0..el.num_vertices {
            let ws = csr.out_edge_weights(v);
            for (k, &w) in csr.out_neighbors(v).iter().enumerate() {
                let lhs = dist[w as usize];
                let rhs = dist[v as usize] + ws[k];
                prop_assert!(
                    lhs <= rhs + 1e-4,
                    "edge {v}->{w}: {lhs} > {} + {}",
                    dist[v as usize],
                    ws[k]
                );
            }
        }
        for v in 1..el.num_vertices {
            let d = dist[v as usize];
            if !d.is_finite() {
                continue;
            }
            let ws = csr.in_edge_weights(v);
            let realized = csr.in_neighbors(v).iter().enumerate().any(|(k, &u)| {
                (dist[u as usize] + ws[k] - d).abs() <= 1e-4 * d.max(1.0)
            });
            prop_assert!(realized, "vertex {v} distance {d} realized by no in-edge");
        }
    }

    /// WCC labels on a symmetrized graph: endpoints of every edge share a
    /// label, every label is the minimum id of its member set, and labels
    /// are themselves members of their own component.
    #[test]
    fn wcc_labels_are_consistent(el in arb_graph(50, 200), p in 1u32..5) {
        let el = el.symmetrize();
        let (_t, g) = build(&el, p);
        let (labels, _) = Engine::new(&g, &Wcc, RunConfig::default()).run().unwrap();
        for e in &el.edges {
            prop_assert_eq!(labels[e.src as usize], labels[e.dst as usize]);
        }
        for (v, &l) in labels.iter().enumerate() {
            prop_assert!(l <= v as u32, "label exceeds member id");
            prop_assert_eq!(labels[l as usize], l, "label {} is not its own root", l);
        }
    }

    /// PageRank: every rank is at least the teleport term, total rank is
    /// bounded by 1, and rank mass is conserved exactly on graphs where
    /// every vertex has an out-edge.
    #[test]
    fn pagerank_mass_properties(el in arb_graph(40, 300), p in 1u32..4) {
        // Ensure no dangling vertices: add a cycle over all vertices.
        let n = el.num_vertices;
        let mut el = el;
        for v in 0..n {
            el.edges.push(husgraph::gen::Edge::new(v, (v + 1) % n));
        }
        let el = el.dedup();
        let (_t, g) = build(&el, p);
        let pr = PageRank::new(n);
        let config = RunConfig { max_iterations: 5, ..Default::default() };
        let (ranks, _) = Engine::new(&g, &pr, config).run().unwrap();
        let base = 0.15 / n as f32;
        let total: f32 = ranks.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-3, "mass {total}");
        for (v, &r) in ranks.iter().enumerate() {
            prop_assert!(r >= base * 0.999, "vertex {v} rank {r} below teleport {base}");
        }
    }

    /// The engine's per-iteration statistics are internally consistent:
    /// iteration indices are dense, frontier counts match what the
    /// algorithm reports, and the per-iteration I/O deltas sum to the
    /// run's total.
    #[test]
    fn run_stats_are_internally_consistent(el in arb_graph(60, 250), p in 1u32..5) {
        let (_t, g) = build(&el, p);
        let (_, stats) =
            Engine::new(&g, &Bfs::new(0), RunConfig::default()).run().unwrap();
        for (k, it) in stats.iterations.iter().enumerate() {
            prop_assert_eq!(it.iteration, k);
            prop_assert!(it.active_vertices > 0, "empty frontier must terminate");
        }
        let summed = stats
            .iterations
            .iter()
            .fold(husgraph::storage::IoSnapshot::default(), |acc, it| acc.plus(&it.io));
        // Total includes vertex-store setup, so it dominates the sum.
        prop_assert!(summed.total_bytes() <= stats.total_io.total_bytes());
        let edges: u64 = stats.iterations.iter().map(|it| it.edges_processed).sum();
        prop_assert_eq!(edges, stats.edges_processed);
    }
}
