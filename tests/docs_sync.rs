//! Documentation-vs-code synchronization tests (satellite of the
//! storage-resilience PR): the README's environment-knob table is
//! generated from `hus_obs::env::KNOBS`, and `docs/FORMAT.md`'s byte
//! offsets mirror the source constants. These tests fail — printing
//! the expected text — whenever either side drifts.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The README's env table lives between these markers and must equal
/// `hus_obs::env::markdown_table()` verbatim.
#[test]
fn readme_env_table_matches_registry() {
    let readme = read("README.md");
    let begin = "<!-- env-table:begin";
    let end = "<!-- env-table:end -->";
    let start = readme.find(begin).expect("README.md lost its env-table:begin marker");
    let start = readme[start..].find('\n').map(|n| start + n + 1).unwrap();
    let stop = readme.find(end).expect("README.md lost its env-table:end marker");
    let actual = &readme[start..stop];
    let expected = husgraph::obs::env::markdown_table();
    assert!(
        actual == expected,
        "README env table is out of sync with hus_obs::env::KNOBS.\n\
         Replace the table between the markers with:\n\n{expected}"
    );
}

/// Every `HUS_*` variable read anywhere in the source tree must be
/// registered in `hus_obs::env::KNOBS`, and every registered knob must
/// still be read somewhere (no stale docs).
#[test]
fn env_registry_is_complete_and_live() {
    let mut sources = Vec::new();
    collect_rs(&repo_root().join("crates"), &mut sources);
    collect_rs(&repo_root().join("src"), &mut sources);
    assert!(sources.len() > 20, "source scan looks broken: {} files", sources.len());

    let mut used = BTreeSet::new();
    for path in &sources {
        let text = std::fs::read_to_string(path).unwrap();
        for name in hus_tokens(&text) {
            used.insert(name);
        }
    }
    let registered: BTreeSet<String> =
        husgraph::obs::env::KNOBS.iter().map(|k| k.name.to_string()).collect();

    let unregistered: Vec<_> = used.difference(&registered).collect();
    assert!(
        unregistered.is_empty(),
        "HUS_* variables read in source but missing from hus_obs::env::KNOBS: {unregistered:?}"
    );
    let stale: Vec<_> = registered.difference(&used).collect();
    assert!(
        stale.is_empty(),
        "knobs registered in hus_obs::env::KNOBS but never read in source: {stale:?}"
    );
}

/// `docs/FORMAT.md` states byte-level constants; they must equal the
/// source-of-truth values in `hus_core::meta` and
/// `hus_storage::checksum`.
#[test]
fn format_md_constants_match_source() {
    use husgraph::core::meta::{INDEX_ENTRY_BYTES, INDEX_PROBE_BYTES};
    use husgraph::storage::checksum::{
        footer_len, FOOTER_FIXED_BYTES, FOOTER_MAGIC, FOOTER_VERSION,
    };

    use husgraph::codec::{CODEC_DELTA_VARINT, CODEC_RAW};

    let fmt = read("docs/FORMAT.md");
    for row in [
        format!("| `INDEX_ENTRY_BYTES` | {INDEX_ENTRY_BYTES} |"),
        format!("| `INDEX_PROBE_BYTES` | {INDEX_PROBE_BYTES} |"),
        format!("| `FOOTER_MAGIC` | `0x{FOOTER_MAGIC:08X}` |"),
        format!("| `FOOTER_VERSION` | {FOOTER_VERSION} |"),
        format!("| `FOOTER_FIXED_BYTES` | {FOOTER_FIXED_BYTES} |"),
        format!("| `CODEC_RAW` | {CODEC_RAW} |"),
        format!("| `CODEC_DELTA_VARINT` | {CODEC_DELTA_VARINT} |"),
    ] {
        assert!(fmt.contains(&row), "docs/FORMAT.md is missing or has a stale row: {row}");
    }

    // The wire ids documented in FORMAT.md are the codecs' self-reported
    // ids, and names round-trip through the meta.json representation.
    for codec in husgraph::codec::Codec::ALL {
        assert_eq!(codec, codec.name().parse().unwrap());
        assert_eq!(Some(codec), husgraph::codec::Codec::from_id(codec.id()));
        assert!(
            fmt.contains(codec.name()),
            "docs/FORMAT.md never mentions codec `{}`",
            codec.name()
        );
    }

    // The magic really is the bytes "HUSC", as the doc claims.
    assert_eq!(FOOTER_MAGIC.to_le_bytes(), *b"HUSC");
    // The documented size formula.
    for n in [0usize, 1, 8, 1000] {
        assert_eq!(footer_len(n), FOOTER_FIXED_BYTES + 4 * n as u64);
    }
    // The documented CRC-32C check values.
    assert_eq!(husgraph::storage::crc32c(b""), 0);
    assert_eq!(husgraph::storage::crc32c(b"123456789"), 0xE306_9283);
    assert!(fmt.contains("0xE3069283"), "FORMAT.md lost its CRC check value");

    // Record sizes as documented.
    let mut meta = sample_meta();
    assert_eq!(meta.edge_record_bytes(), 4);
    meta.weighted = true;
    assert_eq!(meta.edge_record_bytes(), 8);
}

/// Shard/index/degree file names used throughout FORMAT.md match the
/// naming functions.
#[test]
fn format_md_file_names_match_source() {
    use husgraph::core::meta::{GraphMeta, DEGREES_FILE, META_FILE};
    let fmt = read("docs/FORMAT.md");
    assert_eq!(GraphMeta::out_edges_file(3), "out_3.edges");
    assert_eq!(GraphMeta::out_index_file(3), "out_3.index");
    assert_eq!(GraphMeta::in_edges_file(5), "in_5.edges");
    assert_eq!(GraphMeta::in_index_file(5), "in_5.index");
    for name in [META_FILE, DEGREES_FILE, "out_<i>.edges", "out_<i>.index", "in_<j>.edges"] {
        assert!(fmt.contains(name), "docs/FORMAT.md never mentions `{name}`");
    }
}

/// The crash-consistency artifacts documented in FORMAT.md — the build
/// `MANIFEST` and the engine's checkpoint slots — must match the
/// source constants byte for byte.
#[test]
fn format_md_lifecycle_constants_match_source() {
    use husgraph::core::checkpoint::{CKPT_HEADER_BYTES, CKPT_MAGIC, CKPT_SLOTS, CKPT_VERSION};
    use husgraph::storage::manifest::{
        MANIFEST_FILE, MANIFEST_MAGIC, MANIFEST_VERSION, TRAILER_PREFIX,
    };

    let fmt = read("docs/FORMAT.md");
    for row in [
        format!("| `MANIFEST_VERSION` | {MANIFEST_VERSION} |"),
        format!("| `CKPT_MAGIC` | `0x{CKPT_MAGIC:08X}` |"),
        format!("| `CKPT_VERSION` | {CKPT_VERSION} |"),
        format!("| `CKPT_HEADER_BYTES` | {CKPT_HEADER_BYTES} |"),
    ] {
        assert!(fmt.contains(&row), "docs/FORMAT.md is missing or has a stale row: {row}");
    }

    // The magic really is the bytes "HUSK", as the doc claims, and the
    // documented file/line tokens are the source-of-truth values.
    assert_eq!(CKPT_MAGIC.to_le_bytes(), *b"HUSK");
    assert_eq!(MANIFEST_FILE, "MANIFEST");
    for token in [MANIFEST_FILE, MANIFEST_MAGIC, TRAILER_PREFIX, "progress.json"] {
        assert!(fmt.contains(token), "docs/FORMAT.md never mentions `{token}`");
    }
    for slot in CKPT_SLOTS {
        assert!(fmt.contains(slot), "docs/FORMAT.md never mentions checkpoint slot `{slot}`");
    }
    assert_eq!(husgraph::core::external::PROGRESS_FILE, "progress.json");
}

/// The delta-run wire format documented in FORMAT.md § "Delta runs"
/// must match `hus_storage::delta` byte for byte.
#[test]
fn format_md_delta_constants_match_source() {
    use husgraph::storage::delta::{
        parse_run_file, run_file, DELTA_DIR_ENTRY_BYTES, DELTA_HEADER_BYTES, DELTA_MAGIC,
        DELTA_RECORD_BYTES, DELTA_VERSION,
    };

    let fmt = read("docs/FORMAT.md");
    for row in [
        format!("| `DELTA_MAGIC` | `0x{DELTA_MAGIC:08X}` |"),
        format!("| `DELTA_VERSION` | {DELTA_VERSION} |"),
        format!("| `DELTA_HEADER_BYTES` | {DELTA_HEADER_BYTES} |"),
        format!("| `DELTA_DIR_ENTRY_BYTES` | {DELTA_DIR_ENTRY_BYTES} |"),
        format!("| `DELTA_RECORD_BYTES` | {DELTA_RECORD_BYTES} |"),
    ] {
        assert!(fmt.contains(&row), "docs/FORMAT.md is missing or has a stale row: {row}");
    }

    // The magic really is the bytes "HUSD", as the doc claims, and the
    // documented naming scheme is the source-of-truth function.
    assert_eq!(DELTA_MAGIC.to_le_bytes(), *b"HUSD");
    assert_eq!(run_file(1), "delta_000001.run");
    assert_eq!(parse_run_file("delta_000001.run"), Some(1));
    for name in ["delta_<seq>.run", "delta_000001.run", ".run.tmp"] {
        assert!(fmt.contains(name), "docs/FORMAT.md never mentions `{name}`");
    }

    // The layout arithmetic the doc states: header + directory +
    // records + trailer is the whole file.
    let mut run = husgraph::storage::delta::DeltaRun::new(1, 2);
    run.push(0, 1, husgraph::storage::delta::DeltaRecord::insert(0, 3, 1.0));
    run.push(1, 0, husgraph::storage::delta::DeltaRecord::tombstone(2, 1));
    let bytes = run.encode().unwrap();
    assert_eq!(
        bytes.len() as u64,
        DELTA_HEADER_BYTES + 2 * DELTA_DIR_ENTRY_BYTES + 2 * DELTA_RECORD_BYTES + 4
    );

    // MANIFEST `run` lines are documented with the keyword the parser
    // accepts.
    assert!(fmt.contains("run delta_000001.run 96 crc32c:0153CF10"));
}

fn sample_meta() -> husgraph::core::GraphMeta {
    husgraph::core::GraphMeta {
        num_vertices: 2,
        num_edges: 1,
        p: 1,
        weighted: false,
        checksums: true,
        codec: "raw".into(),
        interval_starts: vec![0, 2],
        out_blocks: vec![Default::default()],
        in_blocks: vec![Default::default()],
    }
}

/// Recursively gather `.rs` files (skipping `target/`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extract `HUS_[A-Z0-9_]+` tokens from source text.
fn hus_tokens(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("HUS_") {
        let start = i + pos;
        // Skip matches embedded in longer identifiers (e.g. `X_HUS_Y`).
        let standalone =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let mut end = start + 4;
        while end < bytes.len() && (bytes[end].is_ascii_uppercase() || bytes[end] == b'_') {
            end += 1;
        }
        if standalone && end > start + 4 {
            out.push(text[start..end].trim_end_matches('_').to_string());
        }
        i = end;
    }
    out
}
