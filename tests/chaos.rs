//! Chaos harness (DESIGN.md §9.6): the whole stack under fire at once.
//!
//! One live `hus serve` daemon over a graph directory while, for
//! `HUS_CHAOS_SECS` (default 2) seconds:
//!
//! * an ingest thread streams edge updates through a `DynamicGraph`
//!   whose writes fail with injected `enospc`/`shortw`/`torn`/
//!   `fsync_fail` faults (small memtable budget → constant spills,
//!   rollbacks, degraded-mode entries and recoveries);
//! * client threads hammer the daemon with point lookups that must be
//!   **bit-identical** to the pre-chaos truth (the ingest only touches
//!   the upper half of the vertex space; the clients only read the
//!   lower half), plus analytics, panicking `chaos_panic` ops and
//!   slot-hogging `chaos_sleep` ops — asserting every answer is either
//!   correct or one of the typed `busy`/`deadline`/`internal` errors.
//!
//! Afterwards: the daemon must still answer (it never exits — worker
//! panics are contained by `catch_unwind` and the RAII slot guard), a
//! deliberately oversized query must fail with the typed `deadline`
//! error, `fsck` must be clean, the degraded-mode counters must show
//! both entries and a recovery, and a final compaction must be
//! byte-identical to building the surviving edge set from scratch —
//! i.e. every *acked* op is in the graph and every rejected op is not.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use husgraph::codec::Codec;
use husgraph::core::{fsck, BuildConfig, DynamicGraph, HusGraph};
use husgraph::gen::{Edge, EdgeList};
use husgraph::serve::client::{error_code, field_u64, is_ok};
use husgraph::serve::{fnv1a64, serve, Client, ServeConfig};
use husgraph::storage::{pod, FaultSpec, StorageDir};

const NV: u32 = 200;
const P: u32 = 2;
/// Clients read vertices `< LOWER`; the ingest mutates only `>= LOWER`.
const LOWER: u32 = NV / 2;

fn chaos_secs() -> u64 {
    std::env::var("HUS_CHAOS_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(2)
}

/// Deduplicated deterministic base edge set.
fn edge_list() -> (EdgeList, BTreeSet<(u32, u32)>) {
    let raw = husgraph::gen::rmat(NV, 1100, 4242, Default::default());
    let set: BTreeSet<(u32, u32)> = raw.edges.iter().map(|e| (e.src, e.dst)).collect();
    let el = EdgeList {
        num_vertices: NV,
        edges: set.iter().map(|&(s, d)| Edge::new(s, d)).collect(),
        weights: None,
    };
    (el, set)
}

/// Per-lower-vertex truth: (degree, fnv hash of the sorted neighbor ids)
/// — the exact fields the `degree`/`neighbors` wire ops answer with.
fn lower_truth(truth: &BTreeSet<(u32, u32)>) -> BTreeMap<u32, (u64, u64)> {
    let mut out = BTreeMap::new();
    for v in 0..LOWER {
        let nbrs: Vec<u32> = truth.iter().filter(|&&(s, _)| s == v).map(|&(_, d)| d).collect();
        out.insert(v, (nbrs.len() as u64, fnv1a64(pod::as_bytes(&nbrs))));
    }
    out
}

/// One chaos client: mixed lookups (asserted bit-identical), analytics,
/// panics and slot hogs, until `stop`. Returns how many requests got an
/// `ok` answer.
fn chaos_client(
    addr: &str,
    truth: &BTreeMap<u32, (u64, u64)>,
    stop: &AtomicBool,
    seed: u64,
) -> u64 {
    let mut c = Client::connect(addr).expect("chaos client connect");
    let mut answered = 0u64;
    let mut k = seed;
    while !stop.load(Ordering::Relaxed) {
        k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = (k >> 33) as u32 % LOWER;
        let (deg, hash) = truth[&v];
        // Point lookups: whenever the daemon says `ok`, the answer must
        // be bit-identical to the pre-chaos truth — the chaos ingest
        // never touches lower-half sources.
        let r = c.request(&format!(r#"{{"op":"degree","v":{v}}}"#)).expect("degree request");
        if is_ok(&r) {
            answered += 1;
            assert_eq!(field_u64(&r, "degree"), Some(deg), "degree({v}) drifted under chaos");
        } else {
            let code = error_code(&r).unwrap_or("?").to_string();
            assert!(matches!(code.as_str(), "busy" | "deadline"), "untyped failure: {r:?}");
        }
        let r = c.request(&format!(r#"{{"op":"neighbors","v":{v}}}"#)).expect("neighbors request");
        if is_ok(&r) {
            answered += 1;
            assert_eq!(field_u64(&r, "count"), Some(deg), "neighbors({v}) count drifted");
            assert_eq!(field_u64(&r, "hash"), Some(hash), "neighbors({v}) bytes drifted");
        } else {
            let code = error_code(&r).unwrap_or("?").to_string();
            assert!(matches!(code.as_str(), "busy" | "deadline"), "untyped failure: {r:?}");
        }
        // Periodic grief: a panicking query, a slot hog, and a full
        // analytics run. Every answer must carry a typed code; the
        // daemon itself must keep serving (asserted by the next loop
        // iteration succeeding at the protocol level at all).
        match k % 7 {
            0 => {
                let r = c.request(r#"{"op":"chaos_panic"}"#).expect("chaos_panic request");
                let code = error_code(&r).unwrap_or("ok").to_string();
                assert!(
                    matches!(code.as_str(), "internal" | "busy"),
                    "panic must surface as typed internal: {r:?}"
                );
            }
            1 => {
                let r = c.request(r#"{"op":"chaos_sleep","ms":30}"#).expect("chaos_sleep request");
                if !is_ok(&r) {
                    assert_eq!(error_code(&r), Some("busy"), "{r:?}");
                }
            }
            2 => {
                let r = c.request(r#"{"op":"wcc"}"#).expect("wcc request");
                if is_ok(&r) {
                    answered += 1;
                } else {
                    let code = error_code(&r).unwrap_or("?").to_string();
                    assert!(matches!(code.as_str(), "busy" | "deadline"), "{r:?}");
                }
            }
            _ => {}
        }
    }
    answered
}

#[test]
fn daemon_survives_write_faults_panics_and_slow_queries() {
    // Small memtable: every few acked ops cross the budget and attempt
    // a (frequently failing) spill. Read at `DynamicGraph::open` time.
    std::env::set_var("HUS_MEMTABLE_BYTES", "256");
    let (el, truth) = edge_list();
    let tmp = tempfile::tempdir().unwrap();
    let root = tmp.path().join("g");
    let dir = StorageDir::create(&root).unwrap();
    HusGraph::build_into(&el, &dir, &BuildConfig::with_p_codec(P, Codec::Raw)).unwrap();
    let lower = lower_truth(&truth);

    // The daemon reads fault-free; only the *ingest* handle injects
    // write faults. Chaos ops are enabled explicitly (never from env),
    // and a deadline is armed so runaway queries die typed.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_inflight: 3,
        byte_budget: 0,
        accept_queue: 16,
        query_threads: 1,
        refresh_interval_ms: 25,
        deadline_ms: 1_500,
        idle_ms: 30_000,
        chaos_ops: true,
    };
    let mut server = serve(StorageDir::open(&root).unwrap(), config).unwrap();
    let addr = server.addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));

    // Ingest thread: stream upper-half updates through a write-faulty
    // DynamicGraph, recording exactly which ops were acked. An error
    // means the op is NOT in the graph (degraded-mode rejections don't
    // buffer); an Ok means it must survive to the final compaction.
    let faulty = StorageDir::open(&root).unwrap().with_faults(Some(FaultSpec {
        seed: 42,
        enospc: 0.2,
        shortw: 0.05,
        torn: 0.1,
        fsync_fail: 0.05,
        ..Default::default()
    }));
    let resilience = faulty.resilience();
    let ingest_stop = Arc::clone(&stop);
    let ingest = std::thread::spawn(move || {
        let mut dg = DynamicGraph::open(faulty).unwrap();
        // Last acked op per key: Some(true) = present, Some(false) =
        // deleted. Replayed over the base set for the final rebuild.
        let mut acked: BTreeMap<(u32, u32), bool> = BTreeMap::new();
        let (mut ok_ops, mut rejected) = (0u64, 0u64);
        let mut k = 0u64;
        while !ingest_stop.load(Ordering::Relaxed) {
            k += 1;
            let src = LOWER + (k * 7 % u64::from(LOWER)) as u32;
            let dst = (k * 13 % u64::from(NV)) as u32;
            let deleting = k.is_multiple_of(11);
            let outcome =
                if deleting { dg.delete_edge(src, dst) } else { dg.insert_edge(src, dst, 1.0) };
            match outcome {
                Ok(()) => {
                    acked.insert((src, dst), !deleting);
                    ok_ops += 1;
                }
                Err(_) => rejected += 1,
            }
            if k.is_multiple_of(64) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Retry the final spill until the dice cooperate: everything
        // acked must be durably committed before the harness compares.
        let mut flushed = false;
        for _ in 0..10_000 {
            if dg.flush().is_ok() {
                flushed = true;
                break;
            }
        }
        assert!(flushed, "final flush never succeeded under p≈0.6 per attempt");
        assert!(!dg.is_degraded(), "a successful flush clears degraded mode");
        (acked, ok_ops, rejected)
    });

    // Client threads.
    let deadline = Instant::now() + Duration::from_secs(chaos_secs());
    std::thread::scope(|s| {
        for i in 0..3u64 {
            let addr = addr.clone();
            let lower = &lower;
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            s.spawn(move || {
                let n = chaos_client(&addr, lower, &stop, 0x9E3779B9 * (i + 1));
                answered.fetch_add(n, Ordering::Relaxed);
            });
        }
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let (acked, ok_ops, rejected) = ingest.join().expect("ingest thread must not die");

    // The chaos actually happened: queries were answered, ops were
    // acked, faults fired, rollbacks rolled back, degraded mode was
    // entered (rejections) and exited again (the final flush).
    let answered = answered.load(Ordering::Relaxed);
    assert!(answered > 0, "chaos clients never got an ok answer");
    assert!(ok_ops > 0, "ingest never got an op acked");
    let snap = resilience.snapshot();
    assert!(snap.write_faults > 0, "no write fault ever fired: {snap:?}");
    assert!(snap.spill_rollbacks > 0, "no spill ever rolled back: {snap:?}");
    assert!(snap.degraded_mode_entries > 0, "degraded mode never entered: {snap:?}");
    assert!(rejected > 0, "degraded mode never rejected an op");

    // The daemon is still standing and still typed: status answers, and
    // a deliberately endless query dies with the `deadline` code.
    let mut c = Client::connect(&addr).unwrap();
    let r = c.request(r#"{"op":"status"}"#).unwrap();
    assert!(is_ok(&r), "daemon must survive the chaos: {r:?}");
    let r = c.request(r#"{"op":"pagerank","iters":100000000}"#).unwrap();
    assert!(!is_ok(&r), "{r:?}");
    assert_eq!(error_code(&r), Some("deadline"), "{r:?}");
    let r = c.request(r#"{"op":"shutdown"}"#).unwrap();
    assert!(is_ok(&r), "{r:?}");
    server.wait();

    // Post-chaos: the directory is clean — every rollback quarantined
    // its partial artifacts, nothing stale or corrupt remains.
    let report = fsck(&StorageDir::open(&root).unwrap(), false).unwrap();
    assert!(report.is_clean(), "post-chaos fsck: {}", report.render());
    assert!(report.stale.is_empty(), "rollback left stale files: {:?}", report.stale);

    // Final compaction (fault-free handle) must fold base + every acked
    // op into shards byte-identical to building the surviving edge set
    // from scratch: acked-in ops are in, rejected ops are not.
    let mut dg = DynamicGraph::open(StorageDir::open(&root).unwrap()).unwrap();
    assert!(dg.compact().unwrap(), "chaos left runs to compact");
    drop(dg);

    let mut survivors = truth.clone();
    for (&key, &present) in &acked {
        if present {
            survivors.insert(key);
        } else {
            survivors.remove(&key);
        }
    }
    let rebuilt_el = EdgeList {
        num_vertices: NV,
        edges: survivors.iter().map(|&(s, d)| Edge::new(s, d)).collect(),
        weights: None,
    };
    let rebuild_dir = StorageDir::create(tmp.path().join("rebuild")).unwrap();
    HusGraph::build_into(&rebuilt_el, &rebuild_dir, &BuildConfig::with_p_codec(P, Codec::Raw))
        .unwrap();
    let mut compared = 0;
    for entry in std::fs::read_dir(&root).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".edges") || name.ends_with(".index") || name == "degrees.bin" {
            let chaos_bytes = std::fs::read(entry.path()).unwrap();
            let rebuild_bytes = std::fs::read(rebuild_dir.path(&name)).unwrap();
            assert_eq!(chaos_bytes, rebuild_bytes, "{name} differs from a from-scratch build");
            compared += 1;
        }
    }
    assert_eq!(compared, (4 * P + 1) as usize, "shard files went missing");
}
