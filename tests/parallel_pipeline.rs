//! Determinism stress tests for the parallel I/O pipeline: row-parallel
//! ROP and deep COP readahead must be invisible to the algorithm — the
//! same vertex values, bit for bit, and the same tracked I/O bytes as
//! the serial single-threaded walk. (Unused readahead on early abort is
//! reported via a separate counter, not folded into the run's totals.)
//!
//! The programs used here combine with `min`, which is commutative *and*
//! order-insensitive in its bit pattern, so "bit-identical" is a hard
//! assertion, not a tolerance check.

use husgraph::algos::{Bfs, Wcc};
use husgraph::core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
use husgraph::storage::StorageDir;

fn build(p: u32) -> (tempfile::TempDir, HusGraph) {
    let el = husgraph::gen::rmat(800, 8000, 99, Default::default());
    let tmp = tempfile::tempdir().unwrap();
    // Raw pinned: these tests equate the serial and parallel runs'
    // billed bytes, which requires stateless reads. Under a compressed
    // codec the first run warms the decoded-block cache and later
    // partial reads legitimately bill zero (see DESIGN.md §9 /
    // docs/FORMAT.md), so cross-run byte equality does not hold.
    let g = HusGraph::build_into(
        &el,
        &StorageDir::create(tmp.path()).unwrap(),
        &BuildConfig::with_p_codec(p, husgraph::codec::Codec::Raw),
    )
    .unwrap();
    g.dir().tracker().reset();
    (tmp, g)
}

/// Explicit config so ambient `HUS_*` env overrides can't skew the
/// comparison: everything pinned except the knobs under test.
fn cfg(mode: UpdateMode, threads: usize, parallel_rows: bool, readahead: usize) -> RunConfig {
    RunConfig {
        mode,
        threads,
        parallel_rows,
        readahead_blocks: readahead,
        ..RunConfig::with_mode(mode)
    }
}

#[test]
fn parallel_rop_rows_match_serial_bit_for_bit() {
    let (_tmp, g) = build(6);
    let serial_cfg = cfg(UpdateMode::ForceRop, 1, false, 1);
    let (serial_vals, serial_stats) = Engine::new(&g, &Bfs::new(0), serial_cfg).run().unwrap();

    for threads in [4, 8] {
        g.dir().tracker().reset();
        let par_cfg = cfg(UpdateMode::ForceRop, threads, true, 1);
        let (par_vals, par_stats) = Engine::new(&g, &Bfs::new(0), par_cfg).run().unwrap();
        assert_eq!(serial_vals, par_vals, "BFS values diverged at {threads} threads");
        assert_eq!(
            serial_stats.total_io.total_bytes(),
            par_stats.total_io.total_bytes(),
            "tracked I/O bytes diverged at {threads} threads"
        );
        assert_eq!(serial_stats.iterations.len(), par_stats.iterations.len());
    }
}

#[test]
fn parallel_rop_repeated_runs_are_stable() {
    // Re-running the parallel configuration must keep producing the same
    // answer — a cheap loom-free probe for row-interleaving races.
    let (_tmp, g) = build(5);
    let mut baseline: Option<Vec<u32>> = None;
    for round in 0..4 {
        g.dir().tracker().reset();
        let (vals, _) = Engine::new(&g, &Wcc, cfg(UpdateMode::ForceRop, 8, true, 1)).run().unwrap();
        match &baseline {
            None => baseline = Some(vals),
            Some(b) => assert_eq!(b, &vals, "WCC diverged on parallel round {round}"),
        }
    }
}

#[test]
fn deep_cop_readahead_matches_serial_bit_for_bit() {
    let (_tmp, g) = build(6);
    let serial_cfg = cfg(UpdateMode::ForceCop, 1, false, 1);
    let (serial_vals, serial_stats) = Engine::new(&g, &Wcc, serial_cfg).run().unwrap();

    for readahead in [2, 6] {
        g.dir().tracker().reset();
        let deep_cfg = cfg(UpdateMode::ForceCop, 4, true, readahead);
        let (deep_vals, deep_stats) = Engine::new(&g, &Wcc, deep_cfg).run().unwrap();
        assert_eq!(serial_vals, deep_vals, "WCC values diverged at readahead {readahead}");
        assert_eq!(
            serial_stats.total_io.total_bytes(),
            deep_stats.total_io.total_bytes(),
            "tracked I/O bytes diverged at readahead {readahead}"
        );
    }
}

#[test]
fn hybrid_pipeline_matches_serial_hybrid() {
    // The full hybrid schedule — predictor picking ROP or COP per
    // iteration — with every pipeline feature on vs everything off.
    let (_tmp, g) = build(4);
    let (serial_vals, serial_stats) =
        Engine::new(&g, &Bfs::new(0), cfg(UpdateMode::Hybrid, 1, false, 1)).run().unwrap();
    g.dir().tracker().reset();
    let (par_vals, par_stats) =
        Engine::new(&g, &Bfs::new(0), cfg(UpdateMode::Hybrid, 8, true, 4)).run().unwrap();
    assert_eq!(serial_vals, par_vals);
    assert_eq!(serial_stats.total_io.total_bytes(), par_stats.total_io.total_bytes());
}
