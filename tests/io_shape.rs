//! Cross-system I/O-shape assertions — the qualitative claims behind the
//! paper's Figures 7 and 9, checked as invariants at test scale:
//!
//! * HUS-Graph moves less data than GridGraph, which moves less than
//!   GraphChi, on frontier-driven algorithms;
//! * GraphChi's writes are of the same order as its reads (edge-value
//!   write-back);
//! * forced ROP reads the fewest bytes, forced COP the most, and the
//!   hybrid sits between them;
//! * COP performs no random reads at all.

use husgraph::algos::{Bfs, PageRank};
use husgraph::baselines::{BaselineConfig, GraphChiEngine, GridGraphEngine, GridStore, PswStore};
use husgraph::core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
use husgraph::gen::EdgeList;
use husgraph::storage::StorageDir;

fn graph() -> EdgeList {
    husgraph::gen::rmat(600, 6000, 77, Default::default())
}

struct Arena {
    _tmp: tempfile::TempDir,
    hus: HusGraph,
    grid: GridStore,
    psw: PswStore,
}

fn build_all(el: &EdgeList, p: u32) -> Arena {
    let tmp = tempfile::tempdir().unwrap();
    let hus = HusGraph::build_into(
        el,
        &StorageDir::create(tmp.path().join("hus")).unwrap(),
        &BuildConfig::with_p(p),
    )
    .unwrap();
    let grid = GridStore::build_into(el, &StorageDir::create(tmp.path().join("grid")).unwrap(), p)
        .unwrap();
    let psw =
        PswStore::build_into(el, &StorageDir::create(tmp.path().join("psw")).unwrap(), p).unwrap();
    hus.dir().tracker().reset();
    grid.dir().tracker().reset();
    psw.dir().tracker().reset();
    Arena { _tmp: tmp, hus, grid, psw }
}

#[test]
fn bfs_io_ordering_hus_grid_graphchi() {
    let el = graph();
    let arena = build_all(&el, 4);
    let (_, hus) = Engine::new(&arena.hus, &Bfs::new(0), RunConfig::default()).run().unwrap();
    arena.grid.dir().tracker().reset();
    let (_, grid) =
        GridGraphEngine::new(&arena.grid, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
    arena.psw.dir().tracker().reset();
    let (_, psw) =
        GraphChiEngine::new(&arena.psw, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
    let (h, g, c) =
        (hus.total_io.total_bytes(), grid.total_io.total_bytes(), psw.total_io.total_bytes());
    assert!(h < g, "HUS {h} must move less than GridGraph {g}");
    assert!(g < c, "GridGraph {g} must move less than GraphChi {c}");
}

#[test]
fn graphchi_write_volume_is_comparable_to_reads() {
    let el = graph();
    let arena = build_all(&el, 3);
    let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
    let (_, stats) =
        GraphChiEngine::new(&arena.psw, &PageRank::new(el.num_vertices), cfg).run().unwrap();
    let io = stats.total_io;
    assert!(
        io.write_bytes * 3 > io.read_bytes(),
        "edge-value write-back should be the same order as reads: wrote {} read {}",
        io.write_bytes,
        io.read_bytes()
    );
}

#[test]
fn forced_modes_bracket_the_hybrid_io() {
    let el = graph();
    let arena = build_all(&el, 4);
    let run = |mode| {
        arena.hus.dir().tracker().reset();
        let (_, stats) =
            Engine::new(&arena.hus, &Bfs::new(0), RunConfig::with_mode(mode)).run().unwrap();
        stats.total_io.total_bytes()
    };
    let rop = run(UpdateMode::ForceRop);
    let cop = run(UpdateMode::ForceCop);
    let hybrid = run(UpdateMode::Hybrid);
    assert!(rop < cop, "selective access must move less data: rop {rop} cop {cop}");
    assert!(hybrid <= cop, "hybrid {hybrid} must not exceed cop {cop}");
    // The hybrid may slightly exceed pure ROP (it pays COP's streaming in
    // dense iterations in exchange for time), but must stay well under
    // 2x.
    assert!(hybrid < rop * 2, "hybrid {hybrid} vs rop {rop}");
}

#[test]
fn cop_is_purely_sequential_rop_mixes() {
    let el = graph();
    let arena = build_all(&el, 4);
    arena.hus.dir().tracker().reset();
    let (_, cop) =
        Engine::new(&arena.hus, &Bfs::new(0), RunConfig::with_mode(UpdateMode::ForceCop))
            .run()
            .unwrap();
    assert_eq!(cop.total_io.rand_read_bytes, 0);
    assert_eq!(cop.total_io.batched_read_bytes, 0);
    assert!(cop.total_io.seq_read_bytes > 0);
    arena.hus.dir().tracker().reset();
    let (_, rop) =
        Engine::new(&arena.hus, &Bfs::new(0), RunConfig::with_mode(UpdateMode::ForceRop))
            .run()
            .unwrap();
    assert!(
        rop.total_io.rand_read_bytes + rop.total_io.batched_read_bytes > 0,
        "ROP must perform selective reads"
    );
}

#[test]
fn pagerank_io_is_iteration_proportional_for_full_io_systems() {
    // Full-I/O systems move ~the same bytes every PageRank iteration.
    let el = graph();
    let arena = build_all(&el, 3);
    let cfg = BaselineConfig { max_iterations: 4, ..Default::default() };
    let (_, stats) =
        GridGraphEngine::new(&arena.grid, &PageRank::new(el.num_vertices), cfg).run().unwrap();
    let per_iter: Vec<u64> = stats.iterations.iter().map(|it| it.io.total_bytes()).collect();
    let first = per_iter[0];
    for (i, &b) in per_iter.iter().enumerate() {
        assert!(b.abs_diff(first) * 20 < first, "iteration {i} moved {b}, expected ~{first}");
    }
}
