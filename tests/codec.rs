//! Codec subsystem end-to-end tests: per-codec round-trips over the
//! workspace generators, bit-identical algorithm results between `raw`
//! and `delta-varint` builds, and the PR's acceptance criterion — a
//! full PageRank over an RMAT graph of >= 2^20 edges must read >= 30%
//! fewer shard bytes under delta-varint with bit-identical ranks.

use husgraph::algos::{PageRank, Wcc};
use husgraph::codec::Codec;
use husgraph::core::{
    BuildConfig, Engine, HusGraph, RunConfig, RunStats, SelectionGranularity, UpdateMode,
    VertexProgram,
};
use husgraph::gen::{Edge, EdgeList, RmatConfig};
use husgraph::storage::{Access, StorageDir};

fn build(el: &EdgeList, p: u32, codec: Codec) -> (tempfile::TempDir, HusGraph) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p_codec(p, codec)).unwrap();
    (tmp, g)
}

/// Reconstruct the edge multiset through the out-blocks (decoded by
/// whatever codec the graph was built with).
fn edges_via_out_blocks(g: &HusGraph) -> Vec<Edge> {
    let mut edges = Vec::new();
    for i in 0..g.p() {
        let base = g.meta().interval_start(i);
        for j in 0..g.p() {
            let idx = g.load_out_index(i, j, Access::Sequential).unwrap();
            let recs = g.stream_out_block(i, j).unwrap();
            for v_local in 0..g.meta().interval_len(i) as usize {
                for k in idx[v_local]..idx[v_local + 1] {
                    edges.push(Edge::new(base + v_local as u32, recs.neighbor(k as usize)));
                }
            }
        }
    }
    edges
}

/// Same reconstruction through the in-blocks.
fn edges_via_in_blocks(g: &HusGraph) -> Vec<Edge> {
    let mut edges = Vec::new();
    for j in 0..g.p() {
        let base = g.meta().interval_start(j);
        for i in 0..g.p() {
            let idx = g.load_in_index(i, j, Access::Sequential).unwrap();
            let recs = g.stream_in_block(i, j).unwrap();
            for v_local in 0..g.meta().interval_len(j) as usize {
                for k in idx[v_local]..idx[v_local + 1] {
                    edges.push(Edge::new(recs.neighbor(k as usize), base + v_local as u32));
                }
            }
        }
    }
    edges
}

#[test]
fn every_generator_round_trips_under_every_codec() {
    let graphs: Vec<(&str, EdgeList, u32)> = vec![
        ("rmat", husgraph::gen::rmat(500, 4000, 3, RmatConfig::default()), 4),
        ("er-weighted", husgraph::gen::erdos_renyi(400, 3000, 5).with_hash_weights(0.5, 2.0), 4),
        ("chung-lu", husgraph::gen::chung_lu(350, 1200, 2.5, 9).symmetrize(), 3),
    ];
    for (name, el, p) in &graphs {
        let mut want = el.edges.clone();
        want.sort_unstable();
        for codec in Codec::ALL {
            let (_t, g) = build(el, *p, codec);
            assert_eq!(g.codec(), codec, "{name}");
            assert_eq!(g.meta().codec().unwrap(), codec, "{name}");
            let mut out = edges_via_out_blocks(&g);
            out.sort_unstable();
            assert_eq!(out, want, "{name}/{codec:?} via out-blocks");
            let mut inn = edges_via_in_blocks(&g);
            inn.sort_unstable();
            assert_eq!(inn, want, "{name}/{codec:?} via in-blocks");
            if let Some(weights) = &el.weights {
                let mut total = 0.0f64;
                for j in 0..g.p() {
                    for i in 0..g.p() {
                        let recs = g.stream_in_block(i, j).unwrap();
                        total += (0..recs.len()).map(|k| recs.weight(k) as f64).sum::<f64>();
                    }
                }
                let exact: f64 = weights.iter().map(|&w| w as f64).sum();
                assert!((total - exact).abs() < 1e-3, "{name}/{codec:?}: {total} vs {exact}");
            }
            match codec {
                // Raw is the identity: on-disk equals decoded.
                Codec::Raw => {
                    assert_eq!(g.meta().encoded_edge_bytes(), g.meta().decoded_edge_bytes())
                }
                // Interval-bounded neighbor ids make delta-varint a
                // guaranteed win at these sizes.
                Codec::DeltaVarint => {
                    assert!(
                        g.meta().encoded_edge_bytes() < g.meta().decoded_edge_bytes(),
                        "{name}: {} !< {}",
                        g.meta().encoded_edge_bytes(),
                        g.meta().decoded_edge_bytes()
                    )
                }
            }
        }
    }
}

fn run<Pr: VertexProgram>(
    g: &HusGraph,
    program: &Pr,
    mode: UpdateMode,
    max_iterations: usize,
) -> (Vec<Pr::Value>, RunStats) {
    let config = RunConfig {
        mode,
        granularity: SelectionGranularity::PerIteration,
        max_iterations,
        threads: 2,
        ..Default::default()
    };
    Engine::new(g, program, config).run().unwrap()
}

#[test]
fn pagerank_is_bit_identical_across_codecs_and_cop_reads_fewer_bytes() {
    let el = husgraph::gen::rmat(2000, 16000, 29, RmatConfig::default());
    let (_t1, raw) = build(&el, 4, Codec::Raw);
    let (_t2, dv) = build(&el, 4, Codec::DeltaVarint);
    let pr = PageRank::new(el.num_vertices);

    // Hybrid runs: the codecs may legitimately disagree on ROP vs COP
    // (the predictor sees different on-disk bytes per edge) but the
    // ranks must match bit for bit — decoded blocks preserve record
    // order, so float accumulation order is identical.
    let (ranks_raw, _) = run(&raw, &pr, UpdateMode::Hybrid, 5);
    let (ranks_dv, _) = run(&dv, &pr, UpdateMode::Hybrid, 5);
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&ranks_raw), bits(&ranks_dv), "hybrid ranks differ between codecs");

    // Forced-COP runs stream whole in-blocks, so the compressed build
    // must move strictly fewer bytes through the same iterations.
    let (cop_raw, stats_raw) = run(&raw, &pr, UpdateMode::ForceCop, 5);
    let (cop_dv, stats_dv) = run(&dv, &pr, UpdateMode::ForceCop, 5);
    assert_eq!(bits(&cop_raw), bits(&cop_dv));
    assert_eq!(stats_raw.num_iterations(), stats_dv.num_iterations());
    for (a, b) in stats_raw.iterations.iter().zip(&stats_dv.iterations) {
        assert_eq!(a.model, b.model, "iteration {}", a.iteration);
        assert_eq!(a.edges_processed, b.edges_processed, "iteration {}", a.iteration);
    }
    assert!(
        stats_dv.total_io.total_bytes() < stats_raw.total_io.total_bytes(),
        "delta-varint COP should read fewer bytes: {} !< {}",
        stats_dv.total_io.total_bytes(),
        stats_raw.total_io.total_bytes()
    );
}

#[test]
fn wcc_is_bit_identical_across_codecs_and_cop_reads_fewer_bytes() {
    let el = husgraph::gen::chung_lu(1500, 6000, 2.3, 31).symmetrize();
    let (_t1, raw) = build(&el, 4, Codec::Raw);
    let (_t2, dv) = build(&el, 4, Codec::DeltaVarint);

    let (labels_raw, _) = run(&raw, &Wcc, UpdateMode::Hybrid, 1000);
    let (labels_dv, _) = run(&dv, &Wcc, UpdateMode::Hybrid, 1000);
    assert_eq!(labels_raw, labels_dv, "hybrid WCC labels differ between codecs");

    let (cop_raw, stats_raw) = run(&raw, &Wcc, UpdateMode::ForceCop, 1000);
    let (cop_dv, stats_dv) = run(&dv, &Wcc, UpdateMode::ForceCop, 1000);
    assert_eq!(cop_raw, cop_dv);
    assert_eq!(labels_raw, cop_raw, "hybrid and COP disagree on the fixpoint");
    assert_eq!(stats_raw.num_iterations(), stats_dv.num_iterations());
    assert!(stats_dv.total_io.total_bytes() < stats_raw.total_io.total_bytes());
}

/// The PR's acceptance criterion: on an RMAT graph with >= 2^20 edges,
/// a full PageRank run under delta-varint reads >= 30% fewer shard
/// bytes than under raw, with bit-identical ranks. Byte savings are
/// accounted exactly: the two runs differ *only* in encoded shard
/// payload, so the gap in total I/O equals the gap in per-iteration
/// in-shard bytes times the iteration count.
#[test]
fn acceptance_rmat_2_20_pagerank_saves_thirty_percent_shard_bytes() {
    // dedup off: the criterion is on the edge count, so keep all 2^20.
    let el = husgraph::gen::rmat(
        1 << 17,
        1 << 20,
        42,
        RmatConfig { dedup: false, ..Default::default() },
    );
    assert!(el.edges.len() >= 1 << 20);
    // Explicit P = 8: auto-selection is not under test here.
    let (_t1, raw) = build(&el, 8, Codec::Raw);
    let (_t2, dv) = build(&el, 8, Codec::DeltaVarint);
    let pr = PageRank::new(el.num_vertices);
    let iters = 4;

    let (ranks_raw, stats_raw) = run(&raw, &pr, UpdateMode::ForceCop, iters);
    let (ranks_dv, stats_dv) = run(&dv, &pr, UpdateMode::ForceCop, iters);
    assert_eq!(stats_raw.num_iterations(), iters);
    assert_eq!(stats_dv.num_iterations(), iters);
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&ranks_raw), bits(&ranks_dv), "ranks must be bit-identical");

    // Shard bytes per COP iteration: every in-block streamed once, at
    // its encoded size.
    let in_shard_bytes = |g: &HusGraph| -> u64 {
        (0..8)
            .flat_map(|i| (0..8).map(move |j| (i, j)))
            .map(|(i, j)| g.meta().in_block(i, j).encoded_bytes)
            .sum()
    };
    let shard_raw = iters as u64 * in_shard_bytes(&raw);
    let shard_dv = iters as u64 * in_shard_bytes(&dv);
    assert!(
        shard_dv * 10 <= shard_raw * 7,
        ">= 30% shard-byte saving required: dv {shard_dv} vs raw {shard_raw}"
    );

    // Exact accounting: everything else the runs read (indices,
    // degrees, vertex values) is codec-independent, so the total-I/O
    // gap is exactly the shard-byte gap.
    let (total_raw, total_dv) = (stats_raw.total_io.total_bytes(), stats_dv.total_io.total_bytes());
    assert_eq!(
        total_raw - total_dv,
        shard_raw - shard_dv,
        "I/O gap must be fully explained by encoded shard payload"
    );
    assert!(
        10 * (total_raw - total_dv) >= 3 * shard_raw,
        "whole-run saving should also clear 30% of shard traffic"
    );
}
