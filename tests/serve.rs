//! End-to-end contract of `hus serve` (DESIGN.md §12):
//!
//! * concurrent mixed queries against a live daemon are **bit-identical**
//!   to single-threaded CLI-style runs, across read backends × codecs
//!   (the response carries an FNV-1a hash of the full value vector);
//! * admission control rejects over-capacity queries with a typed
//!   `busy` error and byte budgets reject over-budget queries with a
//!   typed `budget` error;
//! * MVCC snapshot isolation: queries in flight across ingest and
//!   compaction finish on the generation they started on, and new
//!   queries see the new generation once the refresher re-pins;
//! * the per-(generation, run-set) overlay memoization means repeated
//!   snapshot opens hit the cache instead of rebuilding the overlay.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use husgraph::algos::{Bfs, PageRank, PersonalizedPageRank, Sssp, Wcc};
use husgraph::codec::Codec;
use husgraph::core::{BuildConfig, DynamicGraph, Engine, HusGraph, RunConfig, VertexProgram};
use husgraph::gen::{Edge, EdgeList};
use husgraph::serve::client::{error_code, field_u64, is_ok};
use husgraph::serve::{fnv1a64, serve, Client, ServeConfig};
use husgraph::storage::{pod, BackendKind, StorageDir};

const NV: u32 = 200;
const P: u32 = 4;
const PR_ITERS: u32 = 5;
const KHOP_DEPTH: u32 = 2;
const SOURCE: u32 = 3;

/// Deduplicated deterministic edge set (the builder keeps duplicates,
/// so dedup up front to make the adjacency truth exact).
fn edge_list() -> (EdgeList, BTreeSet<(u32, u32)>) {
    let raw = husgraph::gen::rmat(NV, 1200, 99, Default::default());
    let set: BTreeSet<(u32, u32)> = raw.edges.iter().map(|e| (e.src, e.dst)).collect();
    let el = EdgeList {
        num_vertices: NV,
        edges: set.iter().map(|&(s, d)| Edge::new(s, d)).collect(),
        weights: None,
    };
    (el, set)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_inflight: 4,
        byte_budget: 0,
        accept_queue: 16,
        query_threads: 1,
        refresh_interval_ms: 25,
        deadline_ms: 0,
        idle_ms: 30_000,
        chaos_ops: false,
    }
}

/// Expected results computed the single-threaded CLI way: open through
/// `DynamicGraph` (delta runs layered), run the engine with one thread.
struct Expected {
    degrees: Vec<u32>,
    neighbor_hashes: BTreeMap<u32, (u64, u64)>,
    khop: (u64, u64),
    bfs: (u64, u64),
    sssp: (u64, u64),
    wcc: (u64, u64),
    pagerank: u64,
    ppr: u64,
}

fn open_snapshot(root: &Path, backend: BackendKind) -> HusGraph {
    DynamicGraph::open(StorageDir::open(root).unwrap().with_backend(backend))
        .unwrap()
        .into_snapshot()
        .unwrap()
}

fn run1<Pr: VertexProgram>(g: &HusGraph, pr: &Pr, iters: usize) -> Vec<Pr::Value> {
    let cfg = RunConfig { threads: 1, max_iterations: iters, ..Default::default() };
    Engine::new(g, pr, cfg).run().unwrap().0
}

fn expected(root: &Path, backend: BackendKind, truth: &BTreeSet<(u32, u32)>) -> Expected {
    let g = open_snapshot(root, backend);
    let degrees = g.out_degrees().to_vec();
    let mut neighbor_hashes = BTreeMap::new();
    for v in [0u32, SOURCE, 17, 100, NV - 1] {
        let nbrs: Vec<u32> = truth.iter().filter(|&&(s, _)| s == v).map(|&(_, d)| d).collect();
        neighbor_hashes.insert(v, (nbrs.len() as u64, fnv1a64(pod::as_bytes(&nbrs))));
    }
    let levels = run1(&g, &Bfs::new(SOURCE), 1_000);
    let bfs_reached = levels.iter().filter(|&&l| l != husgraph::algos::UNREACHED).count() as u64;
    let visited: Vec<u32> = (0..NV).filter(|&v| levels[v as usize] <= KHOP_DEPTH).collect();
    let khop = (visited.len() as u64, fnv1a64(pod::as_bytes(&visited)));
    let bfs = (bfs_reached, fnv1a64(pod::as_bytes(&levels)));
    let dist = run1(&g, &Sssp::new(SOURCE), 1_000);
    let sssp =
        (dist.iter().filter(|d| d.is_finite()).count() as u64, fnv1a64(pod::as_bytes(&dist)));
    let labels = run1(&g, &Wcc, 1_000);
    let mut roots = labels.clone();
    roots.sort_unstable();
    roots.dedup();
    let wcc = (roots.len() as u64, fnv1a64(pod::as_bytes(&labels)));
    let ranks = run1(&g, &PageRank::new(NV), PR_ITERS as usize);
    let pagerank = fnv1a64(pod::as_bytes(&ranks));
    let ppr_ranks = run1(&g, &PersonalizedPageRank::new(SOURCE), PR_ITERS as usize);
    let ppr = fnv1a64(pod::as_bytes(&ppr_ranks));
    Expected { degrees, neighbor_hashes, khop, bfs, sssp, wcc, pagerank, ppr }
}

/// One client's worth of mixed queries, all asserted bit-identical to
/// the single-threaded expectation.
fn mixed_queries(addr: &str, exp: &Expected, label: &str) {
    let mut c = Client::connect(addr).unwrap();
    for (&v, &(count, hash)) in &exp.neighbor_hashes {
        let r = c.request(&format!(r#"{{"op":"degree","v":{v}}}"#)).unwrap();
        assert!(is_ok(&r), "{label} degree({v}): {r:?}");
        assert_eq!(field_u64(&r, "degree"), Some(u64::from(exp.degrees[v as usize])), "{label}");
        let r = c.request(&format!(r#"{{"op":"neighbors","v":{v}}}"#)).unwrap();
        assert!(is_ok(&r), "{label} neighbors({v}): {r:?}");
        assert_eq!(field_u64(&r, "count"), Some(count), "{label} neighbors({v})");
        assert_eq!(field_u64(&r, "hash"), Some(hash), "{label} neighbors({v})");
    }
    let r = c.request(&format!(r#"{{"op":"khop","v":{SOURCE},"depth":{KHOP_DEPTH}}}"#)).unwrap();
    assert!(is_ok(&r), "{label} khop: {r:?}");
    assert_eq!(field_u64(&r, "count"), Some(exp.khop.0), "{label} khop count");
    assert_eq!(field_u64(&r, "hash"), Some(exp.khop.1), "{label} khop hash");
    for (op, line, (reached, hash)) in [
        ("bfs", format!(r#"{{"op":"bfs","source":{SOURCE}}}"#), exp.bfs),
        ("sssp", format!(r#"{{"op":"sssp","source":{SOURCE}}}"#), exp.sssp),
        ("wcc", r#"{"op":"wcc"}"#.to_string(), exp.wcc),
    ] {
        let r = c.request(&line).unwrap();
        assert!(is_ok(&r), "{label} {op}: {r:?}");
        let got_count = field_u64(&r, "reached").or_else(|| field_u64(&r, "components"));
        assert_eq!(got_count, Some(reached), "{label} {op} count");
        assert_eq!(field_u64(&r, "hash"), Some(hash), "{label} {op} hash");
    }
    let r = c.request(&format!(r#"{{"op":"pagerank","iters":{PR_ITERS}}}"#)).unwrap();
    assert!(is_ok(&r), "{label} pagerank: {r:?}");
    assert_eq!(field_u64(&r, "hash"), Some(exp.pagerank), "{label} pagerank hash");
    let r = c.request(&format!(r#"{{"op":"ppr","source":{SOURCE},"iters":{PR_ITERS}}}"#)).unwrap();
    assert!(is_ok(&r), "{label} ppr: {r:?}");
    assert_eq!(field_u64(&r, "hash"), Some(exp.ppr), "{label} ppr hash");
}

#[test]
fn concurrent_queries_bit_identical_across_backends_and_codecs() {
    let (el, truth) = edge_list();
    for codec in [Codec::Raw, Codec::DeltaVarint] {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        HusGraph::build_into(&el, &dir, &BuildConfig::with_p_codec(P, codec)).unwrap();
        for backend in [BackendKind::File, BackendKind::Mmap, BackendKind::Direct] {
            let label = format!("{codec:?}/{backend:?}");
            let exp = expected(&tmp.path().join("g"), backend, &truth);
            let serve_dir = StorageDir::open(tmp.path().join("g")).unwrap().with_backend(backend);
            let mut server = serve(serve_dir, test_config()).unwrap();
            let addr = server.addr().to_string();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| mixed_queries(&addr, &exp, &label));
                }
            });
            // Wire-op shutdown drains the daemon like SIGTERM would.
            let mut c = Client::connect(&addr).unwrap();
            let r = c.request(r#"{"op":"shutdown"}"#).unwrap();
            assert!(is_ok(&r), "{label} shutdown: {r:?}");
            server.wait();
        }
    }
}

#[test]
fn status_reports_snapshot_and_capacity() {
    let (el, _) = edge_list();
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    HusGraph::build_into(&el, &dir, &BuildConfig::with_p(P)).unwrap();
    let mut server = serve(dir, test_config()).unwrap();
    let mut c = Client::connect(&server.addr().to_string()).unwrap();
    let r = c.request(r#"{"id":9,"op":"status"}"#).unwrap();
    assert!(is_ok(&r), "{r:?}");
    assert_eq!(field_u64(&r, "id"), Some(9));
    assert_eq!(field_u64(&r, "runs"), Some(0));
    assert_eq!(field_u64(&r, "active"), Some(0));
    assert_eq!(field_u64(&r, "capacity"), Some(4));
    assert_eq!(field_u64(&r, "num_vertices"), Some(u64::from(NV)));
    assert!(field_u64(&r, "generation").is_some());
    server.shutdown();
}

#[test]
fn byte_budget_rejects_with_typed_error() {
    let (el, _) = edge_list();
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    HusGraph::build_into(&el, &dir, &BuildConfig::with_p(P)).unwrap();
    // Budget big enough for a point lookup, far too small for a scan.
    let config = ServeConfig { byte_budget: 256, ..test_config() };
    let mut server = serve(dir, config).unwrap();
    let mut c = Client::connect(&server.addr().to_string()).unwrap();
    let r = c.request(r#"{"op":"degree","v":0}"#).unwrap();
    assert!(is_ok(&r), "cheap lookup fits the budget: {r:?}");
    let r = c.request(r#"{"op":"pagerank","iters":5}"#).unwrap();
    assert!(!is_ok(&r), "{r:?}");
    assert_eq!(error_code(&r), Some("budget"), "{r:?}");
    assert!(field_u64(&r, "needed").unwrap() > 256, "{r:?}");
    assert_eq!(field_u64(&r, "budget"), Some(256));
    // The connection survives a rejected query.
    let r = c.request(r#"{"op":"degree","v":1}"#).unwrap();
    assert!(is_ok(&r), "{r:?}");
    server.shutdown();
}

#[test]
fn admission_control_rejects_when_slots_are_full() {
    let (el, _) = edge_list();
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    HusGraph::build_into(&el, &dir, &BuildConfig::with_p(P)).unwrap();
    let config = ServeConfig { max_inflight: 1, ..test_config() };
    let mut server = serve(dir, config).unwrap();
    let addr = server.addr().to_string();

    // Client A occupies the only slot with a long always-active run.
    let addr_a = addr.clone();
    let slow = std::thread::spawn(move || {
        let mut a = Client::connect(&addr_a).unwrap();
        a.request(r#"{"op":"pagerank","iters":4000}"#).unwrap()
    });
    // Status bypasses admission: poll until A holds the slot.
    let mut status = Client::connect(&addr).unwrap();
    let mut active = 0;
    for _ in 0..2_000 {
        let r = status.request(r#"{"op":"status"}"#).unwrap();
        active = field_u64(&r, "active").unwrap();
        if active >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(active, 1, "client A never acquired the slot");
    // While the slot is held, any query is rejected busy.
    let mut b = Client::connect(&addr).unwrap();
    let r = b.request(r#"{"op":"degree","v":0}"#).unwrap();
    assert!(!is_ok(&r), "{r:?}");
    assert_eq!(error_code(&r), Some("busy"), "{r:?}");
    // But admin ops still work under overload.
    let r = status.request(r#"{"op":"status"}"#).unwrap();
    assert!(is_ok(&r), "{r:?}");
    // A's query was admitted first and completes normally.
    let r = slow.join().unwrap();
    assert!(is_ok(&r), "{r:?}");
    // Slot released: B is admitted now.
    let r = b.request(r#"{"op":"degree","v":0}"#).unwrap();
    assert!(is_ok(&r), "{r:?}");
    server.shutdown();
}

#[test]
fn snapshot_isolation_across_ingest_and_compaction() {
    let (el, _) = edge_list();
    let tmp = tempfile::tempdir().unwrap();
    let root = tmp.path().join("g");
    let dir = StorageDir::create(&root).unwrap();
    HusGraph::build_into(&el, &dir, &BuildConfig::with_p(P)).unwrap();

    // Pre-update expectation, single-threaded.
    let g0 = open_snapshot(&root, BackendKind::File);
    let pre_ranks = run1(&g0, &PageRank::new(NV), 2_000);
    let pre_hash = fnv1a64(pod::as_bytes(&pre_ranks));
    let pre_edges = g0.num_edges();
    drop(g0);

    let mut server = serve(StorageDir::open(&root).unwrap(), test_config()).unwrap();
    let addr = server.addr().to_string();
    let gen0 = {
        let mut c = Client::connect(&addr).unwrap();
        let r = c.request(r#"{"op":"status"}"#).unwrap();
        field_u64(&r, "generation").unwrap()
    };

    // Long query pinned to generation 0 (always-active, 2000 iters).
    let addr_q = addr.clone();
    let old_reader = std::thread::spawn(move || {
        let mut c = Client::connect(&addr_q).unwrap();
        c.request(r#"{"op":"pagerank","iters":2000}"#).unwrap()
    });
    // Wait until it holds a slot so it's genuinely in flight.
    let mut status = Client::connect(&addr).unwrap();
    for _ in 0..2_000 {
        let r = status.request(r#"{"op":"status"}"#).unwrap();
        if field_u64(&r, "active").unwrap() >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Ingest + flush (new delta run, generation bump), then compact
    // (whole-directory staged swap) — under the live server.
    let mut dg = DynamicGraph::open(StorageDir::open(&root).unwrap()).unwrap();
    for k in 0..40u32 {
        dg.insert_edge(k % NV, (k * 7 + 1) % NV, 1.0).unwrap();
    }
    dg.flush().unwrap();
    assert!(dg.compact().unwrap());
    drop(dg);

    // The in-flight query finishes on the OLD generation: bit-identical
    // to the pre-update run.
    let r = old_reader.join().unwrap();
    assert!(is_ok(&r), "{r:?}");
    assert_eq!(field_u64(&r, "generation"), Some(gen0), "old reader kept its pin");
    assert_eq!(field_u64(&r, "hash"), Some(pre_hash), "old reader saw pre-update data");

    // The refresher re-pins; new queries see the new generation.
    let mut new_gen = gen0;
    for _ in 0..400 {
        let r = status.request(r#"{"op":"status"}"#).unwrap();
        new_gen = field_u64(&r, "generation").unwrap();
        if new_gen > gen0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(new_gen > gen0, "snapshot never refreshed past generation {gen0}");

    // Post-update expectation, computed the single-threaded way.
    let g1 = open_snapshot(&root, BackendKind::File);
    let post_ranks = run1(&g1, &PageRank::new(NV), PR_ITERS as usize);
    let post_hash = fnv1a64(pod::as_bytes(&post_ranks));
    assert!(g1.num_edges() > pre_edges, "ingest added edges");
    drop(g1);

    let mut c = Client::connect(&addr).unwrap();
    let r = c.request(&format!(r#"{{"op":"pagerank","iters":{PR_ITERS}}}"#)).unwrap();
    assert!(is_ok(&r), "{r:?}");
    assert_eq!(field_u64(&r, "generation"), Some(new_gen));
    assert_eq!(field_u64(&r, "hash"), Some(post_hash), "new reader sees post-update data");
    server.shutdown();
}

#[test]
fn overlay_is_memoized_per_generation_and_run_set() {
    let (el, _) = edge_list();
    let tmp = tempfile::tempdir().unwrap();
    let root = tmp.path().join("g");
    let dir = StorageDir::create(&root).unwrap();
    HusGraph::build_into(&el, &dir, &BuildConfig::with_p(P)).unwrap();
    let mut dg = DynamicGraph::open(StorageDir::open(&root).unwrap()).unwrap();
    for k in 0..20u32 {
        dg.insert_edge(k, (k + 3) % NV, 1.0).unwrap();
    }
    dg.flush().unwrap();
    drop(dg);

    // Warm the cache for this (root, generation, run-set).
    let first = open_snapshot(&root, BackendKind::File);
    let hits_before = husgraph::core::delta::overlay_cache_hits();
    // Re-pinning the same state N more times must hit the memoized
    // overlay, not rebuild it (other tests run concurrently, so assert
    // on the cache-hit delta, not on the global build counter).
    const REOPENS: u64 = 5;
    for _ in 0..REOPENS {
        let g = open_snapshot(&root, BackendKind::File);
        assert_eq!(g.num_edges(), first.num_edges());
    }
    let hits_after = husgraph::core::delta::overlay_cache_hits();
    assert!(
        hits_after >= hits_before + REOPENS,
        "expected ≥{REOPENS} overlay cache hits, got {}",
        hits_after - hits_before
    );
}
