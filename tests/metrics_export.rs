//! Integration tests for the telemetry layer (DESIGN.md §8): the
//! OpenMetrics exporter must serve a valid exposition while an engine
//! run is in flight, and the resilience counters must surface in the
//! registry and the `/metrics` text when faults are injected.

use husgraph::algos::PageRank;
use husgraph::core::{BuildConfig, Engine, HusGraph, RunConfig};
use husgraph::obs as hus_obs;
use husgraph::storage::{FaultSpec, RetryPolicy, StorageDir};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests that flip the process-global collection/heatmap
/// flags and assert on the shared registry.
static GATE: Mutex<()> = Mutex::new(());

fn build_graph(path: &Path, vertices: u32, edges: usize) -> HusGraph {
    let el = hus_gen::rmat(vertices, edges, 42, Default::default());
    let dir = StorageDir::create(path).unwrap();
    let cfg = BuildConfig::with_p_codec(4, husgraph::codec::Codec::Raw);
    HusGraph::build_into(&el, &dir, &cfg).unwrap()
}

/// Minimal line-level OpenMetrics checker: every line is a
/// `# TYPE`/`# HELP`/`# EOF` comment or `name[{labels}] value` with a
/// parseable float, and the text ends with exactly one `# EOF`.
fn check_exposition(text: &str) -> Result<(), String> {
    let mut saw_eof = false;
    for (ln, line) in text.lines().enumerate() {
        let ctx = |msg: &str| format!("line {}: {msg}: {line:?}", ln + 1);
        if saw_eof {
            return Err(ctx("content after # EOF"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if rest == "EOF" {
                saw_eof = true;
            } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                let kind = decl.split(' ').nth(1).unwrap_or("");
                if !["counter", "gauge", "histogram", "summary"].contains(&kind) {
                    return Err(ctx("bad metric type"));
                }
            } else if !rest.starts_with("HELP ") {
                return Err(ctx("unknown comment"));
            }
            continue;
        }
        let name_end = line.find(['{', ' ']).ok_or_else(|| ctx("no name/value split"))?;
        let name = &line[..name_end];
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(ctx("bad metric name"));
        }
        let value = line.rsplit(' ').next().unwrap_or("");
        value.parse::<f64>().map_err(|_| ctx("unparseable sample value"))?;
    }
    if saw_eof {
        Ok(())
    } else {
        Err("missing trailing # EOF".into())
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // One write_all: the server reads the request exactly once, so a
    // fragmented request would race its response.
    let req = format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn metrics_endpoint_serves_valid_exposition_during_pagerank() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let tmp = tempfile::tempdir().unwrap();
    let graph = build_graph(&tmp.path().join("g"), 30_000, 300_000);
    hus_obs::set_enabled(true);
    hus_obs::set_heatmap_enabled(true);
    hus_obs::attr::reset();

    let server = hus_obs::export::serve("127.0.0.1:0").unwrap();
    let addr = server.addr();

    let worker = std::thread::spawn(move || {
        let n = graph.meta().num_vertices;
        let cfg = RunConfig { max_iterations: 20, threads: 2, ..Default::default() };
        Engine::new(&graph, &PageRank::new(n), cfg).run().unwrap().1
    });

    // Scrape while the run is in flight; every response must be a valid
    // exposition (partially-updated registries included).
    let (head, body) = http_get(addr, "/metrics");
    let in_flight = !worker.is_finished();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/openmetrics-text"), "{head}");
    check_exposition(&body).unwrap();
    assert!(body.contains("hus_build_info"), "{body}");

    let (hhead, hbody) = http_get(addr, "/healthz");
    assert!(hhead.starts_with("HTTP/1.1 200"), "{hhead}");
    assert_eq!(hbody, "ok\n");

    let stats = worker.join().unwrap();
    assert_eq!(stats.iterations.len(), 20);
    assert!(in_flight, "run finished before the first scrape; grow the workload");

    // After the run: engine + predictor families and the per-block
    // heatmap gauges must all be present and still valid.
    let (_, body) = http_get(addr, "/metrics");
    check_exposition(&body).unwrap();
    for family in ["hus_engine_iteration", "hus_predict_gated_total", "hus_block_raw_bytes{"] {
        assert!(body.contains(family), "missing {family} in:\n{body}");
    }
    let (nf_head, _) = http_get(addr, "/nope");
    assert!(nf_head.starts_with("HTTP/1.1 404"), "{nf_head}");
    server.shutdown();
}

#[test]
fn resilience_counters_tick_in_registry_and_exposition_under_faults() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    build_graph(&path, 600, 6000);
    hus_obs::set_enabled(true);

    let faults = FaultSpec { seed: 7, eio: 0.05, ..Default::default() };
    let retry = RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_micros(400),
    };
    let dir = StorageDir::open(&path).unwrap().with_retry(retry).with_faults(Some(faults));
    let g = HusGraph::open(dir).unwrap();
    // PageRank (always-active) re-reads the same shard files every
    // iteration, driving each backend's deterministic per-op fault
    // draws deep enough to guarantee injected EIOs.
    let cfg = RunConfig {
        threads: 1,
        parallel_rows: false,
        readahead_blocks: 1,
        max_iterations: 5,
        ..Default::default()
    };
    let n = g.meta().num_vertices;
    let (_, stats) = Engine::new(&g, &PageRank::new(n), cfg).run().unwrap();
    assert!(stats.resilience.retries > 0, "fault injection produced no retries: {stats:?}");

    // The engine publishes the tracker totals into `resilience.*`
    // gauges each iteration, so the registry mirrors the run's history.
    let reg = hus_obs::metrics::global();
    let gauge = |name: &str| {
        reg.gauge_values().iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0)
    };
    assert!(gauge("resilience.retries") >= stats.resilience.retries);

    // And the exporter renders them as a valid gauge family.
    let body = hus_obs::export::render(reg);
    check_exposition(&body).unwrap();
    let line = body
        .lines()
        .find(|l| l.starts_with("hus_resilience_retries "))
        .expect("hus_resilience_retries sample missing");
    let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(v >= stats.resilience.retries as f64, "{line}");
}
