//! Streaming-ingest equivalence: after *any* interleaving of inserts,
//! deletes, memtable spills and compactions, algorithms running on the
//! dynamic graph must be **bit-identical** to the same algorithms on a
//! from-scratch rebuild of the final edge set — across read backends
//! and base codecs. This is the end-to-end contract of DESIGN.md §11:
//! the delta overlay is invisible to the engine.

use std::collections::{BTreeMap, BTreeSet};

use husgraph::algos::{PageRank, Sssp, Wcc};
use husgraph::codec::Codec;
use husgraph::core::{
    BuildConfig, DynamicGraph, Engine, HusGraph, RunConfig, UpdateMode, VertexProgram,
};
use husgraph::gen::{Edge, EdgeList};
use husgraph::storage::{BackendKind, StorageDir};

const P: u32 = 4;
const NV: u32 = 400;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Truth model and device under test, kept in lockstep: every update
/// is applied to both, and `verify` rebuilds the truth from scratch
/// and demands bitwise agreement.
struct Harness {
    tmp: tempfile::TempDir,
    codec: Codec,
    backend: BackendKind,
    /// The exact current edge set (the base is deduplicated before the
    /// build so set semantics are exact: an insert replaces all copies
    /// of its key with one edge, and copies are always one).
    truth: BTreeSet<(u32, u32)>,
    dg: DynamicGraph,
    rebuilds: usize,
}

impl Harness {
    fn new(codec: Codec, backend: BackendKind) -> Self {
        let raw = husgraph::gen::rmat(NV, 2500, 42, Default::default());
        let truth: BTreeSet<(u32, u32)> = raw.edges.iter().map(|e| (e.src, e.dst)).collect();
        let el = EdgeList {
            num_vertices: NV,
            edges: truth.iter().map(|&(s, d)| Edge::new(s, d)).collect(),
            weights: None,
        };
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("dyn")).unwrap();
        HusGraph::build_into(&el, &dir, &BuildConfig::with_p_codec(P, codec)).unwrap();
        let dg = Self::open_dg(tmp.path(), backend);
        Harness { tmp, codec, backend, truth, dg, rebuilds: 0 }
    }

    fn open_dg(root: &std::path::Path, backend: BackendKind) -> DynamicGraph {
        DynamicGraph::open(StorageDir::open(root.join("dyn")).unwrap().with_backend(backend))
            .unwrap()
    }

    /// Apply `n` pseudo-random updates to both the dynamic graph and
    /// the truth set. Every fourth op deletes an edge that really
    /// exists, so tombstones hit live keys, not just absent ones.
    fn apply_random(&mut self, n: usize, seed: u64) {
        let mut state = seed;
        for k in 0..n {
            let x = splitmix64(&mut state);
            if k % 4 == 3 && !self.truth.is_empty() {
                let victim = *self.truth.iter().nth(x as usize % self.truth.len()).unwrap();
                self.dg.delete_edge(victim.0, victim.1).unwrap();
                self.truth.remove(&victim);
            } else {
                let src = (x % NV as u64) as u32;
                let dst = ((x >> 32) % NV as u64) as u32;
                if x.is_multiple_of(8) {
                    self.dg.delete_edge(src, dst).unwrap();
                    self.truth.remove(&(src, dst));
                } else {
                    self.dg.insert_edge(src, dst, 1.0).unwrap();
                    self.truth.insert((src, dst));
                }
            }
        }
    }

    /// Rebuild the truth set from scratch and demand the dynamic graph
    /// agrees bit for bit under both forced update models.
    fn verify(&mut self, label: &str) {
        self.rebuilds += 1;
        let el = EdgeList {
            num_vertices: NV,
            edges: self.truth.iter().map(|&(s, d)| Edge::new(s, d)).collect(),
            weights: None,
        };
        let ref_dir =
            StorageDir::create(self.tmp.path().join(format!("ref{}", self.rebuilds))).unwrap();
        HusGraph::build_into(&el, &ref_dir, &BuildConfig::with_p_codec(P, self.codec)).unwrap();
        let reference =
            HusGraph::open(StorageDir::open(ref_dir.root()).unwrap().with_backend(self.backend))
                .unwrap();

        let live = self.dg.snapshot().unwrap();
        assert_eq!(live.num_edges(), self.truth.len() as u64, "{label}: edge count");
        assert_eq!(live.out_degrees(), reference.out_degrees(), "{label}: degree table");

        for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop] {
            let tag = format!("{label}/{mode:?}/{:?}/{}", self.backend, self.codec.name());
            let pr = run(live, &PageRank::new(NV), mode, 5);
            let pr_ref = run(&reference, &PageRank::new(NV), mode, 5);
            assert_eq!(bits(&pr), bits(&pr_ref), "{tag}: PageRank not bit-identical");

            let wcc = run(live, &Wcc, mode, 1000);
            let wcc_ref = run(&reference, &Wcc, mode, 1000);
            assert_eq!(wcc, wcc_ref, "{tag}: WCC labels differ");
        }
    }
}

/// Single-threaded run so float accumulation order is fixed and
/// bitwise comparison is meaningful.
fn run<Pr: VertexProgram>(
    g: &HusGraph,
    program: &Pr,
    mode: UpdateMode,
    max_iterations: usize,
) -> Vec<Pr::Value> {
    let config = RunConfig { mode, max_iterations, threads: 1, ..Default::default() };
    Engine::new(g, program, config).run().unwrap().0
}

fn bits(vals: &[f32]) -> Vec<u32> {
    vals.iter().map(|v| v.to_bits()).collect()
}

fn scenario(codec: Codec, backend: BackendKind) {
    let mut h = Harness::new(codec, backend);

    // Memtable only: updates visible with zero disk state.
    h.apply_random(120, 1);
    h.verify("memtable");

    // One spilled run plus a fresh memtable on top.
    h.dg.flush().unwrap().expect("non-empty memtable spills");
    h.apply_random(120, 2);
    h.verify("run+memtable");

    // Second spill, then reopen from disk: persisted runs alone must
    // reconstruct the same graph (the memtable is volatile by design,
    // so flush first).
    h.dg.flush().unwrap();
    assert_eq!(h.dg.run_count(), 2);
    h.dg = Harness::open_dg(h.tmp.path(), backend);
    assert_eq!(h.dg.run_count(), 2, "reopen sees both spilled runs");
    h.verify("reopened");

    // Compaction folds everything into a new base generation.
    assert!(h.dg.compact().unwrap());
    assert_eq!(h.dg.run_count(), 0);
    h.verify("compacted");

    // And the cycle restarts cleanly on the compacted base.
    h.apply_random(60, 3);
    h.verify("post-compaction");
}

#[test]
fn ingest_matches_rebuild_raw_file() {
    scenario(Codec::Raw, BackendKind::File);
}

#[test]
fn ingest_matches_rebuild_raw_mmap() {
    scenario(Codec::Raw, BackendKind::Mmap);
}

#[test]
fn ingest_matches_rebuild_raw_direct() {
    scenario(Codec::Raw, BackendKind::Direct);
}

#[test]
fn ingest_matches_rebuild_delta_varint_file() {
    scenario(Codec::DeltaVarint, BackendKind::File);
}

#[test]
fn ingest_matches_rebuild_delta_varint_mmap() {
    scenario(Codec::DeltaVarint, BackendKind::Mmap);
}

#[test]
fn ingest_matches_rebuild_delta_varint_direct() {
    scenario(Codec::DeltaVarint, BackendKind::Direct);
}

/// Weighted graphs: inserted weights override the base weights and
/// survive the spill → merge → compact cycle, verified bitwise through
/// SSSP (min-plus is single-threaded deterministic).
#[test]
fn weighted_updates_match_rebuild_bitwise() {
    let raw = husgraph::gen::rmat(NV, 2500, 9, Default::default()).with_hash_weights(0.1, 10.0);
    let mut truth: BTreeMap<(u32, u32), f32> = BTreeMap::new();
    for (e, w) in raw.edges.iter().zip(raw.weights.as_ref().unwrap()) {
        truth.insert((e.src, e.dst), *w);
    }
    let el = |truth: &BTreeMap<(u32, u32), f32>| EdgeList {
        num_vertices: NV,
        edges: truth.keys().map(|&(s, d)| Edge::new(s, d)).collect(),
        weights: Some(truth.values().copied().collect()),
    };
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("dyn")).unwrap();
    HusGraph::build_into(&el(&truth), &dir, &BuildConfig::with_p(P)).unwrap();

    let mut dg = DynamicGraph::open(StorageDir::open(tmp.path().join("dyn")).unwrap()).unwrap();
    let mut state = 77u64;
    for k in 0..150 {
        let x = splitmix64(&mut state);
        let src = (x % NV as u64) as u32;
        let dst = ((x >> 32) % NV as u64) as u32;
        if x.is_multiple_of(5) {
            dg.delete_edge(src, dst).unwrap();
            truth.remove(&(src, dst));
        } else {
            // Weight updates of existing edges and brand-new edges alike.
            let w = 0.1 + (x >> 16 & 0xfff) as f32 / 512.0;
            dg.insert_edge(src, dst, w).unwrap();
            truth.insert((src, dst), w);
        }
        if k == 75 {
            dg.flush().unwrap();
        }
    }

    let ref_dir = StorageDir::create(tmp.path().join("ref")).unwrap();
    HusGraph::build_into(&el(&truth), &ref_dir, &BuildConfig::with_p(P)).unwrap();
    let reference = HusGraph::open(StorageDir::open(ref_dir.root()).unwrap()).unwrap();

    for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop] {
        let a = run(dg.snapshot().unwrap(), &Sssp::new(0), mode, 1000);
        let b = run(&reference, &Sssp::new(0), mode, 1000);
        assert_eq!(bits(&a), bits(&b), "{mode:?}: SSSP over merged weights not bit-identical");
    }

    // Compaction bakes the weights into the base; still identical.
    assert!(dg.compact().unwrap());
    for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop] {
        let a = run(dg.snapshot().unwrap(), &Sssp::new(0), mode, 1000);
        let b = run(&reference, &Sssp::new(0), mode, 1000);
        assert_eq!(bits(&a), bits(&b), "{mode:?}: SSSP after compaction not bit-identical");
    }
}
