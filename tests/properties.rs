//! Property-based tests over the core invariants:
//!
//! * the dual-block representation is a lossless re-encoding of any edge
//!   list (both directions),
//! * push (ROP), pull (COP), the hybrid, and the per-column schedule are
//!   observationally equivalent for min-propagation programs on random
//!   graphs,
//! * the predictor's decision is monotone in frontier density,
//! * interval partitioning always covers `[0, V)` exactly.

use husgraph::algos::{reference, Bfs, Wcc};
use husgraph::core::partition::{interval_of, interval_starts, PartitionStrategy};
use husgraph::core::predict::Predictor;
use husgraph::core::{BuildConfig, Engine, HusGraph, RunConfig, SelectionGranularity, UpdateMode};
use husgraph::gen::{Csr, Edge, EdgeList};
use husgraph::storage::{Access, StorageDir, Throughput};
use proptest::prelude::*;

fn arb_edge_list(max_v: u32, max_e: usize) -> impl Strategy<Value = EdgeList> {
    (2..max_v).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_e).prop_map(move |pairs| {
            let mut el = EdgeList::from_pairs(pairs);
            el.num_vertices = n;
            el
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dual_block_roundtrips_any_edge_list(el in arb_edge_list(80, 500), p in 1u32..9) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p(p)).unwrap();
        let meta = g.meta();

        // Reconstruct via out-blocks.
        let mut via_out = Vec::new();
        for i in 0..g.p() {
            let base = meta.interval_start(i);
            for j in 0..g.p() {
                let idx = g.load_out_index(i, j, Access::Sequential).unwrap();
                let recs = g.stream_out_block(i, j).unwrap();
                for local in 0..meta.interval_len(i) as usize {
                    for k in idx[local]..idx[local + 1] {
                        via_out.push(Edge::new(base + local as u32, recs.neighbor(k as usize)));
                    }
                }
            }
        }
        // Reconstruct via in-blocks.
        let mut via_in = Vec::new();
        for j in 0..g.p() {
            let base = meta.interval_start(j);
            for i in 0..g.p() {
                let idx = g.load_in_index(i, j, Access::Sequential).unwrap();
                let recs = g.stream_in_block(i, j).unwrap();
                for local in 0..meta.interval_len(j) as usize {
                    for k in idx[local]..idx[local + 1] {
                        via_in.push(Edge::new(recs.neighbor(k as usize), base + local as u32));
                    }
                }
            }
        }
        let mut want = el.edges.clone();
        want.sort_unstable();
        via_out.sort_unstable();
        via_in.sort_unstable();
        prop_assert_eq!(&via_out, &want);
        prop_assert_eq!(&via_in, &want);
    }

    #[test]
    fn all_execution_strategies_agree_on_bfs(el in arb_edge_list(60, 300), p in 1u32..6) {
        let want = reference::bfs_levels(&Csr::from_edge_list(&el), 0);
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p(p)).unwrap();
        for (mode, gran) in [
            (UpdateMode::ForceRop, SelectionGranularity::PerIteration),
            (UpdateMode::ForceCop, SelectionGranularity::PerIteration),
            (UpdateMode::Hybrid, SelectionGranularity::PerIteration),
            (UpdateMode::Hybrid, SelectionGranularity::PerColumn),
        ] {
            let config = RunConfig { mode, granularity: gran, threads: 1, ..Default::default() };
            let (got, stats) = Engine::new(&g, &Bfs::new(0), config).run().unwrap();
            prop_assert!(stats.converged);
            prop_assert_eq!(&got, &want);
        }
    }

    #[test]
    fn wcc_on_symmetrized_graph_matches_union_find(el in arb_edge_list(50, 200), p in 1u32..5) {
        let el = el.symmetrize();
        let want = reference::wcc_labels(&Csr::from_edge_list(&el));
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p(p)).unwrap();
        let (got, _) = Engine::new(&g, &Wcc, RunConfig::default()).run().unwrap();
        prop_assert_eq!(&got, &want);
    }

    #[test]
    fn interval_partition_covers_exactly(n in 1u32..5000, p in 1u32..64) {
        let starts = interval_starts(n, p, PartitionStrategy::EqualVertices, &[]);
        prop_assert_eq!(starts.len(), p as usize + 1);
        prop_assert_eq!(starts[0], 0);
        prop_assert_eq!(*starts.last().unwrap(), n);
        prop_assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        // Every vertex belongs to exactly the interval interval_of says.
        for v in (0..n).step_by((n as usize / 50).max(1)) {
            let i = interval_of(&starts, v);
            prop_assert!(starts[i] <= v && v < starts[i + 1]);
        }
    }

    #[test]
    fn balanced_partition_covers_exactly(
        degrees in proptest::collection::vec(0u32..50, 1..400),
        p in 1u32..16,
    ) {
        let n = degrees.len() as u32;
        let starts = interval_starts(n, p, PartitionStrategy::BalancedOutDegree, &degrees);
        prop_assert_eq!(starts.len(), p as usize + 1);
        prop_assert_eq!(starts[0], 0);
        prop_assert_eq!(*starts.last().unwrap(), n);
        prop_assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn predictor_is_monotone_in_frontier(
        active_edges in 0u64..10_000_000,
        extra in 1u64..1_000_000,
    ) {
        let pred = Predictor::new(
            Throughput { sequential_bps: 120e6, random_bps: 1e6, batched_bps: 40e6 },
            4.0,
            4,
        );
        let (v, e, p) = (1_000_000u64, 20_000_000u64, 8u64);
        let c1 = pred.c_rop(active_edges, v, p);
        let c2 = pred.c_rop(active_edges + extra, v, p);
        prop_assert!(c2 > c1, "c_rop must be strictly increasing: {c1} vs {c2}");
        // COP is frontier-independent.
        prop_assert_eq!(pred.c_cop(e, v, p).to_bits(), pred.c_cop(e, v, p).to_bits());
        // Decisions flip at most once along the density axis.
        let dense_decision = pred.select_iteration(1, active_edges + extra, v, e, p);
        let sparse_decision = pred.select_iteration(1, active_edges, v, e, p);
        if sparse_decision.model == husgraph::core::UpdateModel::Cop {
            prop_assert_eq!(dense_decision.model, husgraph::core::UpdateModel::Cop);
        }
    }

    #[test]
    fn active_set_iter_matches_membership(
        bits in proptest::collection::btree_set(0u32..500, 0..80),
    ) {
        let set = husgraph::core::ActiveSet::new(500);
        for &b in &bits {
            set.set(b);
        }
        let collected: Vec<u32> = set.iter().collect();
        let want: Vec<u32> = bits.iter().copied().collect();
        prop_assert_eq!(collected, want);
        prop_assert_eq!(set.count(), bits.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn external_builder_matches_in_memory_builder(
        el in arb_edge_list(60, 250),
        p in 1u32..6,
    ) {
        use husgraph::core::{build, build_external, BuildConfig, ListSource};
        let tmp = tempfile::tempdir().unwrap();
        let a = StorageDir::create(tmp.path().join("a")).unwrap();
        let b = StorageDir::create(tmp.path().join("b")).unwrap();
        let cfg = BuildConfig { p: Some(p), ..Default::default() };
        let meta_a = build(&el, &a, &cfg).unwrap();
        let meta_b = build_external(&ListSource(&el), &b, &cfg).unwrap();
        prop_assert_eq!(&meta_a, &meta_b);
        // The builders clamp P to the vertex count; iterate what was built.
        for i in 0..meta_a.p as usize {
            for name in [
                husgraph::core::GraphMeta::out_edges_file(i),
                husgraph::core::GraphMeta::out_index_file(i),
                husgraph::core::GraphMeta::in_edges_file(i),
                husgraph::core::GraphMeta::in_index_file(i),
            ] {
                prop_assert_eq!(
                    std::fs::read(a.path(&name)).unwrap(),
                    std::fs::read(b.path(&name)).unwrap(),
                    "{}", name
                );
            }
        }
    }

    #[test]
    fn cached_backend_is_transparent(
        data in proptest::collection::vec(any::<u8>(), 1..4000),
        reads in proptest::collection::vec((0usize..4000, 1usize..128), 1..40),
        budget in 128usize..2048,
        page in 16usize..256,
    ) {
        use husgraph::storage::{CachedBackend, ReadBackend};
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let mut w = dir.writer("f.bin").unwrap();
        w.write_all(&data).unwrap();
        w.finish().unwrap();
        let plain = dir.reader("f.bin").unwrap();
        let cached = CachedBackend::new(dir.reader("f.bin").unwrap(), budget, page);
        for &(start, len) in &reads {
            let start = start % data.len();
            let len = len.min(data.len() - start);
            if len == 0 { continue; }
            let mut a = vec![0u8; len];
            let mut b = vec![0u8; len];
            plain.read_at(start as u64, &mut a, Access::Random).unwrap();
            cached.read_at(start as u64, &mut b, Access::Random).unwrap();
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn relabel_preserves_bfs_reachability_count(
        el in arb_edge_list(60, 250),
        seed in any::<u64>(),
    ) {
        use husgraph::algos::reference::bfs_levels;
        if el.num_vertices == 0 { return Ok(()); }
        let relabeled = el.clone().relabel(seed);
        // Reachable-set *sizes* from corresponding sources must match.
        // Recover the permutation by relabeling the identity positions.
        let n = el.num_vertices;
        let mut probe = EdgeList::empty(n);
        probe.edges = (0..n.saturating_sub(1)).map(|v| Edge::new(v, v + 1)).collect();
        let probe_r = probe.clone().relabel(seed);
        // perm[v] = relabeled id of v, read off the probe's edges.
        let mut perm: Vec<u32> = (0..n).collect();
        for (orig, new) in probe.edges.iter().zip(&probe_r.edges) {
            perm[orig.src as usize] = new.src;
            perm[orig.dst as usize] = new.dst;
        }
        let csr_a = Csr::from_edge_list(&el);
        let csr_b = Csr::from_edge_list(&relabeled);
        let src = 0u32;
        let ra = bfs_levels(&csr_a, src).iter().filter(|&&l| l != u32::MAX).count();
        let rb = bfs_levels(&csr_b, perm[src as usize]).iter().filter(|&&l| l != u32::MAX).count();
        prop_assert_eq!(ra, rb);
    }
}
