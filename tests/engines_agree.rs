//! Cross-engine equivalence: HUS-Graph (all modes and granularities),
//! the GraphChi-style baseline and the GridGraph-style baseline must all
//! agree with the in-memory reference implementations on every benchmark
//! algorithm.

use husgraph::algos::{reference, Bfs, PageRank, Sssp, Wcc, UNREACHED};
use husgraph::baselines::{BaselineConfig, GraphChiEngine, GridGraphEngine, GridStore, PswStore};
use husgraph::core::{
    BuildConfig, Engine, HusGraph, RunConfig, SelectionGranularity, UpdateMode, VertexProgram,
};
use husgraph::gen::{Csr, EdgeList};
use husgraph::storage::StorageDir;

struct Arena {
    _tmp: tempfile::TempDir,
    hus: HusGraph,
    grid: GridStore,
    psw: PswStore,
}

fn build_all(el: &EdgeList, p: u32) -> Arena {
    let tmp = tempfile::tempdir().unwrap();
    let hus = HusGraph::build_into(
        el,
        &StorageDir::create(tmp.path().join("hus")).unwrap(),
        &BuildConfig::with_p(p),
    )
    .unwrap();
    let grid = GridStore::build_into(el, &StorageDir::create(tmp.path().join("grid")).unwrap(), p)
        .unwrap();
    let psw =
        PswStore::build_into(el, &StorageDir::create(tmp.path().join("psw")).unwrap(), p).unwrap();
    Arena { _tmp: tmp, hus, grid, psw }
}

fn hus_run<Pr: VertexProgram>(
    arena: &Arena,
    program: &Pr,
    mode: UpdateMode,
    granularity: SelectionGranularity,
    max_iterations: usize,
) -> Vec<Pr::Value> {
    let config = RunConfig { mode, granularity, max_iterations, threads: 2, ..Default::default() };
    Engine::new(&arena.hus, program, config).run().unwrap().0
}

fn all_hus_variants() -> Vec<(UpdateMode, SelectionGranularity)> {
    vec![
        (UpdateMode::Hybrid, SelectionGranularity::PerIteration),
        (UpdateMode::Hybrid, SelectionGranularity::PerColumn),
        (UpdateMode::ForceRop, SelectionGranularity::PerIteration),
        (UpdateMode::ForceCop, SelectionGranularity::PerIteration),
    ]
}

#[test]
fn bfs_agrees_across_all_engines() {
    let el = husgraph::gen::rmat(400, 3000, 7, Default::default());
    let want = reference::bfs_levels(&Csr::from_edge_list(&el), 0);
    let arena = build_all(&el, 4);
    for (mode, gran) in all_hus_variants() {
        assert_eq!(hus_run(&arena, &Bfs::new(0), mode, gran, 1000), want, "{mode:?}/{gran:?}");
    }
    let cfg = BaselineConfig { threads: 2, ..Default::default() };
    let (grid_levels, _) =
        GridGraphEngine::new(&arena.grid, &Bfs::new(0), cfg.clone()).run().unwrap();
    assert_eq!(grid_levels, want, "GridGraph");
    let (psw_levels, _) = GraphChiEngine::new(&arena.psw, &Bfs::new(0), cfg).run().unwrap();
    assert_eq!(psw_levels, want, "GraphChi");
}

#[test]
fn wcc_agrees_across_all_engines() {
    let el = husgraph::gen::chung_lu(300, 900, 2.3, 11).symmetrize();
    let want = reference::wcc_labels(&Csr::from_edge_list(&el));
    let arena = build_all(&el, 3);
    for (mode, gran) in all_hus_variants() {
        assert_eq!(hus_run(&arena, &Wcc, mode, gran, 1000), want, "{mode:?}/{gran:?}");
    }
    let cfg = BaselineConfig { threads: 2, ..Default::default() };
    assert_eq!(GridGraphEngine::new(&arena.grid, &Wcc, cfg.clone()).run().unwrap().0, want);
    assert_eq!(GraphChiEngine::new(&arena.psw, &Wcc, cfg).run().unwrap().0, want);
}

#[test]
fn sssp_agrees_across_all_engines() {
    let el = husgraph::gen::rmat(250, 2000, 13, Default::default()).with_hash_weights(0.2, 3.0);
    let want = reference::sssp_distances(&Csr::from_edge_list(&el), 0);
    let close = |got: &[f32], label: &str| {
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            let ok =
                (g.is_infinite() && w.is_infinite()) || (g - w).abs() <= 1e-4 * w.abs().max(1.0);
            assert!(ok, "{label} vertex {v}: {g} vs {w}");
        }
    };
    let arena = build_all(&el, 4);
    for (mode, gran) in all_hus_variants() {
        close(&hus_run(&arena, &Sssp::new(0), mode, gran, 1000), &format!("{mode:?}/{gran:?}"));
    }
    let cfg = BaselineConfig { threads: 2, ..Default::default() };
    close(&GridGraphEngine::new(&arena.grid, &Sssp::new(0), cfg.clone()).run().unwrap().0, "grid");
    close(&GraphChiEngine::new(&arena.psw, &Sssp::new(0), cfg).run().unwrap().0, "psw");
}

#[test]
fn pagerank_synchronous_engines_match_reference_exactly() {
    // HUS (all modes) and GridGraph implement synchronous (Jacobi)
    // PageRank: after the same iteration count they match the textbook
    // power iteration. GraphChi is asynchronous, so it is compared at
    // the fixpoint instead (see baseline unit tests).
    let el = husgraph::gen::rmat(200, 1500, 17, Default::default());
    let want = reference::pagerank(&Csr::from_edge_list(&el), 0.85, 5);
    let arena = build_all(&el, 4);
    let pr = PageRank::new(el.num_vertices);
    let close = |got: &[f32], label: &str| {
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() <= 1e-3 * w.max(1e-6), "{label} v{v}: {g} vs {w}");
        }
    };
    for (mode, gran) in all_hus_variants() {
        close(&hus_run(&arena, &pr, mode, gran, 5), &format!("{mode:?}/{gran:?}"));
    }
    let cfg = BaselineConfig { threads: 2, max_iterations: 5, ..Default::default() };
    close(&GridGraphEngine::new(&arena.grid, &pr, cfg).run().unwrap().0, "grid");
}

#[test]
fn disconnected_and_isolated_vertices_survive_everywhere() {
    // Two components plus isolated vertices.
    let mut el = EdgeList::from_pairs([(0, 1), (1, 2), (5, 6), (6, 5)]);
    el.num_vertices = 9;
    let want = reference::bfs_levels(&Csr::from_edge_list(&el), 0);
    assert_eq!(want[5], UNREACHED);
    assert_eq!(want[8], UNREACHED);
    let arena = build_all(&el, 3);
    for (mode, gran) in all_hus_variants() {
        assert_eq!(hus_run(&arena, &Bfs::new(0), mode, gran, 100), want);
    }
    let cfg = BaselineConfig::default();
    assert_eq!(GridGraphEngine::new(&arena.grid, &Bfs::new(0), cfg.clone()).run().unwrap().0, want);
    assert_eq!(GraphChiEngine::new(&arena.psw, &Bfs::new(0), cfg).run().unwrap().0, want);
}

#[test]
fn extreme_partition_counts_agree() {
    // P = 1 (single block) and P close to |V| both work.
    let el = husgraph::gen::rmat(60, 400, 23, Default::default());
    let want = reference::bfs_levels(&Csr::from_edge_list(&el), 0);
    for p in [1u32, 2, 7, 59] {
        let arena = build_all(&el, p);
        for (mode, gran) in all_hus_variants() {
            assert_eq!(
                hus_run(&arena, &Bfs::new(0), mode, gran, 1000),
                want,
                "P={p} {mode:?}/{gran:?}"
            );
        }
    }
}

#[test]
fn xstream_and_semi_external_agree_too() {
    use husgraph::baselines::{SemiExternalEngine, XStreamEngine, XStreamStore};
    let el = husgraph::gen::rmat(300, 2200, 29, Default::default());
    let want = reference::bfs_levels(&Csr::from_edge_list(&el), 0);
    let arena = build_all(&el, 4);
    let tmp = tempfile::tempdir().unwrap();
    let xs = XStreamStore::build_into(&el, &StorageDir::create(tmp.path().join("xs")).unwrap(), 4)
        .unwrap();
    let cfg = BaselineConfig::default();
    let (xs_levels, _) = XStreamEngine::new(&xs, &Bfs::new(0), cfg.clone()).run().unwrap();
    assert_eq!(xs_levels, want, "X-Stream");
    let (se_levels, _) = SemiExternalEngine::new(&arena.hus, &Bfs::new(0), cfg).run().unwrap();
    assert_eq!(se_levels, want, "semi-external");
}

#[test]
fn gauss_seidel_engines_reach_reference_fixpoints() {
    use husgraph::core::Synchrony;
    let el = husgraph::gen::rmat(250, 1500, 31, Default::default()).symmetrize();
    let want = reference::wcc_labels(&Csr::from_edge_list(&el));
    let arena = build_all(&el, 4);
    for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop, UpdateMode::Hybrid] {
        let config =
            RunConfig { mode, synchrony: Synchrony::GaussSeidel, threads: 2, ..Default::default() };
        let (got, stats) = Engine::new(&arena.hus, &Wcc, config).run().unwrap();
        assert!(stats.converged);
        assert_eq!(got, want, "{mode:?}");
    }
}
