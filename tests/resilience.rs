//! Fault-matrix integration tests for the storage resilience layer
//! (DESIGN.md §9): PageRank and BFS under every injected fault class,
//! asserting either bit-identical results with the expected resilience
//! counters (transient faults) or a clean typed error (permanent
//! corruption) — under both serial and parallel configurations.

use husgraph::algos::{Bfs, PageRank};
use husgraph::core::{BuildConfig, Engine, GraphMeta, HusGraph, RunConfig, RunStats, UpdateMode};
use husgraph::storage::{crc32c, FaultSpec, RetryPolicy, StorageDir, StorageError};
use std::path::Path;
use std::time::Duration;

/// A retry policy with microsecond backoffs so heavy fault rates don't
/// slow the suite, and a deep budget so transient storms never give up.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_micros(400),
    }
}

fn build_graph(path: &Path) -> HusGraph {
    let el = hus_gen::rmat(600, 6000, 42, Default::default());
    let dir = StorageDir::create(path).unwrap();
    // Raw pinned (regardless of HUS_CODEC): the corruption tests below
    // flip bytes at blocks' decoded offsets, which are only their
    // on-disk offsets in the uncompressed layout.
    let cfg = BuildConfig::with_p_codec(4, husgraph::codec::Codec::Raw);
    HusGraph::build_into(&el, &dir, &cfg).unwrap()
}

fn reopen(path: &Path, faults: Option<FaultSpec>, verify: bool) -> HusGraph {
    let dir = StorageDir::open(path).unwrap().with_retry(fast_retry()).with_faults(faults);
    let g = HusGraph::open(dir).unwrap();
    g.set_verify(verify);
    g
}

/// Serial config: one thread, no row parallelism, no readahead overlap.
fn serial(verify: bool) -> RunConfig {
    RunConfig {
        threads: 1,
        parallel_rows: false,
        readahead_blocks: 1,
        max_iterations: 5,
        verify_checksums: verify,
        ..Default::default()
    }
}

/// Parallel config: threaded pool, row-parallel ROP, deep COP readahead.
fn parallel(verify: bool) -> RunConfig {
    RunConfig {
        threads: 4,
        parallel_rows: true,
        readahead_blocks: 4,
        max_iterations: 5,
        verify_checksums: verify,
        ..Default::default()
    }
}

fn pagerank(g: &HusGraph, cfg: RunConfig) -> husgraph::storage::Result<(Vec<f32>, RunStats)> {
    Engine::new(g, &PageRank::new(g.meta().num_vertices), cfg).run()
}

fn bfs(g: &HusGraph, cfg: RunConfig) -> husgraph::storage::Result<(Vec<u32>, RunStats)> {
    let cfg = RunConfig { max_iterations: 1000, ..cfg };
    Engine::new(g, &Bfs::new(0), cfg).run()
}

/// Transient fault classes: every read may fail with an `EIO`, come up
/// short, or stall — the retry layer must absorb all of it and the
/// results must be bit-identical to a fault-free run.
fn transient_specs() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("eio", FaultSpec { seed: 7, eio: 0.05, ..Default::default() }),
        ("short-read", FaultSpec { seed: 11, short: 0.05, ..Default::default() }),
        ("latency-spike", FaultSpec { seed: 13, delay_p: 0.02, delay_ms: 1, ..Default::default() }),
        (
            "mixed",
            FaultSpec { seed: 17, eio: 0.02, short: 0.02, delay_p: 0.01, ..Default::default() },
        ),
    ]
}

#[test]
fn transient_faults_are_bit_identical_with_retries_and_no_giveups() {
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    drop(build_graph(&path));

    let clean = reopen(&path, None, false);
    let (pr_want, _) = pagerank(&clean, serial(false)).unwrap();
    let (bfs_want, _) = bfs(&clean, serial(false)).unwrap();
    drop(clean);

    for (name, spec) in transient_specs() {
        for (cfg_name, cfg) in [("serial", serial(false)), ("parallel", parallel(false))] {
            let g = reopen(&path, Some(spec), false);
            let (pr, pr_stats) = pagerank(&g, cfg.clone())
                .unwrap_or_else(|e| panic!("[{name}/{cfg_name}] pagerank failed: {e}"));
            assert_eq!(
                pr.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                pr_want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "[{name}/{cfg_name}] PageRank diverged under transient faults"
            );
            let (levels, bfs_stats) = bfs(&g, cfg.clone())
                .unwrap_or_else(|e| panic!("[{name}/{cfg_name}] bfs failed: {e}"));
            assert_eq!(levels, bfs_want, "[{name}/{cfg_name}] BFS diverged");

            let total = pr_stats.resilience;
            assert_eq!(total.giveups + bfs_stats.resilience.giveups, 0, "[{name}/{cfg_name}]");
            assert_eq!(total.checksum_failures, 0, "[{name}/{cfg_name}]");
            if spec.eio > 0.0 || spec.short > 0.0 {
                assert!(
                    total.retries > 0,
                    "[{name}/{cfg_name}] expected nonzero retries, stats: {}",
                    pr_stats.summary()
                );
                assert!(pr_stats.summary().contains("retries"), "{}", pr_stats.summary());
            }
        }
    }
}

/// A ~1% transient fault rate (the acceptance scenario): PageRank is
/// bit-identical, retried, and never gives up.
#[test]
fn one_percent_eio_rate_is_absorbed() {
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    drop(build_graph(&path));
    // At 1% per op most reads are clean; run enough iterations that the
    // deterministic draws are guaranteed to include some faults (the
    // page cache keeps the op count per iteration small).
    let cfg = RunConfig { max_iterations: 30, ..parallel(false) };
    let clean = reopen(&path, None, false);
    let (want, _) = pagerank(&clean, cfg.clone()).unwrap();
    drop(clean);
    let spec = FaultSpec { seed: 3, eio: 0.01, short: 0.005, ..Default::default() };
    let g = reopen(&path, Some(spec), false);
    let (got, stats) = pagerank(&g, cfg).unwrap();
    assert_eq!(
        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    assert!(stats.resilience.retries > 0, "{}", stats.summary());
    assert_eq!(stats.resilience.giveups, 0, "{}", stats.summary());
}

/// Permanent unavailability (every read errors): the retry budget is
/// exhausted, the giveup is counted, and a transient-class error — not
/// a hang, not a panic, not corruption — surfaces to the caller.
#[test]
fn permanent_eio_gives_up_with_typed_error() {
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    drop(build_graph(&path));

    let spec = FaultSpec { seed: 1, eio: 1.0, ..Default::default() };
    for cfg in [serial(false), parallel(false)] {
        let g = reopen(&path, Some(spec), false);
        let err = pagerank(&g, cfg).unwrap_err();
        assert!(err.is_transient(), "expected a transient-class error, got: {err}");
        assert!(!err.is_corruption());
        let res = g.dir().resilience().snapshot();
        assert!(res.giveups > 0, "giveups not counted: {res:?}");
        assert!(res.retries > 0);
    }
}

/// Injected bit flips are permanent (keyed by read offset) and
/// invisible without verification; with `verify_checksums` the run
/// fails with a corruption-class error instead of silently computing
/// on damaged bytes — under both serial and parallel configs.
#[test]
fn bit_flips_surface_as_corruption_when_verifying() {
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    drop(build_graph(&path));

    let spec = FaultSpec { seed: 23, flip: 1.0, ..Default::default() };
    for (cfg_name, cfg) in [("serial", serial(true)), ("parallel", parallel(true))] {
        let g = reopen(&path, Some(spec), true);
        // COP streams whole blocks, all of which verify.
        let cfg = RunConfig { mode: UpdateMode::ForceCop, ..cfg };
        let err = pagerank(&g, cfg).unwrap_err();
        assert!(err.is_corruption(), "[{cfg_name}] expected corruption, got: {err}");
        assert!(!err.is_transient(), "[{cfg_name}] corruption must never be retried");
        assert!(
            matches!(err, StorageError::ChecksumMismatch { .. }),
            "[{cfg_name}] expected ChecksumMismatch, got: {err}"
        );
        assert!(g.dir().resilience().snapshot().checksum_failures > 0, "[{cfg_name}]");
    }
}

/// On-disk (not injected) single-byte damage is reported with the
/// exact file, block coordinates and byte offset, and the engine run
/// surfaces it; with verification off the damage passes silently.
#[test]
fn on_disk_flip_names_the_exact_block_through_the_engine() {
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    let g = build_graph(&path);
    let p = g.p();
    // Damage the first non-empty in-block: COP streams in-shards.
    let (bi, bj) = (0..p)
        .flat_map(|i| (0..p).map(move |j| (i, j)))
        .find(|&(i, j)| g.meta().in_block(i, j).edge_count > 0)
        .expect("some non-empty in-block");
    let block = *g.meta().in_block(bi, bj);
    drop(g);

    let victim = path.join(GraphMeta::in_edges_file(bj));
    let mut bytes = std::fs::read(&victim).unwrap();
    // Flip a bit of the first record's source id, picked so the damaged
    // id stays inside source interval `bi` — the verification-off run
    // below must compute on the wrong bytes, not crash on an
    // out-of-interval index.
    let meta = reopen(&path, None, false).meta().clone();
    let (lo, hi) = (meta.interval_start(bi), meta.interval_start(bi + 1));
    let off = block.edge_offset as usize;
    let orig = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let flipped = (0..32)
        .map(|k| orig ^ (1 << k))
        .find(|&v| v != orig && v >= lo && v < hi)
        .expect("some in-interval bit flip");
    bytes[off..off + 4].copy_from_slice(&flipped.to_le_bytes());
    std::fs::write(&victim, bytes).unwrap();

    // Verification off: the damaged graph still runs (wrong bytes,
    // clean exit) — this is exactly the failure mode checksums close.
    let g = reopen(&path, None, false);
    pagerank(&g, RunConfig { mode: UpdateMode::ForceCop, ..serial(false) }).unwrap();
    drop(g);

    let g = reopen(&path, None, true);
    let err = pagerank(&g, RunConfig { mode: UpdateMode::ForceCop, ..serial(true) }).unwrap_err();
    match err {
        StorageError::ChecksumMismatch { path: p, block: b, offset, expected, actual } => {
            assert!(p.ends_with(GraphMeta::in_edges_file(bj)), "wrong file: {}", p.display());
            assert_eq!(b, (bi as u32, bj as u32), "wrong block");
            assert_eq!(offset, block.edge_offset, "wrong offset");
            assert_ne!(expected, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other}"),
    }
}

/// Damage that drives a vertex id out of its interval panics the COP
/// consumer mid-pipeline when verification is off (garbage in, panic
/// out) — but it must be a prompt panic, never a deadlock: the unwind
/// guard has to wake the parked readahead producers so the pipeline's
/// thread scope can join. With verification on, the same damage is a
/// clean typed corruption error instead.
#[test]
fn wild_corruption_panics_promptly_instead_of_hanging_the_pipeline() {
    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    let g = build_graph(&path);
    let p = g.p();
    let (bi, bj) = (0..p)
        .flat_map(|i| (0..p).map(move |j| (i, j)))
        .find(|&(i, j)| g.meta().in_block(i, j).edge_count > 0)
        .expect("some non-empty in-block");
    let block = *g.meta().in_block(bi, bj);
    drop(g);

    // Blast the first record's source id far outside every interval.
    let victim = path.join(GraphMeta::in_edges_file(bj));
    let mut bytes = std::fs::read(&victim).unwrap();
    let off = block.edge_offset as usize;
    bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&victim, bytes).unwrap();

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let g = reopen(&path, None, false);
        let cfg = RunConfig { mode: UpdateMode::ForceCop, ..parallel(false) };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pagerank(&g, cfg)));
        // Either a panic (index out of bounds in the pull) or an error
        // is acceptable; silently "succeeding" on wild garbage is not.
        done_tx.send(!matches!(result, Ok(Ok(_)))).unwrap();
        drop(g);

        // Verification on: same damage, clean typed error, no panic.
        let tmp_path = tmp.path().join("g");
        let g = reopen(&tmp_path, None, true);
        let cfg = RunConfig { mode: UpdateMode::ForceCop, ..parallel(true) };
        let err = pagerank(&g, cfg).unwrap_err();
        done_tx.send(err.is_corruption()).unwrap();
    });
    let timeout = Duration::from_secs(30);
    assert!(
        done_rx.recv_timeout(timeout).expect("COP pipeline hung on wild corruption"),
        "wild corruption must not produce a silent success"
    );
    assert!(
        done_rx.recv_timeout(timeout).expect("verified run hung on wild corruption"),
        "with verification on, wild corruption must be a corruption-class error"
    );
    handle.join().unwrap();
}

/// The builder's footers hold real CRC-32C values: recomputing any
/// block's CRC from the on-disk payload matches the stored footer, and
/// the implementation matches the published check vectors.
#[test]
fn footers_store_standard_crc32c() {
    assert_eq!(crc32c(b""), 0);
    assert_eq!(crc32c(b"123456789"), 0xE306_9283);

    let tmp = tempfile::tempdir().unwrap();
    let path = tmp.path().join("g");
    let g = build_graph(&path);
    let p = g.p();
    let meta = g.meta().clone();
    drop(g);

    for i in 0..p {
        let file = path.join(GraphMeta::out_edges_file(i));
        let bytes = std::fs::read(&file).unwrap();
        let footer = husgraph::storage::ShardFooter::read_from(&file, p).unwrap();
        assert_eq!(footer.crcs.len(), p);
        for j in 0..p {
            let b = meta.out_block(i, j);
            let lo = b.edge_offset as usize;
            let hi = lo + (b.edge_count * meta.edge_record_bytes()) as usize;
            assert_eq!(footer.crcs[j], crc32c(&bytes[lo..hi]), "out-block ({i}, {j})");
        }
    }
}
