//! The build `MANIFEST`: a generation-stamped, self-checksummed record
//! of every data file a completed build produced.
//!
//! A crash-consistent build (see DESIGN.md §10) stages its output in a
//! sibling `<dir>.tmp-<nonce>` directory, fsyncs the data files, writes
//! this manifest *last*, fsyncs it, and only then renames the staging
//! directory into place. Open-time validation therefore has a single
//! authoritative answer to "is this directory a complete build?": a
//! valid `MANIFEST` whose listed files all exist with their recorded
//! lengths. A missing or torn manifest means the build never finished
//! ([`crate::StorageError::IncompleteBuild`]); a listed file that
//! disagrees means post-build damage
//! ([`crate::StorageError::ManifestMismatch`]).
//!
//! The format is deliberately line-oriented plain text (no JSON parser
//! in this crate) and ends with a `#crc32c:` trailer over everything
//! above it, so a torn write is detected rather than misparsed:
//!
//! ```text
//! HUS-MANIFEST 1
//! generation 3
//! file out_0.edges 16400 crc32c:89ABCDEF
//! file degrees.bin 4000 -
//! #crc32c:0153CF10
//! ```
//!
//! The per-file `crc32c:` column stores the *trailing self-CRC of the
//! file's checksum footer* (its last four bytes) — a cheap fingerprint
//! of the whole footer, which in turn covers every block payload. Files
//! without a footer (the degree table) record `-`. `hus fsck` uses the
//! fingerprint to cross-check manifest and footers; open-time
//! validation only checks existence and length.

use crate::checksum::crc32c;
use crate::error::{Result, StorageError};
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// Manifest file name inside a graph directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Version of the manifest layout described in `docs/FORMAT.md`.
pub const MANIFEST_VERSION: u32 = 1;

/// First-line magic token of a manifest.
pub const MANIFEST_MAGIC: &str = "HUS-MANIFEST";

/// Prefix of the self-checksum trailer line used by the manifest (and
/// by the external builder's progress file).
pub const TRAILER_PREFIX: &str = "#crc32c:";

/// Append a `#crc32c:` trailer line covering `body` (which must end
/// with a newline).
pub fn seal_text(body: &str) -> String {
    debug_assert!(body.ends_with('\n'));
    format!("{body}{TRAILER_PREFIX}{:08X}\n", crc32c(body.as_bytes()))
}

/// Verify and strip the `#crc32c:` trailer line, returning the body.
/// Fails with [`StorageError::Corrupt`] on a missing trailer or a CRC
/// mismatch (i.e. a torn or tampered write).
pub fn unseal_text(text: &str) -> Result<&str> {
    let stripped = text.strip_suffix('\n').unwrap_or(text);
    let (body_end, trailer) = match stripped.rfind('\n') {
        Some(pos) => (pos + 1, &stripped[pos + 1..]),
        None => (0, stripped),
    };
    let stored = trailer
        .strip_prefix(TRAILER_PREFIX)
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| StorageError::Corrupt(format!("missing `{TRAILER_PREFIX}` trailer line")))?;
    let body = &text[..body_end];
    let actual = crc32c(body.as_bytes());
    if stored != actual {
        return Err(StorageError::Corrupt(format!(
            "trailer CRC mismatch: stored 0x{stored:08X}, computed 0x{actual:08X} \
             (torn or tampered write)"
        )));
    }
    Ok(body)
}

/// One data file recorded in a [`BuildManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the graph directory.
    pub name: String,
    /// Expected length in bytes (payload plus checksum footer).
    pub len: u64,
    /// Trailing self-CRC of the file's checksum footer (its last four
    /// bytes), or `None` for files without a footer.
    pub footer_crc: Option<u32>,
}

/// A parsed (or under-construction) build manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildManifest {
    /// Build generation: 1 for the first build of a directory, then
    /// one more than the manifest the build replaces. Lets operators
    /// (and `hus fsck`) tell rebuilds apart.
    pub generation: u64,
    /// Every data file of the build, in deterministic build order.
    pub files: Vec<ManifestEntry>,
    /// Live delta runs layered over the build, oldest first (`run`
    /// lines; see `docs/FORMAT.md` § "Delta runs"). Empty for a freshly
    /// built or freshly compacted directory; spills append one entry
    /// and rewrite the manifest under a bumped generation. The entry's
    /// `footer_crc` is the run file's trailing self-CRC.
    pub runs: Vec<ManifestEntry>,
}

impl BuildManifest {
    /// Empty manifest for a build of the given generation.
    pub fn new(generation: u64) -> Self {
        BuildManifest { generation, files: Vec::new(), runs: Vec::new() }
    }

    /// Record one data file.
    pub fn push(&mut self, name: impl Into<String>, len: u64, footer_crc: Option<u32>) {
        self.files.push(ManifestEntry { name: name.into(), len, footer_crc });
    }

    /// Record one live delta run (appended after every `file` line when
    /// encoded).
    pub fn push_run(&mut self, name: impl Into<String>, len: u64, trailer_crc: u32) {
        self.runs.push(ManifestEntry { name: name.into(), len, footer_crc: Some(trailer_crc) });
    }

    /// Look up a file's entry by name.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.files.iter().find(|e| e.name == name)
    }

    /// Look up a live run's entry by name.
    pub fn run_entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.runs.iter().find(|e| e.name == name)
    }

    /// Serialize to the on-disk text format (including the trailer).
    pub fn encode(&self) -> String {
        let mut body = format!("{MANIFEST_MAGIC} {MANIFEST_VERSION}\n");
        body.push_str(&format!("generation {}\n", self.generation));
        for (kw, entries) in [("file", &self.files), ("run", &self.runs)] {
            for e in entries {
                let crc = match e.footer_crc {
                    Some(c) => format!("crc32c:{c:08X}"),
                    None => "-".to_string(),
                };
                body.push_str(&format!("{kw} {} {} {crc}\n", e.name, e.len));
            }
        }
        seal_text(&body)
    }

    /// Parse the on-disk text format, verifying the trailer first.
    pub fn decode(text: &str) -> Result<Self> {
        let corrupt = |msg: String| StorageError::Corrupt(format!("MANIFEST: {msg}"));
        let body = unseal_text(text).map_err(|e| corrupt(e.to_string()))?;
        let mut lines = body.lines();
        let header = lines.next().unwrap_or_default();
        match header.strip_prefix(MANIFEST_MAGIC).map(str::trim) {
            Some(v) if v == MANIFEST_VERSION.to_string() => {}
            Some(v) => return Err(corrupt(format!("unsupported version {v:?}"))),
            None => return Err(corrupt(format!("bad magic line {header:?}"))),
        }
        let gen_line = lines.next().unwrap_or_default();
        let generation = gen_line
            .strip_prefix("generation ")
            .and_then(|g| g.parse().ok())
            .ok_or_else(|| corrupt(format!("bad generation line {gen_line:?}")))?;
        let mut files = Vec::new();
        let mut runs = Vec::new();
        for line in lines {
            let mut cols = line.split(' ');
            let (kw, name, len, crc) = (cols.next(), cols.next(), cols.next(), cols.next());
            let parsed = match (kw, name, len, crc, cols.next()) {
                (Some(kw @ ("file" | "run")), Some(name), Some(len), Some(crc), None) => {
                    len.parse().ok().and_then(|len| {
                        let footer_crc = match crc {
                            "-" => Some(None),
                            c => c
                                .strip_prefix("crc32c:")
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .map(Some),
                        }?;
                        Some((kw, ManifestEntry { name: name.to_string(), len, footer_crc }))
                    })
                }
                _ => None,
            };
            let (kw, entry) = parsed.ok_or_else(|| corrupt(format!("bad file line {line:?}")))?;
            if kw == "run" {
                runs.push(entry)
            } else {
                files.push(entry)
            }
        }
        Ok(BuildManifest { generation, files, runs })
    }

    /// Load the manifest of a graph directory. `Ok(None)` when the
    /// directory predates manifests (legacy build);
    /// [`StorageError::IncompleteBuild`] when a manifest exists but is
    /// torn or unparseable — the signature of a build that crashed
    /// mid-write.
    pub fn load_from(root: &Path) -> Result<Option<Self>> {
        let path = root.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StorageError::io_at(path, e)),
        };
        Self::decode(&text).map(Some).map_err(|e| StorageError::IncompleteBuild {
            path: root.to_path_buf(),
            detail: format!("{e} — likely an interrupted build"),
        })
    }

    /// Write the manifest into `root` and fsync it (the final staged
    /// write of a build, before the atomic rename).
    pub fn write_to(&self, root: &Path) -> Result<()> {
        let path = root.join(MANIFEST_FILE);
        std::fs::write(&path, self.encode()).map_err(|e| StorageError::io_at(&path, e))?;
        crate::durable::sync_file(&path)
    }

    /// Like [`BuildManifest::write_to`], but routed through `dir`'s
    /// write-fault injector when one is configured — the staged
    /// builder's manifest write draws from the same fault schedule as
    /// every other durable write under that root.
    pub fn write_with(&self, dir: &crate::StorageDir) -> Result<()> {
        dir.durable_write(MANIFEST_FILE, self.encode().as_bytes())
    }

    /// Check that every listed file — data files and live delta runs —
    /// exists in `root` with its recorded length. Cheap (metadata
    /// only) — deep per-block verification is `hus fsck`'s job.
    pub fn verify_files(&self, root: &Path) -> Result<()> {
        for e in self.files.iter().chain(&self.runs) {
            let path = root.join(&e.name);
            let md = match std::fs::metadata(&path) {
                Ok(md) => md,
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                    return Err(StorageError::IncompleteBuild {
                        path: root.to_path_buf(),
                        detail: format!("{} is missing (manifest expects {} bytes)", e.name, e.len),
                    });
                }
                Err(err) => return Err(StorageError::io_at(path, err)),
            };
            if md.len() != e.len {
                return Err(StorageError::ManifestMismatch {
                    path: root.to_path_buf(),
                    file: e.name.clone(),
                    detail: format!("expected {} bytes, found {}", e.len, md.len()),
                });
            }
        }
        Ok(())
    }

    /// Build a manifest describing `files` as they currently exist
    /// under `root`: lengths from the filesystem and, for entries
    /// flagged `has_footer`, the footer's trailing self-CRC (the
    /// file's last four bytes).
    pub fn capture<'a>(
        root: &Path,
        generation: u64,
        files: impl IntoIterator<Item = (&'a str, bool)>,
    ) -> Result<Self> {
        let mut m = Self::new(generation);
        for (name, has_footer) in files {
            let path = root.join(name);
            let md = std::fs::metadata(&path).map_err(|e| StorageError::io_at(&path, e))?;
            let footer_crc =
                if has_footer { Some(read_trailing_crc(&path, md.len())?) } else { None };
            m.push(name, md.len(), footer_crc);
        }
        Ok(m)
    }

    /// The generation number the next build of `root` should stamp:
    /// one past the current manifest's, or 1 for a fresh, legacy or
    /// torn-manifest directory.
    pub fn next_generation(root: &Path) -> u64 {
        match Self::load_from(root) {
            Ok(Some(m)) => m.generation + 1,
            _ => 1,
        }
    }
}

/// Read the last four bytes of a file as a little-endian CRC value.
fn read_trailing_crc(path: &Path, len: u64) -> Result<u32> {
    let at = |e| StorageError::io_at(path, e);
    if len < 4 {
        return Err(StorageError::Corrupt(format!(
            "{}: too short ({len} bytes) to carry a checksum footer",
            path.display()
        )));
    }
    let mut f = std::fs::File::open(path).map_err(at)?;
    f.seek(SeekFrom::End(-4)).map_err(at)?;
    let mut buf = [0u8; 4];
    f.read_exact(&mut buf).map_err(at)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BuildManifest {
        let mut m = BuildManifest::new(3);
        m.push("out_0.edges", 16400, Some(0x89AB_CDEF));
        m.push("out_0.index", 128, Some(7));
        m.push("degrees.bin", 4000, None);
        m
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let text = m.encode();
        assert!(text.starts_with("HUS-MANIFEST 1\n"), "{text}");
        assert!(text.contains("generation 3\n"));
        assert!(text.contains("file degrees.bin 4000 -\n"));
        assert_eq!(BuildManifest::decode(&text).unwrap(), m);
    }

    #[test]
    fn run_lines_roundtrip_after_the_file_lines() {
        let mut m = sample();
        m.push_run("delta_000001.run", 96, 0x0153_CF10);
        m.push_run("delta_000002.run", 64, 7);
        let text = m.encode();
        assert!(text.contains("run delta_000001.run 96 crc32c:0153CF10\n"), "{text}");
        let files_at = text.find("file ").unwrap();
        let runs_at = text.find("run ").unwrap();
        assert!(files_at < runs_at, "run lines follow file lines");
        let back = BuildManifest::decode(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.run_entry("delta_000002.run").unwrap().len, 64);
        assert!(back.run_entry("delta_000009.run").is_none());
    }

    #[test]
    fn verify_files_checks_run_entries_too() {
        let tmp = tempfile::tempdir().unwrap();
        std::fs::write(tmp.path().join("a.bin"), [0u8; 10]).unwrap();
        std::fs::write(tmp.path().join("delta_000001.run"), [0u8; 36]).unwrap();
        let mut m = BuildManifest::new(1);
        m.push("a.bin", 10, None);
        m.push_run("delta_000001.run", 36, 9);
        m.verify_files(tmp.path()).unwrap();
        m.push_run("delta_000002.run", 36, 9);
        let err = m.verify_files(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("delta_000002.run"), "{err}");
    }

    #[test]
    fn torn_manifest_is_detected() {
        let text = sample().encode();
        // A torn write: the tail (including the trailer) never landed.
        let torn = &text[..text.len() / 2];
        assert!(BuildManifest::decode(torn).is_err());
        // A flipped byte inside the body.
        let mut bytes = text.clone().into_bytes();
        bytes[20] ^= 0x01;
        let err = BuildManifest::decode(std::str::from_utf8(&bytes).unwrap()).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn seal_unseal_roundtrip_and_detects_edits() {
        let sealed = seal_text("hello\nworld\n");
        assert_eq!(unseal_text(&sealed).unwrap(), "hello\nworld\n");
        let tampered = sealed.replace("world", "w0rld");
        assert!(unseal_text(&tampered).is_err());
        assert!(unseal_text("no trailer at all").is_err());
    }

    #[test]
    fn load_from_distinguishes_absent_and_torn() {
        let tmp = tempfile::tempdir().unwrap();
        assert!(BuildManifest::load_from(tmp.path()).unwrap().is_none());
        std::fs::write(tmp.path().join(MANIFEST_FILE), "HUS-MANIFEST 1\ngener").unwrap();
        let err = BuildManifest::load_from(tmp.path()).unwrap_err();
        assert!(
            matches!(err, StorageError::IncompleteBuild { .. }),
            "torn manifest must read as an incomplete build: {err}"
        );
        assert_eq!(BuildManifest::next_generation(tmp.path()), 1);
    }

    #[test]
    fn verify_files_names_the_offender() {
        let tmp = tempfile::tempdir().unwrap();
        std::fs::write(tmp.path().join("a.bin"), [0u8; 10]).unwrap();
        std::fs::write(tmp.path().join("b.bin"), [0u8; 4]).unwrap();
        let mut m = BuildManifest::new(1);
        m.push("a.bin", 10, None);
        m.push("b.bin", 4, None);
        m.verify_files(tmp.path()).unwrap();

        m.push("gone.bin", 9, None);
        let err = m.verify_files(tmp.path()).unwrap_err();
        assert!(matches!(&err, StorageError::IncompleteBuild { .. }), "{err}");
        assert!(err.to_string().contains("gone.bin"), "{err}");

        let mut m = BuildManifest::new(1);
        m.push("a.bin", 11, None);
        let err = m.verify_files(tmp.path()).unwrap_err();
        assert!(
            matches!(&err, StorageError::ManifestMismatch { file, .. } if file == "a.bin"),
            "{err}"
        );
    }

    #[test]
    fn capture_reads_lengths_and_footer_tails() {
        let tmp = tempfile::tempdir().unwrap();
        let mut payload = vec![1u8, 2, 3, 4];
        payload.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        std::fs::write(tmp.path().join("x.edges"), &payload).unwrap();
        std::fs::write(tmp.path().join("degrees.bin"), [0u8; 8]).unwrap();
        let m = BuildManifest::capture(tmp.path(), 2, [("x.edges", true), ("degrees.bin", false)])
            .unwrap();
        assert_eq!(m.generation, 2);
        assert_eq!(m.entry("x.edges").unwrap().len, 8);
        assert_eq!(m.entry("x.edges").unwrap().footer_crc, Some(0xDEAD_BEEF));
        assert_eq!(m.entry("degrees.bin").unwrap().footer_crc, None);
        // Round-trips through disk and bumps the next generation.
        m.write_to(tmp.path()).unwrap();
        assert_eq!(BuildManifest::load_from(tmp.path()).unwrap().unwrap(), m);
        assert_eq!(BuildManifest::next_generation(tmp.path()), 3);
    }
}
