//! Deterministic fault injection for exercising failure paths.
//!
//! [`FaultInjectBackend`] wraps any [`ReadBackend`] and injects faults
//! according to a [`FaultSpec`], normally supplied through the `HUS_FAULT`
//! environment variable (captured when a [`crate::StorageDir`] is created)
//! or per-directory via [`crate::StorageDir::with_faults`]. Four fault
//! classes are modeled:
//!
//! * **Transient `EIO`** (`eio=p`) — the read fails with the raw OS error
//!   `EIO` before touching the device; a retry sees a fresh draw.
//! * **Short read** (`short=p`) — the read fails with `UnexpectedEof`, the
//!   error a positioned `read_exact` surfaces when a device returns fewer
//!   bytes than asked.
//! * **Bit flip** (`flip=p`) — one bit of the returned buffer is inverted.
//!   Flips are keyed by the *read offset*, not the attempt number, so the
//!   same read always sees the same damage: a flip models **permanent**
//!   on-media corruption that only checksum verification can catch.
//! * **Latency spike** (`delay_p=p`, `delay_ms=n`) — the read sleeps
//!   `n` ms before being served, exercising timeout-adjacent paths.
//!
//! The **write side** mirrors this through [`FaultInjectWriter`], which
//! sits under every durable write (delta-run spills, `MANIFEST`
//! rewrites, checkpoint slots, the staged builder's shard streams — see
//! DESIGN.md §9). Four write-fault kinds share the same grammar:
//!
//! * **`enospc=p`** — the write fails with the raw OS error `ENOSPC`
//!   before a single byte lands, modeling a full disk.
//! * **`shortw=p`** — a deterministic prefix of the payload is written,
//!   then the write fails with `WriteZero`, modeling a device that
//!   accepted fewer bytes than asked.
//! * **`torn=p`** — a deterministic prefix is written and the failure
//!   only surfaces at fsync time (raw `EIO`), modeling a tear that a
//!   crash would have produced mid-file.
//! * **`fsync_fail=p`** — the full payload is written but the fsync
//!   fails (raw `EIO`): the bytes' durability is unknown, so callers
//!   must treat the write as failed.
//!
//! Every write-path fire is counted in `resilience.write_faults`. All
//! write faults strike *before* the commit rename of the artifact being
//! written, so damage is always confined to `*.tmp`-named files the
//! recovery path already knows to ignore (rollback-safe tmp naming,
//! `docs/FORMAT.md`).
//!
//! All draws derive from a user-supplied `seed` through a splitmix64 hash,
//! so a fixed seed and a fixed read sequence reproduce the same fault
//! pattern. Transient draws are keyed by a per-backend operation counter;
//! under multi-threaded runs the interleaving (and hence which operation
//! draws a fault) can vary, but flips stay bound to their offsets. Write
//! draws use an independent per-directory counter shared across
//! subdirectories, so read traffic never perturbs the write-fault
//! schedule.
//!
//! ```
//! use hus_storage::fault::FaultSpec;
//! let spec = FaultSpec::parse("seed=42,eio=0.01,delay_p=0.005,delay_ms=2").unwrap();
//! assert_eq!(spec.seed, 42);
//! assert!(spec.eio > 0.0 && spec.flip == 0.0);
//! ```

use crate::error::{Result, StorageError};
use crate::retry::ResilienceTracker;
use crate::tracker::Access;
use crate::{durable, RangeRead, ReadBackend};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable holding the fault specification.
pub const FAULT_ENV: &str = "HUS_FAULT";

/// Parsed fault-injection specification (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for all deterministic draws.
    pub seed: u64,
    /// Probability of a transient `EIO` per read operation.
    pub eio: f64,
    /// Probability of a short read (`UnexpectedEof`) per read operation.
    pub short: f64,
    /// Probability of a (permanent, offset-keyed) bit flip per range read.
    pub flip: f64,
    /// Probability of a latency spike per read operation.
    pub delay_p: f64,
    /// Duration of a latency spike in milliseconds.
    pub delay_ms: u64,
    /// Probability of an `ENOSPC` failure per write operation (nothing
    /// is written).
    pub enospc: f64,
    /// Probability of a short write per write operation (a prefix is
    /// written, then `WriteZero`).
    pub shortw: f64,
    /// Probability of a torn write per write operation (a prefix is
    /// written; the failure surfaces at fsync as raw `EIO`).
    pub torn: f64,
    /// Probability of an fsync failure per write operation (the full
    /// payload is written but durability is unknown).
    pub fsync_fail: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            eio: 0.0,
            short: 0.0,
            flip: 0.0,
            delay_p: 0.0,
            delay_ms: 1,
            enospc: 0.0,
            shortw: 0.0,
            torn: 0.0,
            fsync_fail: 0.0,
        }
    }
}

impl FaultSpec {
    /// Parse a comma-separated `key=value` spec, e.g.
    /// `seed=42,eio=0.01,short=0.005,flip=0.001,delay_p=0.01,delay_ms=5`.
    /// Unknown keys and malformed values are rejected.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("missing '=' in `{part}`"))?;
            let prob = |v: &str| -> std::result::Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}` for {key}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} for {key} outside [0, 1]"));
                }
                Ok(p)
            };
            match key.trim() {
                "seed" => {
                    spec.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "eio" => spec.eio = prob(value)?,
                "short" => spec.short = prob(value)?,
                "flip" => spec.flip = prob(value)?,
                "delay_p" => spec.delay_p = prob(value)?,
                "delay_ms" => {
                    spec.delay_ms = value.parse().map_err(|_| format!("bad delay_ms `{value}`"))?;
                }
                "enospc" => spec.enospc = prob(value)?,
                "shortw" => spec.shortw = prob(value)?,
                "torn" => spec.torn = prob(value)?,
                "fsync_fail" => spec.fsync_fail = prob(value)?,
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Read and parse [`FAULT_ENV`]. Returns `None` when unset or when the
    /// spec injects nothing; an unparsable spec is reported to stderr once
    /// and treated as absent (never silently corrupts a run).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(FAULT_ENV).ok()?;
        match Self::parse(&raw) {
            Ok(spec) if spec.injects_faults() => Some(spec),
            Ok(_) => None,
            Err(e) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("[hus-storage] ignoring invalid {FAULT_ENV}: {e}"));
                None
            }
        }
    }

    /// Whether any fault class has nonzero probability.
    pub fn injects_faults(&self) -> bool {
        self.injects_read_faults() || self.injects_write_faults()
    }

    /// Whether any *read*-side class (eio, short, flip, delay) fires.
    pub fn injects_read_faults(&self) -> bool {
        self.eio > 0.0 || self.short > 0.0 || self.flip > 0.0 || self.delay_p > 0.0
    }

    /// Whether any *write*-side class (enospc, shortw, torn,
    /// fsync_fail) fires.
    pub fn injects_write_faults(&self) -> bool {
        self.enospc > 0.0 || self.shortw > 0.0 || self.torn > 0.0 || self.fsync_fail > 0.0
    }
}

/// splitmix64 finalizer — a cheap, well-mixed hash for fault draws.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`ReadBackend`] wrapper injecting deterministic faults per a
/// [`FaultSpec`]. Wraps *below* the retry layer, so transient injected
/// faults exercise the real retry path end to end.
pub struct FaultInjectBackend {
    inner: Arc<dyn ReadBackend>,
    spec: FaultSpec,
    ops: AtomicU64,
}

impl FaultInjectBackend {
    /// Wrap `inner`, injecting faults per `spec`.
    pub fn new(inner: Arc<dyn ReadBackend>, spec: FaultSpec) -> Self {
        FaultInjectBackend { inner, spec, ops: AtomicU64::new(0) }
    }

    /// Draw the transient faults (delay, EIO, short read) for one
    /// operation. Returns an error if the operation should fail.
    fn transient_draw(&self) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let h = mix(self.spec.seed ^ op);
        if self.spec.delay_p > 0.0 && unit(mix(h ^ 0xD31A)) < self.spec.delay_p {
            std::thread::sleep(std::time::Duration::from_millis(self.spec.delay_ms));
        }
        if self.spec.eio > 0.0 && unit(mix(h ^ 0xE10)) < self.spec.eio {
            return Err(StorageError::Io {
                path: None,
                source: std::io::Error::from_raw_os_error(5), // EIO
            });
        }
        if self.spec.short > 0.0 && unit(mix(h ^ 0x5807)) < self.spec.short {
            return Err(StorageError::Io {
                path: None,
                source: std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "injected short read",
                ),
            });
        }
        Ok(())
    }

    /// Apply the (offset-keyed, hence permanent) bit-flip draw to a
    /// successfully read buffer.
    fn maybe_flip(&self, offset: u64, buf: &mut [u8]) {
        if self.spec.flip <= 0.0 || buf.is_empty() {
            return;
        }
        let h = mix(self.spec.seed ^ 0xF11F ^ offset.rotate_left(17));
        if unit(h) < self.spec.flip {
            let bit = (mix(h) % (buf.len() as u64 * 8)) as usize;
            buf[bit / 8] ^= 1 << (bit % 8);
        }
    }
}

/// One drawn write fault (see the [module docs](self) for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Fail with raw `ENOSPC` before a single byte lands.
    Enospc,
    /// Write a `keep`-byte prefix, then fail with `WriteZero`.
    ShortWrite {
        /// Bytes that reach the file before the failure.
        keep: usize,
    },
    /// Write a `keep`-byte prefix; the failure surfaces at fsync.
    Torn {
        /// Bytes that reach the file before the tear.
        keep: usize,
    },
    /// Write the full payload; the fsync itself fails.
    FsyncFail,
}

/// Deterministic write-side fault injector — the durable-write
/// counterpart of [`FaultInjectBackend`].
///
/// One injector is shared (via `Arc`) by a [`crate::StorageDir`] and all
/// its subdirectories, so the per-operation draw counter spans every
/// write site under one root: delta-run spills, `MANIFEST` rewrites,
/// checkpoint slots, and the staged builder's shard streams. Every fire
/// is recorded as `resilience.write_faults` on the shared
/// [`ResilienceTracker`].
pub struct FaultInjectWriter {
    spec: FaultSpec,
    ops: AtomicU64,
    resilience: Arc<ResilienceTracker>,
}

impl FaultInjectWriter {
    /// Build an injector for `spec`, recording fires on `resilience`.
    pub fn new(spec: FaultSpec, resilience: Arc<ResilienceTracker>) -> Self {
        FaultInjectWriter { spec, ops: AtomicU64::new(0), resilience }
    }

    /// The spec this injector draws from.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Draw the fault (if any) for one write operation of `len` payload
    /// bytes, recording a fire in `resilience.write_faults`. Kinds are
    /// checked in fixed order (enospc, shortw, torn, fsync_fail) with
    /// independent salted draws, mirroring the read side.
    pub fn draw(&self, len: usize) -> Option<WriteFault> {
        self.draw_kinds(len, true, true)
    }

    /// Draw only the kinds that fire on a plain (not-yet-synced) stream
    /// write: enospc, shortw, torn. Used by the staged builder's
    /// streaming writers, where the fsync-failure kind is drawn
    /// separately at sync time (see [`Self::draw_fsync`]).
    pub fn draw_stream(&self, len: usize) -> Option<WriteFault> {
        self.draw_kinds(len, true, false)
    }

    /// Draw only the fsync-failure kind for one sync operation,
    /// recording a fire. Returns `true` when the fsync should fail.
    pub fn draw_fsync(&self) -> bool {
        matches!(self.draw_kinds(0, false, true), Some(WriteFault::FsyncFail))
    }

    fn draw_kinds(&self, len: usize, stream: bool, fsync: bool) -> Option<WriteFault> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let h = mix(self.spec.seed ^ 0x77F1 ^ op);
        let keep = |salt: u64| -> usize {
            if len == 0 {
                0
            } else {
                (mix(h ^ salt) % len as u64) as usize
            }
        };
        let fault = if stream && self.spec.enospc > 0.0 && unit(mix(h ^ 0xE205)) < self.spec.enospc
        {
            WriteFault::Enospc
        } else if stream && self.spec.shortw > 0.0 && unit(mix(h ^ 0x5808)) < self.spec.shortw {
            WriteFault::ShortWrite { keep: keep(0x1E41) }
        } else if stream && self.spec.torn > 0.0 && unit(mix(h ^ 0x7027)) < self.spec.torn {
            WriteFault::Torn { keep: keep(0x1E42) }
        } else if fsync
            && self.spec.fsync_fail > 0.0
            && unit(mix(h ^ 0xF5F0)) < self.spec.fsync_fail
        {
            WriteFault::FsyncFail
        } else {
            return None;
        };
        self.resilience.record_write_fault();
        Some(fault)
    }

    /// The typed error a drawn `fault` surfaces at `path`. `Enospc` is
    /// the raw OS error 28 so [`StorageError::is_no_space`] classifies
    /// it exactly like a real full disk.
    pub fn error_of(fault: WriteFault, path: &Path) -> StorageError {
        let source = match fault {
            WriteFault::Enospc => std::io::Error::from_raw_os_error(28), // ENOSPC
            WriteFault::ShortWrite { .. } => {
                std::io::Error::new(std::io::ErrorKind::WriteZero, "injected short write")
            }
            WriteFault::Torn { .. } => std::io::Error::other("injected torn write (EIO at fsync)"),
            WriteFault::FsyncFail => std::io::Error::other("injected fsync failure (EIO)"),
        };
        StorageError::Io { path: Some(path.to_path_buf()), source }
    }

    /// Fault-aware durable whole-file write: write `bytes` to `path`
    /// and fsync, or fail per the drawn fault leaving exactly the
    /// damage that kind models (nothing / a prefix / the full payload
    /// without durability).
    pub fn durable_write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.draw(bytes.len()) {
            None => {
                std::fs::write(path, bytes).map_err(|e| StorageError::io_at(path, e))?;
                durable::sync_file(path)
            }
            Some(fault) => {
                match fault {
                    WriteFault::Enospc => {}
                    WriteFault::ShortWrite { keep } | WriteFault::Torn { keep } => {
                        let _ = std::fs::write(path, &bytes[..keep]);
                    }
                    WriteFault::FsyncFail => {
                        let _ = std::fs::write(path, bytes);
                    }
                }
                Err(Self::error_of(fault, path))
            }
        }
    }
}

impl ReadBackend for FaultInjectBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        self.transient_draw()?;
        self.inner.read_at(offset, buf, access)?;
        self.maybe_flip(offset, buf);
        Ok(())
    }

    fn read_ranges(&self, ranges: &mut [RangeRead<'_>], access: Access) -> Result<()> {
        // One transient draw per batched operation (it is one device
        // request), then per-range flip draws keyed by each range offset.
        self.transient_draw()?;
        self.inner.read_ranges(ranges, access)?;
        for r in ranges {
            self.maybe_flip(r.offset, r.buf);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileBackend;
    use crate::tracker::IoTracker;
    use std::io::Write;

    fn backend(content: &[u8]) -> (tempfile::TempDir, Arc<dyn ReadBackend>) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("d.bin");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content).unwrap();
        drop(f);
        let b = FileBackend::open(&path, Arc::new(IoTracker::new())).unwrap();
        (dir, Arc::new(b))
    }

    #[test]
    fn parse_full_spec_and_rejects_garbage() {
        let s = FaultSpec::parse("seed=7, eio=0.5, short=0.25, flip=1, delay_p=0.1, delay_ms=3")
            .unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.eio, 0.5);
        assert_eq!(s.short, 0.25);
        assert_eq!(s.flip, 1.0);
        assert_eq!(s.delay_ms, 3);
        assert!(s.injects_faults());
        assert!(FaultSpec::parse("eio=2").is_err(), "probability > 1");
        assert!(FaultSpec::parse("bogus=1").is_err(), "unknown key");
        assert!(FaultSpec::parse("eio").is_err(), "missing value");
        assert!(!FaultSpec::parse("seed=9").unwrap().injects_faults());
    }

    #[test]
    fn eio_faults_are_transient_and_seed_deterministic() {
        let (_d, inner) = backend(&[7u8; 64]);
        let spec = FaultSpec { seed: 1, eio: 0.5, ..Default::default() };
        let f = FaultInjectBackend::new(Arc::clone(&inner), spec);
        let mut outcomes = Vec::new();
        let mut buf = [0u8; 8];
        for _ in 0..64 {
            outcomes.push(f.read_at(0, &mut buf, Access::Random).is_ok());
        }
        assert!(outcomes.iter().any(|&ok| ok), "some reads succeed");
        assert!(outcomes.iter().any(|&ok| !ok), "some reads fail at p=0.5");
        // Same seed, same op sequence → identical outcome pattern.
        let f2 = FaultInjectBackend::new(inner, spec);
        let replay: Vec<bool> =
            (0..64).map(|_| f2.read_at(0, &mut buf, Access::Random).is_ok()).collect();
        assert_eq!(outcomes, replay);
        // Every injected failure is classified transient.
        let f3 = FaultInjectBackend::new(f2.inner.clone(), FaultSpec { eio: 1.0, ..spec });
        let err = f3.read_at(0, &mut buf, Access::Random).unwrap_err();
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn short_reads_surface_as_unexpected_eof() {
        let (_d, inner) = backend(&[7u8; 64]);
        let spec = FaultSpec { seed: 3, short: 1.0, ..Default::default() };
        let f = FaultInjectBackend::new(inner, spec);
        let mut buf = [0u8; 8];
        let err = f.read_at(0, &mut buf, Access::Sequential).unwrap_err();
        assert!(err.is_transient());
        assert!(err.to_string().contains("short read"), "{err}");
    }

    #[test]
    fn bit_flips_are_permanent_per_offset() {
        let (_d, inner) = backend(&[0u8; 256]);
        let spec = FaultSpec { seed: 5, flip: 1.0, ..Default::default() };
        let f = FaultInjectBackend::new(inner, spec);
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        f.read_at(64, &mut a, Access::Random).unwrap();
        f.read_at(64, &mut b, Access::Random).unwrap();
        assert_ne!(a, [0u8; 32], "exactly one bit flipped");
        assert_eq!(a, b, "same offset → same damage on every attempt");
        assert_eq!(a.iter().map(|x| x.count_ones()).sum::<u32>(), 1);
        let mut c = [0u8; 32];
        f.read_at(128, &mut c, Access::Random).unwrap();
        assert_ne!(a, c, "different offsets see independent flips");
    }

    #[test]
    fn parse_write_spec_and_classification() {
        let s = FaultSpec::parse("seed=9,enospc=0.5,shortw=0.25,torn=0.1,fsync_fail=0.05").unwrap();
        assert_eq!(s.enospc, 0.5);
        assert_eq!(s.shortw, 0.25);
        assert_eq!(s.torn, 0.1);
        assert_eq!(s.fsync_fail, 0.05);
        assert!(s.injects_faults(), "write-only spec still injects");
        assert!(s.injects_write_faults());
        assert!(!s.injects_read_faults());
        assert!(FaultSpec::parse("enospc=1.5").is_err(), "probability > 1");
    }

    #[test]
    fn enospc_writes_nothing_and_classifies_as_no_space() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("out.bin");
        let resilience = Arc::new(ResilienceTracker::new());
        let spec = FaultSpec { seed: 2, enospc: 1.0, ..Default::default() };
        let w = FaultInjectWriter::new(spec, Arc::clone(&resilience));
        let err = w.durable_write(&path, &[1u8; 128]).unwrap_err();
        assert!(err.is_no_space(), "{err}");
        assert!(!path.exists(), "nothing may land on ENOSPC");
        assert_eq!(resilience.snapshot().write_faults, 1);
    }

    #[test]
    fn short_and_torn_writes_leave_a_deterministic_prefix() {
        let dir = tempfile::tempdir().unwrap();
        let resilience = Arc::new(ResilienceTracker::new());
        let payload = [7u8; 256];
        for (spec, name) in [
            (FaultSpec { seed: 4, shortw: 1.0, ..Default::default() }, "shortw.bin"),
            (FaultSpec { seed: 4, torn: 1.0, ..Default::default() }, "torn.bin"),
        ] {
            let path = dir.path().join(name);
            let w = FaultInjectWriter::new(spec, Arc::clone(&resilience));
            let err = w.durable_write(&path, &payload).unwrap_err();
            assert!(!err.is_no_space(), "{err}");
            let on_disk = std::fs::read(&path).unwrap();
            assert!(on_disk.len() < payload.len(), "{name}: prefix only");
            // Same seed, same op index → identical prefix length.
            let path2 = dir.path().join(format!("{name}.replay"));
            let w2 = FaultInjectWriter::new(spec, Arc::clone(&resilience));
            let _ = w2.durable_write(&path2, &payload);
            assert_eq!(std::fs::read(&path2).unwrap().len(), on_disk.len());
        }
        assert_eq!(resilience.snapshot().write_faults, 4);
    }

    #[test]
    fn fsync_fail_writes_everything_but_still_errors() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("f.bin");
        let resilience = Arc::new(ResilienceTracker::new());
        let spec = FaultSpec { seed: 6, fsync_fail: 1.0, ..Default::default() };
        let w = FaultInjectWriter::new(spec, resilience);
        let err = w.durable_write(&path, &[9u8; 64]).unwrap_err();
        assert!(err.to_string().contains("fsync"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), [9u8; 64]);
    }

    #[test]
    fn write_draws_are_seed_deterministic_and_eventually_pass() {
        let resilience = Arc::new(ResilienceTracker::new());
        let spec = FaultSpec { seed: 8, enospc: 0.5, ..Default::default() };
        let w = FaultInjectWriter::new(spec, Arc::clone(&resilience));
        let pattern: Vec<bool> = (0..64).map(|_| w.draw(100).is_some()).collect();
        assert!(pattern.iter().any(|&f| f), "some ops fault at p=0.5");
        assert!(pattern.iter().any(|&f| !f), "some ops pass at p=0.5");
        let w2 = FaultInjectWriter::new(spec, resilience);
        let replay: Vec<bool> = (0..64).map(|_| w2.draw(100).is_some()).collect();
        assert_eq!(pattern, replay, "same seed → same write-fault schedule");
    }

    #[test]
    fn read_ranges_one_draw_per_batch_and_flips_by_range() {
        let (_d, inner) = backend(&(0..=255u8).collect::<Vec<_>>());
        let spec = FaultSpec { seed: 11, flip: 1.0, ..Default::default() };
        let f = FaultInjectBackend::new(inner, spec);
        let (mut x, mut y) = ([0u8; 4], [0u8; 4]);
        let mut ranges =
            [RangeRead { offset: 0, buf: &mut x }, RangeRead { offset: 16, buf: &mut y }];
        f.read_ranges(&mut ranges, Access::Batched).unwrap();
        assert_ne!(x, [0, 1, 2, 3], "first range drew its own flip");
        assert_ne!(y, [16, 17, 18, 19], "second range drew its own flip");
    }
}
