//! Deterministic fault injection for exercising failure paths.
//!
//! [`FaultInjectBackend`] wraps any [`ReadBackend`] and injects faults
//! according to a [`FaultSpec`], normally supplied through the `HUS_FAULT`
//! environment variable (captured when a [`crate::StorageDir`] is created)
//! or per-directory via [`crate::StorageDir::with_faults`]. Four fault
//! classes are modeled:
//!
//! * **Transient `EIO`** (`eio=p`) — the read fails with the raw OS error
//!   `EIO` before touching the device; a retry sees a fresh draw.
//! * **Short read** (`short=p`) — the read fails with `UnexpectedEof`, the
//!   error a positioned `read_exact` surfaces when a device returns fewer
//!   bytes than asked.
//! * **Bit flip** (`flip=p`) — one bit of the returned buffer is inverted.
//!   Flips are keyed by the *read offset*, not the attempt number, so the
//!   same read always sees the same damage: a flip models **permanent**
//!   on-media corruption that only checksum verification can catch.
//! * **Latency spike** (`delay_p=p`, `delay_ms=n`) — the read sleeps
//!   `n` ms before being served, exercising timeout-adjacent paths.
//!
//! All draws derive from a user-supplied `seed` through a splitmix64 hash,
//! so a fixed seed and a fixed read sequence reproduce the same fault
//! pattern. Transient draws are keyed by a per-backend operation counter;
//! under multi-threaded runs the interleaving (and hence which operation
//! draws a fault) can vary, but flips stay bound to their offsets.
//!
//! ```
//! use hus_storage::fault::FaultSpec;
//! let spec = FaultSpec::parse("seed=42,eio=0.01,delay_p=0.005,delay_ms=2").unwrap();
//! assert_eq!(spec.seed, 42);
//! assert!(spec.eio > 0.0 && spec.flip == 0.0);
//! ```

use crate::error::{Result, StorageError};
use crate::tracker::Access;
use crate::{RangeRead, ReadBackend};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable holding the fault specification.
pub const FAULT_ENV: &str = "HUS_FAULT";

/// Parsed fault-injection specification (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for all deterministic draws.
    pub seed: u64,
    /// Probability of a transient `EIO` per read operation.
    pub eio: f64,
    /// Probability of a short read (`UnexpectedEof`) per read operation.
    pub short: f64,
    /// Probability of a (permanent, offset-keyed) bit flip per range read.
    pub flip: f64,
    /// Probability of a latency spike per read operation.
    pub delay_p: f64,
    /// Duration of a latency spike in milliseconds.
    pub delay_ms: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec { seed: 0, eio: 0.0, short: 0.0, flip: 0.0, delay_p: 0.0, delay_ms: 1 }
    }
}

impl FaultSpec {
    /// Parse a comma-separated `key=value` spec, e.g.
    /// `seed=42,eio=0.01,short=0.005,flip=0.001,delay_p=0.01,delay_ms=5`.
    /// Unknown keys and malformed values are rejected.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("missing '=' in `{part}`"))?;
            let prob = |v: &str| -> std::result::Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}` for {key}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} for {key} outside [0, 1]"));
                }
                Ok(p)
            };
            match key.trim() {
                "seed" => {
                    spec.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "eio" => spec.eio = prob(value)?,
                "short" => spec.short = prob(value)?,
                "flip" => spec.flip = prob(value)?,
                "delay_p" => spec.delay_p = prob(value)?,
                "delay_ms" => {
                    spec.delay_ms = value.parse().map_err(|_| format!("bad delay_ms `{value}`"))?;
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Read and parse [`FAULT_ENV`]. Returns `None` when unset or when the
    /// spec injects nothing; an unparsable spec is reported to stderr once
    /// and treated as absent (never silently corrupts a run).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var(FAULT_ENV).ok()?;
        match Self::parse(&raw) {
            Ok(spec) if spec.injects_faults() => Some(spec),
            Ok(_) => None,
            Err(e) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| eprintln!("[hus-storage] ignoring invalid {FAULT_ENV}: {e}"));
                None
            }
        }
    }

    /// Whether any fault class has nonzero probability.
    pub fn injects_faults(&self) -> bool {
        self.eio > 0.0 || self.short > 0.0 || self.flip > 0.0 || self.delay_p > 0.0
    }
}

/// splitmix64 finalizer — a cheap, well-mixed hash for fault draws.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`ReadBackend`] wrapper injecting deterministic faults per a
/// [`FaultSpec`]. Wraps *below* the retry layer, so transient injected
/// faults exercise the real retry path end to end.
pub struct FaultInjectBackend {
    inner: Arc<dyn ReadBackend>,
    spec: FaultSpec,
    ops: AtomicU64,
}

impl FaultInjectBackend {
    /// Wrap `inner`, injecting faults per `spec`.
    pub fn new(inner: Arc<dyn ReadBackend>, spec: FaultSpec) -> Self {
        FaultInjectBackend { inner, spec, ops: AtomicU64::new(0) }
    }

    /// Draw the transient faults (delay, EIO, short read) for one
    /// operation. Returns an error if the operation should fail.
    fn transient_draw(&self) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let h = mix(self.spec.seed ^ op);
        if self.spec.delay_p > 0.0 && unit(mix(h ^ 0xD31A)) < self.spec.delay_p {
            std::thread::sleep(std::time::Duration::from_millis(self.spec.delay_ms));
        }
        if self.spec.eio > 0.0 && unit(mix(h ^ 0xE10)) < self.spec.eio {
            return Err(StorageError::Io {
                path: None,
                source: std::io::Error::from_raw_os_error(5), // EIO
            });
        }
        if self.spec.short > 0.0 && unit(mix(h ^ 0x5807)) < self.spec.short {
            return Err(StorageError::Io {
                path: None,
                source: std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "injected short read",
                ),
            });
        }
        Ok(())
    }

    /// Apply the (offset-keyed, hence permanent) bit-flip draw to a
    /// successfully read buffer.
    fn maybe_flip(&self, offset: u64, buf: &mut [u8]) {
        if self.spec.flip <= 0.0 || buf.is_empty() {
            return;
        }
        let h = mix(self.spec.seed ^ 0xF11F ^ offset.rotate_left(17));
        if unit(h) < self.spec.flip {
            let bit = (mix(h) % (buf.len() as u64 * 8)) as usize;
            buf[bit / 8] ^= 1 << (bit % 8);
        }
    }
}

impl ReadBackend for FaultInjectBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        self.transient_draw()?;
        self.inner.read_at(offset, buf, access)?;
        self.maybe_flip(offset, buf);
        Ok(())
    }

    fn read_ranges(&self, ranges: &mut [RangeRead<'_>], access: Access) -> Result<()> {
        // One transient draw per batched operation (it is one device
        // request), then per-range flip draws keyed by each range offset.
        self.transient_draw()?;
        self.inner.read_ranges(ranges, access)?;
        for r in ranges {
            self.maybe_flip(r.offset, r.buf);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileBackend;
    use crate::tracker::IoTracker;
    use std::io::Write;

    fn backend(content: &[u8]) -> (tempfile::TempDir, Arc<dyn ReadBackend>) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("d.bin");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content).unwrap();
        drop(f);
        let b = FileBackend::open(&path, Arc::new(IoTracker::new())).unwrap();
        (dir, Arc::new(b))
    }

    #[test]
    fn parse_full_spec_and_rejects_garbage() {
        let s = FaultSpec::parse("seed=7, eio=0.5, short=0.25, flip=1, delay_p=0.1, delay_ms=3")
            .unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.eio, 0.5);
        assert_eq!(s.short, 0.25);
        assert_eq!(s.flip, 1.0);
        assert_eq!(s.delay_ms, 3);
        assert!(s.injects_faults());
        assert!(FaultSpec::parse("eio=2").is_err(), "probability > 1");
        assert!(FaultSpec::parse("bogus=1").is_err(), "unknown key");
        assert!(FaultSpec::parse("eio").is_err(), "missing value");
        assert!(!FaultSpec::parse("seed=9").unwrap().injects_faults());
    }

    #[test]
    fn eio_faults_are_transient_and_seed_deterministic() {
        let (_d, inner) = backend(&[7u8; 64]);
        let spec = FaultSpec { seed: 1, eio: 0.5, ..Default::default() };
        let f = FaultInjectBackend::new(Arc::clone(&inner), spec);
        let mut outcomes = Vec::new();
        let mut buf = [0u8; 8];
        for _ in 0..64 {
            outcomes.push(f.read_at(0, &mut buf, Access::Random).is_ok());
        }
        assert!(outcomes.iter().any(|&ok| ok), "some reads succeed");
        assert!(outcomes.iter().any(|&ok| !ok), "some reads fail at p=0.5");
        // Same seed, same op sequence → identical outcome pattern.
        let f2 = FaultInjectBackend::new(inner, spec);
        let replay: Vec<bool> =
            (0..64).map(|_| f2.read_at(0, &mut buf, Access::Random).is_ok()).collect();
        assert_eq!(outcomes, replay);
        // Every injected failure is classified transient.
        let f3 = FaultInjectBackend::new(f2.inner.clone(), FaultSpec { eio: 1.0, ..spec });
        let err = f3.read_at(0, &mut buf, Access::Random).unwrap_err();
        assert!(err.is_transient(), "{err}");
    }

    #[test]
    fn short_reads_surface_as_unexpected_eof() {
        let (_d, inner) = backend(&[7u8; 64]);
        let spec = FaultSpec { seed: 3, short: 1.0, ..Default::default() };
        let f = FaultInjectBackend::new(inner, spec);
        let mut buf = [0u8; 8];
        let err = f.read_at(0, &mut buf, Access::Sequential).unwrap_err();
        assert!(err.is_transient());
        assert!(err.to_string().contains("short read"), "{err}");
    }

    #[test]
    fn bit_flips_are_permanent_per_offset() {
        let (_d, inner) = backend(&[0u8; 256]);
        let spec = FaultSpec { seed: 5, flip: 1.0, ..Default::default() };
        let f = FaultInjectBackend::new(inner, spec);
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        f.read_at(64, &mut a, Access::Random).unwrap();
        f.read_at(64, &mut b, Access::Random).unwrap();
        assert_ne!(a, [0u8; 32], "exactly one bit flipped");
        assert_eq!(a, b, "same offset → same damage on every attempt");
        assert_eq!(a.iter().map(|x| x.count_ones()).sum::<u32>(), 1);
        let mut c = [0u8; 32];
        f.read_at(128, &mut c, Access::Random).unwrap();
        assert_ne!(a, c, "different offsets see independent flips");
    }

    #[test]
    fn read_ranges_one_draw_per_batch_and_flips_by_range() {
        let (_d, inner) = backend(&(0..=255u8).collect::<Vec<_>>());
        let spec = FaultSpec { seed: 11, flip: 1.0, ..Default::default() };
        let f = FaultInjectBackend::new(inner, spec);
        let (mut x, mut y) = ([0u8; 4], [0u8; 4]);
        let mut ranges =
            [RangeRead { offset: 0, buf: &mut x }, RangeRead { offset: 16, buf: &mut y }];
        f.read_ranges(&mut ranges, Access::Batched).unwrap();
        assert_ne!(x, [0, 1, 2, 3], "first range drew its own flip");
        assert_ne!(y, [16, 17, 18, 19], "second range drew its own flip");
    }
}
