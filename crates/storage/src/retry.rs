//! Retry policy, resilience accounting, and the retrying read wrapper.
//!
//! Transient storage errors (see
//! [`StorageError::is_transient`](crate::error::StorageError::is_transient)) are
//! retried with bounded exponential backoff and deterministic jitter;
//! permanent errors propagate immediately. A batched multi-range read that
//! keeps failing degrades to per-range single reads before giving up —
//! one step of the degradation ladder described in DESIGN.md §9.
//!
//! Every retry-layer event is counted twice: in the always-on per-directory
//! [`ResilienceTracker`] (surfaced through `RunStats`), and in the
//! trace-gated obs counters `storage.retries` / `storage.giveups` /
//! `storage.fallback.ranged` for `HUS_TRACE` sessions.

use crate::error::Result;
#[cfg(test)]
use crate::error::StorageError;
use crate::tracker::Access;
use crate::{RangeRead, ReadBackend};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static OBS_RETRIES: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.retries");
static OBS_GIVEUPS: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.giveups");
static OBS_RANGED_FALLBACKS: hus_obs::LazyCounter =
    hus_obs::LazyCounter::new("storage.fallback.ranged");

/// Registry gauges mirroring the always-on [`ResilienceTracker`] totals
/// (see [`ResilienceTracker::publish`]). Unlike the event counters
/// above — which only tick while collection is enabled — these reflect
/// the tracker's full history at publish time, so an exporter attached
/// mid-run still reports every resilience event since the directory
/// opened.
static GAUGE_RETRIES: hus_obs::LazyGauge = hus_obs::LazyGauge::new("resilience.retries");
static GAUGE_GIVEUPS: hus_obs::LazyGauge = hus_obs::LazyGauge::new("resilience.giveups");
static GAUGE_MMAP_FB: hus_obs::LazyGauge = hus_obs::LazyGauge::new("resilience.mmap_fallbacks");
static GAUGE_DIRECT_FB: hus_obs::LazyGauge = hus_obs::LazyGauge::new("resilience.direct_fallbacks");
static GAUGE_RANGED_FB: hus_obs::LazyGauge = hus_obs::LazyGauge::new("resilience.ranged_fallbacks");
static GAUGE_SYNC_FB: hus_obs::LazyGauge = hus_obs::LazyGauge::new("resilience.sync_fallbacks");
static GAUGE_CRC_FAIL: hus_obs::LazyGauge = hus_obs::LazyGauge::new("resilience.checksum_failures");
static GAUGE_WRITE_FAULTS: hus_obs::LazyGauge = hus_obs::LazyGauge::new("resilience.write_faults");
static GAUGE_SPILL_ROLLBACKS: hus_obs::LazyGauge =
    hus_obs::LazyGauge::new("resilience.spill_rollbacks");
static GAUGE_DEGRADED_ENTRIES: hus_obs::LazyGauge =
    hus_obs::LazyGauge::new("resilience.degraded_mode_entries");

/// Log `msg` to stderr the first time `once` fires — degradation events
/// are reported once per process, then only counted.
pub fn warn_once(once: &'static std::sync::Once, msg: &str) {
    once.call_once(|| eprintln!("[hus-storage] {msg}"));
}

/// Bounded-attempt exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try + retries). `1` disables
    /// retrying.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Default policy with `max_attempts` overridden by the `HUS_RETRIES`
    /// environment variable when set.
    pub fn from_env() -> Self {
        let mut p = RetryPolicy::default();
        if let Some(n) =
            std::env::var("HUS_RETRIES").ok().and_then(|v| v.trim().parse::<u32>().ok())
        {
            p.max_attempts = n.max(1);
        }
        p
    }

    /// Backoff before retry number `retry` (0-based), jittered ±25% by a
    /// hash of `salt` so concurrent retries of different offsets spread
    /// out, deterministically.
    pub fn backoff(&self, retry: u32, salt: u64) -> Duration {
        let base = self.base_delay.as_nanos() as u64;
        let exp = base.saturating_mul(1u64 << retry.min(20));
        // xorshift-style mix of salt and retry → jitter factor in [0.75, 1.25).
        let mut h = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (retry as u64).rotate_left(32);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        let jitter = 0.75 + (h >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        let ns = ((exp as f64 * jitter) as u64).min(self.max_delay.as_nanos() as u64);
        Duration::from_nanos(ns)
    }
}

/// Always-on counters of resilience events for one [`crate::StorageDir`]
/// tree (shared by subdirectories, like the I/O tracker).
#[derive(Debug, Default)]
pub struct ResilienceTracker {
    retries: AtomicU64,
    giveups: AtomicU64,
    mmap_fallbacks: AtomicU64,
    direct_fallbacks: AtomicU64,
    ranged_fallbacks: AtomicU64,
    sync_fallbacks: AtomicU64,
    checksum_failures: AtomicU64,
    write_faults: AtomicU64,
    spill_rollbacks: AtomicU64,
    degraded_mode_entries: AtomicU64,
}

impl ResilienceTracker {
    /// Fresh tracker with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one retried read attempt.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one operation whose transient error exhausted its attempts.
    pub fn record_giveup(&self) {
        self.giveups.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one mmap→file backend degradation.
    pub fn record_mmap_fallback(&self) {
        self.mmap_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one direct→file backend degradation (`O_DIRECT` refused by
    /// the filesystem or kernel).
    pub fn record_direct_fallback(&self) {
        self.direct_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one batched→per-range read degradation.
    pub fn record_ranged_fallback(&self) {
        self.ranged_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one readahead→synchronous column degradation.
    pub fn record_sync_fallback(&self) {
        self.sync_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one checksum verification failure.
    pub fn record_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one injected (or real) write-path fault.
    pub fn record_write_fault(&self) {
        self.write_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one spill/compaction/checkpoint rolled back to the prior
    /// generation after a write failure.
    pub fn record_spill_rollback(&self) {
        self.spill_rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one transition of a dynamic graph into read-only degraded
    /// mode.
    pub fn record_degraded_mode_entry(&self) {
        self.degraded_mode_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Push the current totals into the metric registry as
    /// `resilience.*` gauges (no-op while collection is disabled). The
    /// engine calls this once per iteration so `/metrics` and `hus
    /// top` always show the tracker's true cumulative counts.
    pub fn publish(&self) {
        if !hus_obs::enabled() {
            return;
        }
        let s = self.snapshot();
        GAUGE_RETRIES.set(s.retries);
        GAUGE_GIVEUPS.set(s.giveups);
        GAUGE_MMAP_FB.set(s.mmap_fallbacks);
        GAUGE_DIRECT_FB.set(s.direct_fallbacks);
        GAUGE_RANGED_FB.set(s.ranged_fallbacks);
        GAUGE_SYNC_FB.set(s.sync_fallbacks);
        GAUGE_CRC_FAIL.set(s.checksum_failures);
        GAUGE_WRITE_FAULTS.set(s.write_faults);
        GAUGE_SPILL_ROLLBACKS.set(s.spill_rollbacks);
        GAUGE_DEGRADED_ENTRIES.set(s.degraded_mode_entries);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            giveups: self.giveups.load(Ordering::Relaxed),
            mmap_fallbacks: self.mmap_fallbacks.load(Ordering::Relaxed),
            direct_fallbacks: self.direct_fallbacks.load(Ordering::Relaxed),
            ranged_fallbacks: self.ranged_fallbacks.load(Ordering::Relaxed),
            sync_fallbacks: self.sync_fallbacks.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            write_faults: self.write_faults.load(Ordering::Relaxed),
            spill_rollbacks: self.spill_rollbacks.load(Ordering::Relaxed),
            degraded_mode_entries: self.degraded_mode_entries.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of a [`ResilienceTracker`], reported per run in
/// `RunStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ResilienceSnapshot {
    /// Read attempts repeated after a transient error.
    pub retries: u64,
    /// Operations abandoned after exhausting their retry budget.
    pub giveups: u64,
    /// mmap→file backend degradations.
    pub mmap_fallbacks: u64,
    /// direct→file backend degradations (`O_DIRECT` refused).
    pub direct_fallbacks: u64,
    /// Batched→per-range read degradations.
    pub ranged_fallbacks: u64,
    /// Readahead→synchronous column degradations.
    pub sync_fallbacks: u64,
    /// Block reads whose CRC-32C did not match the shard footer.
    pub checksum_failures: u64,
    /// Write-path faults (injected or real) on durable writes.
    pub write_faults: u64,
    /// Spills/compactions/checkpoints rolled back after a write
    /// failure.
    pub spill_rollbacks: u64,
    /// Entries into read-only degraded mode.
    pub degraded_mode_entries: u64,
}

/// Hand-written so the three write-path counters added after the first
/// RunStats format default to zero when absent — stats JSON written by
/// older builds keeps loading.
impl Deserialize for ResilienceSnapshot {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let opt = |name: &str| -> std::result::Result<u64, serde::DeError> {
            match v.get(name) {
                Some(f) => u64::from_value(f)
                    .map_err(|e| serde::DeError(format!("field `{name}`: {}", e.0))),
                None => Ok(0),
            }
        };
        Ok(ResilienceSnapshot {
            retries: serde::from_field(v, "retries")?,
            giveups: serde::from_field(v, "giveups")?,
            mmap_fallbacks: serde::from_field(v, "mmap_fallbacks")?,
            direct_fallbacks: serde::from_field(v, "direct_fallbacks")?,
            ranged_fallbacks: serde::from_field(v, "ranged_fallbacks")?,
            sync_fallbacks: serde::from_field(v, "sync_fallbacks")?,
            checksum_failures: serde::from_field(v, "checksum_failures")?,
            write_faults: opt("write_faults")?,
            spill_rollbacks: opt("spill_rollbacks")?,
            degraded_mode_entries: opt("degraded_mode_entries")?,
        })
    }
}

impl ResilienceSnapshot {
    /// Events since an `earlier` snapshot of the same tracker.
    pub fn since(&self, earlier: &ResilienceSnapshot) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retries: self.retries.saturating_sub(earlier.retries),
            giveups: self.giveups.saturating_sub(earlier.giveups),
            mmap_fallbacks: self.mmap_fallbacks.saturating_sub(earlier.mmap_fallbacks),
            direct_fallbacks: self.direct_fallbacks.saturating_sub(earlier.direct_fallbacks),
            ranged_fallbacks: self.ranged_fallbacks.saturating_sub(earlier.ranged_fallbacks),
            sync_fallbacks: self.sync_fallbacks.saturating_sub(earlier.sync_fallbacks),
            checksum_failures: self.checksum_failures.saturating_sub(earlier.checksum_failures),
            write_faults: self.write_faults.saturating_sub(earlier.write_faults),
            spill_rollbacks: self.spill_rollbacks.saturating_sub(earlier.spill_rollbacks),
            degraded_mode_entries: self
                .degraded_mode_entries
                .saturating_sub(earlier.degraded_mode_entries),
        }
    }

    /// Total degradation events of any kind.
    pub fn total_fallbacks(&self) -> u64 {
        self.mmap_fallbacks + self.direct_fallbacks + self.ranged_fallbacks + self.sync_fallbacks
    }

    /// Whether any resilience event occurred at all.
    pub fn any(&self) -> bool {
        self.retries
            + self.giveups
            + self.total_fallbacks()
            + self.checksum_failures
            + self.write_faults
            + self.spill_rollbacks
            + self.degraded_mode_entries
            > 0
    }
}

/// A [`ReadBackend`] wrapper that retries transient errors per a
/// [`RetryPolicy`] and degrades failing batched reads to per-range reads.
///
/// [`crate::StorageDir::reader`] composes every backend it hands out as
/// `Cached?(Retry(FaultInject?(File|Mmap)))`, so retries sit below the
/// page cache (hits never retry) and above fault injection (injected
/// transient faults exercise this exact code path).
pub struct RetryBackend {
    inner: Arc<dyn ReadBackend>,
    policy: RetryPolicy,
    resilience: Arc<ResilienceTracker>,
}

impl RetryBackend {
    /// Wrap `inner`, counting events in `resilience`.
    pub fn new(
        inner: Arc<dyn ReadBackend>,
        policy: RetryPolicy,
        resilience: Arc<ResilienceTracker>,
    ) -> Self {
        RetryBackend { inner, policy, resilience }
    }

    fn note_retry(&self) {
        self.resilience.record_retry();
        OBS_RETRIES.add(1);
        hus_obs::attr::record(hus_obs::BlockStat::Retries, 1);
    }

    fn note_giveup(&self) {
        self.resilience.record_giveup();
        OBS_GIVEUPS.add(1);
    }
}

impl ReadBackend for RetryBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        let mut retry = 0;
        loop {
            match self.inner.read_at(offset, buf, access) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && retry + 1 < self.policy.max_attempts => {
                    self.note_retry();
                    std::thread::sleep(self.policy.backoff(retry, offset));
                    retry += 1;
                }
                Err(e) => {
                    if e.is_transient() {
                        self.note_giveup();
                    }
                    return Err(e);
                }
            }
        }
    }

    fn read_ranges(&self, ranges: &mut [RangeRead<'_>], access: Access) -> Result<()> {
        let mut retry = 0;
        let batch_err = loop {
            match self.inner.read_ranges(ranges, access) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && retry + 1 < self.policy.max_attempts => {
                    self.note_retry();
                    let salt = ranges.first().map_or(0, |r| r.offset);
                    std::thread::sleep(self.policy.backoff(retry, salt));
                    retry += 1;
                }
                Err(e) => break e,
            }
        };
        if batch_err.is_corruption() {
            return Err(batch_err);
        }
        // Degrade: the batched path keeps failing — serve each range with
        // its own (retried) single read before giving up on the request.
        static WARNED: std::sync::Once = std::sync::Once::new();
        warn_once(
            &WARNED,
            "batched read_ranges failed repeatedly; falling back to per-range reads",
        );
        self.resilience.record_ranged_fallback();
        OBS_RANGED_FALLBACKS.add(1);
        hus_obs::attr::record(hus_obs::BlockStat::Degradations, 1);
        for r in ranges {
            self.read_at(r.offset, r.buf, access)?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Backend that fails the first `fail_first` read attempts with a
    /// transient error, then serves zeroes.
    struct Flaky {
        fail_first: u32,
        attempts: AtomicU32,
        permanent: bool,
    }

    impl Flaky {
        fn transient(fail_first: u32) -> Self {
            Flaky { fail_first, attempts: AtomicU32::new(0), permanent: false }
        }
    }

    impl ReadBackend for Flaky {
        fn read_at(&self, _offset: u64, buf: &mut [u8], _access: Access) -> Result<()> {
            let n = self.attempts.fetch_add(1, Ordering::SeqCst);
            if self.permanent {
                return Err(StorageError::Corrupt("permanent".into()));
            }
            if n < self.fail_first {
                return Err(StorageError::Io {
                    path: None,
                    source: std::io::Error::from_raw_os_error(5),
                });
            }
            buf.fill(0);
            Ok(())
        }

        fn len(&self) -> u64 {
            1 << 20
        }
    }

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(100),
        }
    }

    #[test]
    fn transient_errors_retry_until_success() {
        let res = Arc::new(ResilienceTracker::new());
        let b = RetryBackend::new(Arc::new(Flaky::transient(2)), fast_policy(4), res.clone());
        let mut buf = [1u8; 8];
        b.read_at(0, &mut buf, Access::Random).unwrap();
        let s = res.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.giveups, 0);
        assert!(s.any());
    }

    #[test]
    fn exhausted_retries_give_up_with_original_error() {
        let res = Arc::new(ResilienceTracker::new());
        let b = RetryBackend::new(Arc::new(Flaky::transient(100)), fast_policy(3), res.clone());
        let mut buf = [0u8; 8];
        let err = b.read_at(0, &mut buf, Access::Random).unwrap_err();
        assert!(err.is_transient());
        let s = res.snapshot();
        assert_eq!(s.retries, 2, "max_attempts=3 → 2 retries");
        assert_eq!(s.giveups, 1);
    }

    #[test]
    fn permanent_errors_never_retry() {
        let res = Arc::new(ResilienceTracker::new());
        let flaky = Flaky { fail_first: 0, attempts: AtomicU32::new(0), permanent: true };
        let flaky = Arc::new(flaky);
        let b = RetryBackend::new(flaky.clone(), fast_policy(5), res.clone());
        let mut buf = [0u8; 8];
        assert!(b.read_at(0, &mut buf, Access::Random).unwrap_err().is_corruption());
        assert_eq!(flaky.attempts.load(Ordering::SeqCst), 1, "single attempt");
        assert_eq!(res.snapshot().retries, 0);
        assert_eq!(res.snapshot().giveups, 0, "permanent failures are not giveups");
    }

    /// Backend whose batched path always fails but whose single-read path
    /// works — exercises the batched→ranged degradation.
    struct BatchBroken;

    impl ReadBackend for BatchBroken {
        fn read_at(&self, offset: u64, buf: &mut [u8], _access: Access) -> Result<()> {
            buf.fill(offset as u8);
            Ok(())
        }

        fn read_ranges(&self, _ranges: &mut [RangeRead<'_>], _access: Access) -> Result<()> {
            Err(StorageError::Io { path: None, source: std::io::Error::from_raw_os_error(5) })
        }

        fn len(&self) -> u64 {
            1 << 20
        }
    }

    #[test]
    fn failing_batch_degrades_to_per_range_reads() {
        let res = Arc::new(ResilienceTracker::new());
        let b = RetryBackend::new(Arc::new(BatchBroken), fast_policy(2), res.clone());
        let (mut x, mut y) = ([9u8; 2], [9u8; 2]);
        let mut ranges =
            [RangeRead { offset: 3, buf: &mut x }, RangeRead { offset: 7, buf: &mut y }];
        b.read_ranges(&mut ranges, Access::Batched).unwrap();
        assert_eq!(x, [3, 3]);
        assert_eq!(y, [7, 7]);
        let s = res.snapshot();
        assert_eq!(s.ranged_fallbacks, 1);
        assert_eq!(s.giveups, 0, "the request was ultimately served");
        assert_eq!(s.total_fallbacks(), 1);
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let p = RetryPolicy::default();
        for retry in 0..16 {
            let d = p.backoff(retry, 12345);
            assert!(d <= p.max_delay, "retry {retry}: {d:?}");
            assert_eq!(d, p.backoff(retry, 12345), "deterministic for a fixed salt");
        }
        assert!(p.backoff(0, 1) >= Duration::from_nanos(750_000), "±25% around 1ms");
        let snap = ResilienceSnapshot { retries: 5, giveups: 1, ..Default::default() };
        let earlier = ResilienceSnapshot { retries: 2, ..Default::default() };
        assert_eq!(snap.since(&earlier).retries, 3);
        assert_eq!(snap.since(&earlier).giveups, 1);
    }
}
