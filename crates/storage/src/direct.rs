//! `O_DIRECT` read backend: page-cache-bypassing reads from a pool of
//! 4 KiB-aligned buffers, with truly vectored `read_ranges` submission.
//!
//! The out-of-core premise of HUS-Graph (paper §1, §4) is that the I/O
//! device, not the CPU, should bound runtime — but reading shards through
//! the OS page cache double-buffers every byte under our own LRU and hides
//! the device's actual queue behavior. `DirectBackend` opens shard and
//! index files with `O_DIRECT` and serves arbitrary (unaligned) reads by
//! bouncing through reused aligned buffers ([`crate::aligned`]), keeping
//! alignment strictly *below* the checksum/codec/billing layers: callers
//! see the same byte-exact semantics and the tracker bills the same
//! requested bytes as [`crate::FileBackend`].
//!
//! `read_ranges` is submitted at queue depth instead of as one spanning
//! `pread`: via an `io_uring` ring when the runtime probe succeeds
//! ([`crate::uring`]), else via a scoped thread-pool fan-out. Both paths
//! produce identical bytes and identical billing (requested bytes, one
//! operation).

use crate::aligned::{align_down, align_up, AlignedBuf, BufPool, DIRECT_ALIGN};
use crate::error::{Result, StorageError};
use crate::tracker::{Access, IoTracker};
use crate::{RangeRead, ReadBackend};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[cfg(unix)]
use std::os::unix::fs::{FileExt, OpenOptionsExt};

#[cfg(all(
    feature = "uring",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
use std::os::unix::io::AsRawFd;

/// `O_DIRECT` differs per architecture; these cover the targets we build.
#[cfg(any(target_arch = "aarch64", target_arch = "arm", target_arch = "powerpc64"))]
const O_DIRECT: i32 = 0o200000;
#[cfg(not(any(target_arch = "aarch64", target_arch = "arm", target_arch = "powerpc64")))]
const O_DIRECT: i32 = 0o40000;

/// Environment knob naming the vectored submission depth (shared with the
/// COP pipeline's producer pool; see `RunConfig` in `hus-core`).
pub const QUEUE_DEPTH_ENV: &str = "HUS_QUEUE_DEPTH";

/// Default in-flight request target when `HUS_QUEUE_DEPTH` is unset.
pub const DEFAULT_QUEUE_DEPTH: usize = 8;

fn env_queue_depth() -> usize {
    std::env::var(QUEUE_DEPTH_ENV)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&d| d > 0)
        .unwrap_or(DEFAULT_QUEUE_DEPTH)
}

/// Per-access-class direct-read latency in nanoseconds (the direct twin of
/// `storage.file.read_ns.*`).
static READ_NS_SEQ: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.direct.read_ns.seq");
static READ_NS_RAND: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.direct.read_ns.rand");
static READ_NS_BATCHED: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.direct.read_ns.batched");

fn read_latency_hist(access: Access) -> &'static hus_obs::LazyHistogram {
    match access {
        Access::Sequential => &READ_NS_SEQ,
        Access::Random => &READ_NS_RAND,
        Access::Batched => &READ_NS_BATCHED,
    }
}

/// One aligned bounce read covering a caller range.
struct AlignedJob {
    /// Aligned file offset the bounce read starts at.
    lo: u64,
    /// Bytes that must be present in the bounce buffer (unaligned tail of
    /// the caller's range relative to `lo`).
    needed: usize,
    /// Aligned transfer length.
    alen: usize,
    buf: AlignedBuf,
}

/// Read-only `O_DIRECT` backend over a shard or index file.
///
/// Construction probes the filesystem: `O_DIRECT` opens succeed on tmpfs
/// and some network filesystems only to fail at the first read, so
/// [`DirectBackend::open`] performs one aligned probe read and surfaces
/// the failure immediately — [`crate::StorageDir`] then degrades to the
/// plain file backend, mirroring the mmap→file ladder.
pub struct DirectBackend {
    path: PathBuf,
    file: File,
    len: u64,
    tracker: Arc<IoTracker>,
    pool: BufPool,
    queue_depth: usize,
    #[cfg(all(
        feature = "uring",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    ring: Option<parking_lot::Mutex<crate::uring::Uring>>,
}

impl DirectBackend {
    /// Open `path` with `O_DIRECT`, attributing traffic to `tracker`.
    /// Submission depth comes from `HUS_QUEUE_DEPTH` (default 8).
    pub fn open(path: impl AsRef<Path>, tracker: Arc<IoTracker>) -> Result<Self> {
        Self::open_with_depth(path, tracker, env_queue_depth())
    }

    /// Open with an explicit queue depth (≥1).
    #[cfg(unix)]
    pub fn open_with_depth(
        path: impl AsRef<Path>,
        tracker: Arc<IoTracker>,
        queue_depth: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .custom_flags(O_DIRECT)
            .open(&path)
            .map_err(|e| StorageError::io_at(&path, e))?;
        let len = file.metadata().map_err(|e| StorageError::io_at(&path, e))?.len();
        let queue_depth = queue_depth.max(1);
        let backend = DirectBackend {
            path,
            file,
            len,
            tracker,
            // Enough idle buffers to serve a full-depth batch without
            // re-allocating, plus slack for concurrent readers.
            pool: BufPool::new(2 * queue_depth.max(4)),
            queue_depth,
            #[cfg(all(
                feature = "uring",
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            ring: crate::uring::Uring::probe(queue_depth as u32).map(parking_lot::Mutex::new),
        };
        backend.probe_read()?;
        Ok(backend)
    }

    /// Open with an explicit queue depth (non-unix stub: always fails, so
    /// callers degrade to the portable file backend).
    #[cfg(not(unix))]
    pub fn open_with_depth(
        path: impl AsRef<Path>,
        _tracker: Arc<IoTracker>,
        _queue_depth: usize,
    ) -> Result<Self> {
        Err(StorageError::io_at(
            path.as_ref(),
            std::io::Error::new(std::io::ErrorKind::Unsupported, "O_DIRECT requires unix"),
        ))
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the io_uring submission path is active (false means the
    /// thread-pool fan-out serves `read_ranges`).
    pub fn uring_active(&self) -> bool {
        #[cfg(all(
            feature = "uring",
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            self.ring.is_some()
        }
        #[cfg(not(all(
            feature = "uring",
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            false
        }
    }

    /// Verify the filesystem actually honors `O_DIRECT` reads: tmpfs (and
    /// some network filesystems) accept the open flag but fail the first
    /// read with `EINVAL`.
    #[cfg(unix)]
    fn probe_read(&self) -> Result<()> {
        if self.len == 0 {
            return Ok(());
        }
        let mut buf = AlignedBuf::zeroed(DIRECT_ALIGN);
        let n = self
            .file
            .read_at(&mut buf[..DIRECT_ALIGN], 0)
            .map_err(|e| StorageError::io_at(&self.path, e))?;
        if n == 0 {
            return Err(StorageError::io_at(
                &self.path,
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "O_DIRECT probe read"),
            ));
        }
        Ok(())
    }

    /// `pread` loop over an aligned span. Returns bytes filled; short only
    /// at EOF (an unaligned partial return under `O_DIRECT` means the file
    /// tail was reached).
    #[cfg(unix)]
    fn pread_aligned(&self, lo: u64, buf: &mut [u8]) -> Result<usize> {
        debug_assert!((lo as usize).is_multiple_of(DIRECT_ALIGN));
        debug_assert!(buf.len().is_multiple_of(DIRECT_ALIGN));
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.file.read_at(&mut buf[filled..], lo + filled as u64) {
                Ok(0) => break,
                Ok(n) => {
                    filled += n;
                    if !filled.is_multiple_of(DIRECT_ALIGN) {
                        break; // EOF tail: cannot continue aligned.
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StorageError::io_at(&self.path, e)),
            }
        }
        Ok(filled)
    }

    fn job_for(&self, offset: u64, len: usize) -> AlignedJob {
        let lo = align_down(offset);
        let needed = (offset + len as u64 - lo) as usize;
        let alen = align_up(needed as u64) as usize;
        AlignedJob { lo, needed, alen, buf: self.pool.take(alen) }
    }

    fn check_filled(&self, job: &AlignedJob, filled: usize) -> Result<()> {
        if filled < job.needed {
            return Err(StorageError::io_at(
                &self.path,
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!(
                        "direct read at {} got {filled} of {} aligned bytes",
                        job.lo, job.needed
                    ),
                ),
            ));
        }
        Ok(())
    }

    /// Run a batch of aligned jobs through io_uring if a ring is live.
    /// Returns `None` when no ring is available or submission failed (the
    /// caller then uses the thread fan-out; buffers may be partially
    /// written and are fully re-read).
    #[cfg(all(
        feature = "uring",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn try_uring(&self, jobs: &mut [AlignedJob]) -> Option<Result<()>> {
        let ring = self.ring.as_ref()?;
        let mut ring = ring.lock();
        let mut reads: Vec<crate::uring::ReadJob<'_>> = jobs
            .iter_mut()
            .map(|j| crate::uring::ReadJob { offset: j.lo, buf: &mut j.buf[..j.alen], filled: 0 })
            .collect();
        match ring.read_fully(self.file.as_raw_fd(), &mut reads) {
            Ok(()) => {
                let filled: Vec<usize> = reads.iter().map(|r| r.filled).collect();
                drop(reads);
                for (j, f) in jobs.iter().zip(filled) {
                    if let Err(e) = self.check_filled(j, f) {
                        return Some(Err(e));
                    }
                }
                Some(Ok(()))
            }
            // Ring-level failure (e.g. opcode rejected): fall back.
            Err(_) => None,
        }
    }

    #[cfg(not(all(
        feature = "uring",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    fn try_uring(&self, _jobs: &mut [AlignedJob]) -> Option<Result<()>> {
        None
    }

    /// Thread-pool fan-out over aligned jobs: up to `queue_depth` scoped
    /// worker threads claim jobs from a shared counter and `pread` them
    /// concurrently — the same overlap the ring provides, bought with
    /// threads instead of a submission queue.
    #[cfg(unix)]
    fn fan_out(&self, jobs: &mut [AlignedJob]) -> Result<()> {
        let workers = self.queue_depth.min(jobs.len());
        if workers <= 1 {
            for job in jobs.iter_mut() {
                let filled = self.pread_aligned(job.lo, &mut job.buf[..job.alen])?;
                self.check_filled(job, filled)?;
            }
            return Ok(());
        }
        let next = AtomicUsize::new(0);
        let results: Vec<parking_lot::Mutex<Option<Result<()>>>> =
            jobs.iter().map(|_| parking_lot::Mutex::new(None)).collect();
        let jobs_cells: Vec<parking_lot::Mutex<&mut AlignedJob>> =
            jobs.iter_mut().map(parking_lot::Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs_cells.len() {
                        break;
                    }
                    let mut job = jobs_cells[i].lock();
                    let job = &mut **job;
                    let res = self
                        .pread_aligned(job.lo, &mut job.buf[..job.alen])
                        .and_then(|filled| self.check_filled(job, filled));
                    *results[i].lock() = Some(res);
                });
            }
        });
        for cell in results {
            cell.into_inner().expect("worker completed every claimed job")?;
        }
        Ok(())
    }
}

impl ReadBackend for DirectBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        let want = buf.len() as u64;
        if offset + want > self.len {
            return Err(StorageError::OutOfBounds { offset, len: want, file_len: self.len });
        }
        if want == 0 {
            self.tracker.record_read(access, 0);
            return Ok(());
        }
        let mut job = self.job_for(offset, buf.len());
        let t0 = hus_obs::latency_timer();
        let filled = self.pread_aligned(job.lo, &mut job.buf[..job.alen])?;
        self.check_filled(&job, filled)?;
        read_latency_hist(access).record_elapsed(t0);
        let skip = (offset - job.lo) as usize;
        buf.copy_from_slice(&job.buf[skip..skip + buf.len()]);
        self.tracker.record_read(access, want);
        self.pool.give(job.buf);
        Ok(())
    }

    /// Vectored multi-range read: one aligned bounce read per range,
    /// overlapped at queue depth (io_uring when probed live, scoped thread
    /// fan-out otherwise). The *requested* bytes are billed once as a
    /// single tracked operation — byte-for-byte the same model as
    /// [`FileBackend::read_ranges`](crate::FileBackend), only the
    /// submission shape differs.
    fn read_ranges(&self, ranges: &mut [RangeRead<'_>], access: Access) -> Result<()> {
        crate::debug_assert_ranges_sorted(ranges);
        match ranges {
            [] => return Ok(()),
            [only] => return self.read_at(only.offset, only.buf, access),
            _ => {}
        }
        let mut requested = 0u64;
        for r in ranges.iter() {
            let end = r.offset + r.buf.len() as u64;
            if end > self.len {
                return Err(StorageError::OutOfBounds {
                    offset: r.offset,
                    len: r.buf.len() as u64,
                    file_len: self.len,
                });
            }
            requested += r.buf.len() as u64;
        }
        if requested == 0 {
            return Ok(());
        }
        let mut jobs: Vec<AlignedJob> =
            ranges.iter().map(|r| self.job_for(r.offset, r.buf.len())).collect();
        let t0 = hus_obs::latency_timer();
        match self.try_uring(&mut jobs) {
            Some(res) => res?,
            None => self.fan_out(&mut jobs)?,
        }
        read_latency_hist(access).record_elapsed(t0);
        for (r, job) in ranges.iter_mut().zip(&jobs) {
            let skip = (r.offset - job.lo) as usize;
            r.buf.copy_from_slice(&job.buf[skip..skip + r.buf.len()]);
        }
        self.tracker.record_read(access, requested);
        for job in jobs {
            self.pool.give(job.buf);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjectBackend, FaultSpec};
    use crate::file::FileBackend;
    use crate::retry::{RetryBackend, RetryPolicy};
    use std::io::Write;

    fn patterned(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i.wrapping_mul(31) % 251) as u8).collect()
    }

    fn tmp_file(content: &[u8]) -> (tempfile::TempDir, PathBuf) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("data.bin");
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        f.sync_all().unwrap();
        (dir, path)
    }

    /// Open a direct backend or skip the test when the filesystem refuses
    /// `O_DIRECT` (tmpfs in CI containers).
    fn open_or_skip(path: &Path, tracker: Arc<IoTracker>) -> Option<DirectBackend> {
        match DirectBackend::open(path, tracker) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("O_DIRECT unavailable here ({e}); skipping");
                None
            }
        }
    }

    #[test]
    fn straddling_and_tail_reads_match_file_backend() {
        // 2.5 blocks: exercises sub-block tails and boundary straddles.
        let data = patterned(2 * DIRECT_ALIGN + DIRECT_ALIGN / 2);
        let (_d, path) = tmp_file(&data);
        let Some(direct) = open_or_skip(&path, Arc::new(IoTracker::new())) else { return };
        let file = FileBackend::open(&path, Arc::new(IoTracker::new())).unwrap();
        assert_eq!(direct.len(), file.len());

        let cases: &[(u64, usize)] = &[
            (0, 1),
            (0, DIRECT_ALIGN),
            (1, DIRECT_ALIGN),            // straddles the first boundary
            (DIRECT_ALIGN as u64 - 1, 2), // 2 bytes across a boundary
            (DIRECT_ALIGN as u64 - 1, DIRECT_ALIGN + 2), // spans a full block + both edges
            (7, 3 * DIRECT_ALIGN / 2),
            (data.len() as u64 - 1, 1), // last byte of the unaligned tail
            (2 * DIRECT_ALIGN as u64, DIRECT_ALIGN / 2), // entire sub-block tail
            (2 * DIRECT_ALIGN as u64 + 17, 100), // interior of the tail
        ];
        for &(off, len) in cases {
            let mut a = vec![0u8; len];
            let mut b = vec![0xffu8; len];
            direct.read_at(off, &mut a, Access::Random).unwrap();
            file.read_at(off, &mut b, Access::Random).unwrap();
            assert_eq!(a, b, "mismatch at offset {off} len {len}");
            assert_eq!(a, &data[off as usize..off as usize + len]);
        }
    }

    #[test]
    fn billing_matches_file_backend() {
        let data = patterned(3 * DIRECT_ALIGN);
        let (_d, path) = tmp_file(&data);
        let tracker = Arc::new(IoTracker::new());
        let Some(direct) = open_or_skip(&path, Arc::clone(&tracker)) else { return };
        let mut buf = vec![0u8; 100];
        direct.read_at(50, &mut buf, Access::Random).unwrap();
        let s = tracker.snapshot();
        // Requested bytes billed — not the aligned bounce transfer.
        assert_eq!(s.rand_read_bytes, 100);
        assert_eq!(s.rand_read_ops, 1);
    }

    #[test]
    fn read_ranges_scatters_and_bills_once() {
        let data = patterned(4 * DIRECT_ALIGN);
        let (_d, path) = tmp_file(&data);
        let tracker = Arc::new(IoTracker::new());
        let Some(direct) = open_or_skip(&path, Arc::clone(&tracker)) else { return };
        let (mut a, mut m, mut z) = ([0u8; 8], [0u8; 5000], [0u8; 4]);
        let mut ranges = [
            RangeRead { offset: 10, buf: &mut a },
            RangeRead { offset: DIRECT_ALIGN as u64 - 100, buf: &mut m },
            RangeRead { offset: 3 * DIRECT_ALIGN as u64 + 500, buf: &mut z },
        ];
        direct.read_ranges(&mut ranges, Access::Batched).unwrap();
        assert_eq!(a, data[10..18]);
        assert_eq!(m[..], data[DIRECT_ALIGN - 100..DIRECT_ALIGN - 100 + 5000]);
        assert_eq!(z, data[3 * DIRECT_ALIGN + 500..3 * DIRECT_ALIGN + 504]);
        let s = tracker.snapshot();
        assert_eq!(s.batched_read_bytes, 8 + 5000 + 4);
        assert_eq!(s.batched_read_ops, 1);
    }

    #[test]
    fn out_of_bounds_rejected_before_reading() {
        let (_d, path) = tmp_file(&patterned(DIRECT_ALIGN));
        let tracker = Arc::new(IoTracker::new());
        let Some(direct) = open_or_skip(&path, Arc::clone(&tracker)) else { return };
        let mut buf = [0u8; 8];
        assert!(matches!(
            direct.read_at(DIRECT_ALIGN as u64 - 4, &mut buf, Access::Random),
            Err(StorageError::OutOfBounds { .. })
        ));
        let (mut a, mut b) = ([0u8; 8], [0u8; 8]);
        let mut ranges = [
            RangeRead { offset: 0, buf: &mut a },
            RangeRead { offset: DIRECT_ALIGN as u64 - 4, buf: &mut b },
        ];
        assert!(matches!(
            direct.read_ranges(&mut ranges, Access::Batched),
            Err(StorageError::OutOfBounds { .. })
        ));
        assert_eq!(tracker.snapshot().total_bytes(), 0);
    }

    #[test]
    fn many_ranges_exceeding_queue_depth() {
        let data = patterned(64 * DIRECT_ALIGN);
        let (_d, path) = tmp_file(&data);
        let tracker = Arc::new(IoTracker::new());
        let Some(direct) =
            DirectBackend::open_with_depth(&path, Arc::clone(&tracker), 4).ok().or_else(|| {
                eprintln!("O_DIRECT unavailable here; skipping");
                None
            })
        else {
            return;
        };
        let mut bufs: Vec<Vec<u8>> = (0..32).map(|_| vec![0u8; 777]).collect();
        let mut ranges: Vec<RangeRead<'_>> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| RangeRead { offset: (i * 2 * DIRECT_ALIGN + 13 * i) as u64, buf: b })
            .collect();
        direct.read_ranges(&mut ranges, Access::Batched).unwrap();
        drop(ranges);
        for (i, b) in bufs.iter().enumerate() {
            let off = i * 2 * DIRECT_ALIGN + 13 * i;
            assert_eq!(b[..], data[off..off + 777], "range {i}");
        }
        let s = tracker.snapshot();
        assert_eq!(s.batched_read_bytes, 32 * 777);
        assert_eq!(s.batched_read_ops, 1);
    }

    #[test]
    fn short_read_fault_injection_matches_file_backend() {
        // Satellite: DirectBackend under HUS_FAULT-style short-read
        // injection, wrapped in the retry layer, must stay bit-identical
        // with FileBackend under the same fault schedule.
        let data = patterned(8 * DIRECT_ALIGN + 123);
        let (_d, path) = tmp_file(&data);
        let spec = FaultSpec::parse("seed=42,short=0.2").unwrap();
        let policy = RetryPolicy::default();

        let run = |base: Arc<dyn ReadBackend>| -> Vec<u8> {
            let resilience = Arc::new(crate::retry::ResilienceTracker::default());
            let faulty = FaultInjectBackend::new(base, spec);
            let retried = RetryBackend::new(Arc::new(faulty), policy, resilience);
            let mut out = Vec::new();
            for &(off, len) in
                &[(0u64, 4096usize), (5000, 9000), (8 * DIRECT_ALIGN as u64, 123), (1, 1)]
            {
                let mut buf = vec![0u8; len];
                retried.read_at(off, &mut buf, Access::Random).unwrap();
                out.extend_from_slice(&buf);
            }
            let (mut a, mut b) = (vec![0u8; 300], vec![0u8; 700]);
            let mut ranges =
                [RangeRead { offset: 100, buf: &mut a }, RangeRead { offset: 20_000, buf: &mut b }];
            retried.read_ranges(&mut ranges, Access::Batched).unwrap();
            out.extend_from_slice(&a);
            out.extend_from_slice(&b);
            out
        };

        let tracker = Arc::new(IoTracker::new());
        let Some(direct) = open_or_skip(&path, Arc::clone(&tracker)) else { return };
        let via_direct = run(Arc::new(direct));
        let via_file = run(Arc::new(FileBackend::open(&path, Arc::new(IoTracker::new())).unwrap()));
        assert_eq!(via_direct, via_file);
    }

    #[test]
    fn zero_length_read_is_ok() {
        let (_d, path) = tmp_file(&patterned(DIRECT_ALIGN));
        let Some(direct) = open_or_skip(&path, Arc::new(IoTracker::new())) else { return };
        let mut empty = [0u8; 0];
        direct.read_at(100, &mut empty, Access::Sequential).unwrap();
    }
}
