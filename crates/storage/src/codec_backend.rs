//! Decoding view over an encoded shard file: a [`CodecBackend`] wraps
//! the tracked backend stack and presents the shard's *decoded*
//! address space, so every existing reader (COP streams, ROP selective
//! loads, batched range reads) keeps addressing blocks by logical
//! record offsets while the bytes actually travelling from the device
//! are the codec-compressed payload.
//!
//! Placement in the stack: `Codec( Cached?( Retry( Fault?( File|Mmap ))))`
//! — decoding sits *above* billing, so the tracker records the encoded
//! (on-disk) byte counts, which is exactly what the ROP/COP cost
//! predictor consumes.
//!
//! Read semantics per request shape:
//!
//! * **Full-block sequential reads** (COP streams) decode straight into
//!   the caller's buffer through a reusable thread-local scratch and
//!   are *not* cached: a stream pays its encoded bytes every
//!   iteration, preserving the out-of-core billing model.
//! * **Partial reads** (ROP selective loads, batched ranges) fetch and
//!   decode the whole containing block once, park the decoded block in
//!   a small per-file LRU cache (budget: `HUS_CODEC_CACHE` bytes), and
//!   serve the requested slice. Later touches of the same block are
//!   cache hits: zero device I/O billed, zero decode time.
//!
//! Checksums: when verification is on, the CRC-32C from the shard
//! footer is checked against the **encoded** payload on every fetch —
//! a corrupt block is therefore detected before the decoder ever sees
//! it, for *any* read shape (this closes the ROP partial-read
//! verification gap for compressed graphs; see DESIGN.md §9).

use crate::cache::CacheStats;
use crate::checksum::crc32c;
use crate::error::{Result, StorageError};
use crate::retry::ResilienceTracker;
use crate::tracker::Access;
use crate::ReadBackend;
use hus_codec::EdgeBlockCodec;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable sizing each shard file's decoded-block cache,
/// in bytes (`0` disables decoded-block caching).
pub const CODEC_CACHE_ENV: &str = "HUS_CODEC_CACHE";

/// Default decoded-block cache budget per shard file.
pub const DEFAULT_DECODED_CACHE_BYTES: usize = 16 << 20;

/// Shards of the decoded-block cache (power of two; keyed by the low
/// bits of the block index, like [`crate::cache::CachedBackend`]).
const CACHE_SHARDS: usize = 8;

/// Encoded bytes fetched from the device by codec backends.
static ENCODED_BYTES: hus_obs::LazyCounter =
    hus_obs::LazyCounter::new("storage.codec.encoded_bytes_read");
/// Decoded bytes produced by codec backends.
static DECODED_BYTES: hus_obs::LazyCounter =
    hus_obs::LazyCounter::new("storage.codec.decoded_bytes");
/// Nanoseconds spent decoding one block.
static DECODE_NS: hus_obs::LazyHistogram = hus_obs::LazyHistogram::new("storage.codec.decode_ns");
/// Partial reads served from the decoded-block cache (no I/O, no decode).
static CACHE_HITS: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.codec.cache_hits");
/// Partial reads that had to fetch and decode their block.
static CACHE_MISSES: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.codec.cache_misses");

thread_local! {
    /// Reusable scratch buffer for a block's encoded bytes.
    static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Where one block lives in the decoded and encoded address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpan {
    /// Grid coordinates `(i, j)` for error reports.
    pub id: (u32, u32),
    /// Byte offset of the block in the decoded address space.
    pub decoded_offset: u64,
    /// Decoded length in bytes (`edge_count * record_bytes`).
    pub decoded_len: u64,
    /// Byte offset of the encoded payload within the file.
    pub encoded_offset: u64,
    /// Encoded payload length in bytes.
    pub encoded_len: u64,
}

struct CacheEntry {
    data: Arc<Vec<u8>>,
    stamp: u64,
}

#[derive(Default)]
struct CacheShard {
    blocks: HashMap<usize, CacheEntry>,
    bytes: usize,
    clock: u64,
}

/// Decoding [`ReadBackend`] over an encoded shard file. See the module
/// docs for the read semantics.
pub struct CodecBackend {
    inner: Arc<dyn ReadBackend>,
    codec: &'static dyn EdgeBlockCodec,
    /// Record width in bytes (4 unweighted, 8 weighted).
    record_bytes: usize,
    spans: Vec<BlockSpan>,
    decoded_total: u64,
    /// Per-block CRC-32C of the *encoded* payload, from the shard
    /// footer (absent when the graph was built without checksums).
    crcs: Option<Vec<u32>>,
    /// Shared verification switch (the graph toggles it per run).
    verify: Arc<AtomicBool>,
    path: PathBuf,
    resilience: Arc<ResilienceTracker>,
    cache: Vec<Mutex<CacheShard>>,
    per_shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Decoded-block cache budget from `HUS_CODEC_CACHE`, defaulting to
/// [`DEFAULT_DECODED_CACHE_BYTES`]; unparsable values keep the default
/// (matching how the engine treats its other knobs).
pub fn decoded_cache_budget() -> usize {
    std::env::var(CODEC_CACHE_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_DECODED_CACHE_BYTES)
}

impl CodecBackend {
    /// Wrap `inner` (the tracked backend stack for one shard file) with
    /// a decoding view. `record_bytes` is the record width (4
    /// unweighted, 8 weighted); `spans` lists every block in
    /// decoded-offset order, starting at decoded offset 0 with no gaps;
    /// `crcs` are the footer's per-block checksums over the encoded
    /// payload, checked whenever `verify` is set.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        inner: Arc<dyn ReadBackend>,
        codec: &'static dyn EdgeBlockCodec,
        record_bytes: usize,
        spans: Vec<BlockSpan>,
        crcs: Option<Vec<u32>>,
        verify: Arc<AtomicBool>,
        path: PathBuf,
        resilience: Arc<ResilienceTracker>,
    ) -> Self {
        debug_assert!(spans
            .windows(2)
            .all(|w| w[0].decoded_offset + w[0].decoded_len == w[1].decoded_offset));
        debug_assert!(spans.first().is_none_or(|s| s.decoded_offset == 0));
        if let Some(crcs) = &crcs {
            assert_eq!(crcs.len(), spans.len(), "one footer CRC per block");
        }
        let decoded_total = spans.last().map_or(0, |s| s.decoded_offset + s.decoded_len);
        let per_shard_budget = decoded_cache_budget() / CACHE_SHARDS;
        CodecBackend {
            inner,
            codec,
            record_bytes,
            spans,
            decoded_total,
            crcs,
            verify,
            path,
            resilience,
            cache: (0..CACHE_SHARDS).map(|_| Mutex::new(CacheShard::default())).collect(),
            per_shard_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Hit/miss/eviction counters of this file's decoded-block cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The codec decoding this file.
    pub fn codec(&self) -> &'static dyn EdgeBlockCodec {
        self.codec
    }

    fn shard_of(&self, block: usize) -> &Mutex<CacheShard> {
        &self.cache[block & (CACHE_SHARDS - 1)]
    }

    fn cached(&self, block: usize) -> Option<Arc<Vec<u8>>> {
        let mut shard = self.shard_of(block).lock();
        let stamp = shard.clock;
        shard.clock += 1;
        shard.blocks.get_mut(&block).map(|e| {
            e.stamp = stamp;
            Arc::clone(&e.data)
        })
    }

    fn insert(&self, block: usize, data: Arc<Vec<u8>>) {
        if data.len() > self.per_shard_budget {
            return; // oversized for the budget; serve uncached
        }
        let mut shard = self.shard_of(block).lock();
        while shard.bytes + data.len() > self.per_shard_budget {
            let Some((&victim, _)) = shard.blocks.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            if let Some(e) = shard.blocks.remove(&victim) {
                shard.bytes -= e.data.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stamp = shard.clock;
        shard.clock += 1;
        shard.bytes += data.len();
        shard.blocks.insert(block, CacheEntry { data, stamp });
    }

    /// Fetch block `b`'s encoded payload (billed to `access` through
    /// the inner stack), verify it against the footer CRC, and decode
    /// it into `out` (sized to the block's exact decoded length).
    fn fetch_decode(&self, b: usize, access: Access, out: &mut [u8]) -> Result<()> {
        let span = self.spans[b];
        debug_assert_eq!(out.len() as u64, span.decoded_len);
        SCRATCH.with(|scratch| {
            let mut enc = scratch.borrow_mut();
            enc.resize(span.encoded_len as usize, 0);
            // The inner read runs under this block's attribution scope,
            // so layers below (tracker, page cache, retry) land their
            // samples on the right heatmap cell.
            hus_obs::attr::with_block(span.id.0, span.id.1, || {
                self.inner.read_at(span.encoded_offset, &mut enc, access)
            })?;
            ENCODED_BYTES.add(span.encoded_len);
            hus_obs::attr::record_at(
                span.id.0,
                span.id.1,
                hus_obs::BlockStat::EncodedBytes,
                span.encoded_len,
            );
            if self.verify.load(Ordering::Relaxed) {
                if let Some(crcs) = &self.crcs {
                    let actual = crc32c(&enc);
                    if actual != crcs[b] {
                        self.resilience.record_checksum_failure();
                        hus_obs::attr::record_at(
                            span.id.0,
                            span.id.1,
                            hus_obs::BlockStat::Retries,
                            1,
                        );
                        return Err(StorageError::ChecksumMismatch {
                            path: self.path.clone(),
                            block: span.id,
                            offset: span.encoded_offset,
                            expected: crcs[b],
                            actual,
                        });
                    }
                }
            }
            let t0 =
                (hus_obs::enabled() || hus_obs::heatmap_enabled()).then(std::time::Instant::now);
            self.codec.decode(&enc, self.record_bytes, out).map_err(|e| {
                StorageError::Corrupt(format!(
                    "{}: block ({}, {}): {} decode failed: {e}",
                    self.path.display(),
                    span.id.0,
                    span.id.1,
                    self.codec.name(),
                ))
            })?;
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                DECODE_NS.record(ns);
                hus_obs::attr::record_at(span.id.0, span.id.1, hus_obs::BlockStat::DecodeNs, ns);
            }
            DECODED_BYTES.add(span.decoded_len);
            hus_obs::attr::record_at(
                span.id.0,
                span.id.1,
                hus_obs::BlockStat::DecodedBytes,
                span.decoded_len,
            );
            Ok(())
        })
    }
}

impl ReadBackend for CodecBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let end = offset + buf.len() as u64;
        if end > self.decoded_total {
            return Err(StorageError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                file_len: self.decoded_total,
            });
        }
        // First block whose decoded span extends past `offset`.
        let mut b = self.spans.partition_point(|s| s.decoded_offset + s.decoded_len <= offset);
        let mut cur = offset;
        let mut written = 0usize;
        while cur < end {
            let span = self.spans[b];
            let take_end = end.min(span.decoded_offset + span.decoded_len);
            if take_end == cur {
                b += 1; // empty block sharing this decoded offset
                continue;
            }
            let in_block = (cur - span.decoded_offset) as usize;
            let n = (take_end - cur) as usize;
            let dst = &mut buf[written..written + n];
            let whole_block = n as u64 == span.decoded_len;
            if let Some(data) = self.cached(b) {
                // Zero decode, zero billed I/O on a hit.
                dst.copy_from_slice(&data[in_block..in_block + n]);
                self.hits.fetch_add(1, Ordering::Relaxed);
                CACHE_HITS.incr();
                hus_obs::attr::record_at(span.id.0, span.id.1, hus_obs::BlockStat::CacheHits, 1);
            } else if whole_block && access == Access::Sequential {
                // COP stream: decode straight into the caller, uncached.
                self.fetch_decode(b, access, dst)?;
            } else {
                let mut data = vec![0u8; span.decoded_len as usize];
                self.fetch_decode(b, access, &mut data)?;
                dst.copy_from_slice(&data[in_block..in_block + n]);
                self.misses.fetch_add(1, Ordering::Relaxed);
                CACHE_MISSES.incr();
                hus_obs::attr::record_at(span.id.0, span.id.1, hus_obs::BlockStat::CacheMisses, 1);
                self.insert(b, Arc::new(data));
            }
            written += n;
            cur = take_end;
            b += 1;
        }
        Ok(())
    }

    // `read_ranges` keeps the trait's per-range loop: the first range
    // touching a block decodes and caches it; the rest are hits, so a
    // batched selective plan bills each block's encoded bytes once.

    fn len(&self) -> u64 {
        self.decoded_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::StorageDir;
    use hus_codec::{Codec, DeltaVarintCodec};

    /// Write two delta-varint blocks into a file and return the
    /// backend plus the dir (for tracker assertions) and raw payloads.
    fn setup(verify_on: bool) -> (tempfile::TempDir, StorageDir, CodecBackend, Vec<Vec<u8>>) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let blocks: Vec<Vec<u32>> =
            vec![(0..300).map(|k| 1000 + k * 3).collect(), vec![], (0..50).rev().collect()];
        let raw: Vec<Vec<u8>> =
            blocks.iter().map(|ns| ns.iter().flat_map(|n| n.to_le_bytes()).collect()).collect();
        let mut spans = Vec::new();
        let mut crcs = Vec::new();
        let mut w = dir.writer("b.edges").unwrap();
        let mut decoded_offset = 0u64;
        for (i, r) in raw.iter().enumerate() {
            let mut enc = Vec::new();
            Codec::DeltaVarint.encode(r, 4, &mut enc);
            spans.push(BlockSpan {
                id: (i as u32, 0),
                decoded_offset,
                decoded_len: r.len() as u64,
                encoded_offset: w.position(),
                encoded_len: enc.len() as u64,
            });
            crcs.push(crc32c(&enc));
            w.write_all(&enc).unwrap();
            decoded_offset += r.len() as u64;
        }
        w.finish().unwrap();
        let backend = CodecBackend::new(
            dir.reader("b.edges").unwrap(),
            &DeltaVarintCodec,
            4,
            spans,
            Some(crcs),
            Arc::new(AtomicBool::new(verify_on)),
            tmp.path().join("s/b.edges"),
            dir.resilience(),
        );
        (tmp, dir, backend, raw)
    }

    #[test]
    fn decoded_address_space_matches_raw_layout() {
        let (_t, _d, backend, raw) = setup(false);
        let flat: Vec<u8> = raw.concat();
        assert_eq!(backend.len(), flat.len() as u64);
        // Whole-file sequential read crossing all blocks (including the
        // empty one).
        let mut all = vec![0u8; flat.len()];
        backend.read_at(0, &mut all, Access::Sequential).unwrap();
        assert_eq!(all, flat);
        // Arbitrary partial reads, including block-straddling ones.
        for (off, n) in [(0usize, 7), (1197, 10), (3, 1200), (1300, 50)] {
            let mut buf = vec![0u8; n];
            backend.read_at(off as u64, &mut buf, Access::Random).unwrap();
            assert_eq!(buf, &flat[off..off + n], "offset {off} len {n}");
        }
        // Out-of-bounds reads are rejected like any backend.
        let mut buf = [0u8; 8];
        assert!(matches!(
            backend.read_at(flat.len() as u64 - 4, &mut buf, Access::Random),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn partial_reads_bill_encoded_bytes_once_then_hit_cache() {
        let (_t, dir, backend, raw) = setup(false);
        dir.tracker().reset();
        let mut buf = [0u8; 8];
        backend.read_at(100, &mut buf, Access::Random).unwrap();
        let billed = dir.tracker().snapshot().rand_read_bytes;
        let enc0 = backend.spans[0].encoded_len;
        assert_eq!(billed, enc0, "miss bills the block's encoded bytes");
        assert!(enc0 < raw[0].len() as u64, "payload actually compressed");
        // Re-reads of the same block are decoded-cache hits: free.
        for off in [0u64, 40, 1100] {
            backend.read_at(off, &mut buf, Access::Random).unwrap();
        }
        assert_eq!(dir.tracker().snapshot().rand_read_bytes, billed);
        let s = backend.cache_stats();
        assert_eq!((s.hits, s.misses), (3, 1));
    }

    #[test]
    fn sequential_full_block_reads_stay_uncached() {
        let (_t, dir, backend, raw) = setup(false);
        dir.tracker().reset();
        let mut buf = vec![0u8; raw[0].len()];
        backend.read_at(0, &mut buf, Access::Sequential).unwrap();
        backend.read_at(0, &mut buf, Access::Sequential).unwrap();
        // Streams bill their encoded bytes every pass (out-of-core
        // model: a stream does not pollute the decoded cache).
        assert_eq!(dir.tracker().snapshot().seq_read_bytes, 2 * backend.spans[0].encoded_len);
        assert_eq!(backend.cache_stats().hits, 0);
    }

    #[test]
    fn verification_catches_encoded_corruption_for_partial_reads() {
        let (tmp, dir, backend, _raw) = setup(true);
        // Flip one byte inside block 2's *encoded* payload on disk.
        let path = tmp.path().join("s/b.edges");
        let mut bytes = std::fs::read(&path).unwrap();
        let off = backend.spans[2].encoded_offset as usize + 1;
        bytes[off] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        // A *partial* (2-record) read of the damaged block is detected:
        // encoded-payload CRCs cover every read shape.
        let mut buf = [0u8; 8];
        let err = backend.read_at(backend.spans[2].decoded_offset, &mut buf, Access::Random);
        match err {
            Err(StorageError::ChecksumMismatch { block, offset, .. }) => {
                assert_eq!(block, (2, 0));
                assert_eq!(offset, backend.spans[2].encoded_offset);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        assert_eq!(dir.resilience().snapshot().checksum_failures, 1);
        // Undamaged blocks still read clean.
        backend.read_at(0, &mut buf, Access::Random).unwrap();
    }

    #[test]
    fn decode_failure_is_reported_as_corruption() {
        let (tmp, _dir, backend, _raw) = setup(false);
        // Truncate block 2's varint stream by overwriting its tail with
        // continuation bytes; CRC is off, so the decoder sees it.
        let path = tmp.path().join("s/b.edges");
        let mut bytes = std::fs::read(&path).unwrap();
        let span = backend.spans[2];
        for b in &mut bytes
            [span.encoded_offset as usize..(span.encoded_offset + span.encoded_len) as usize]
        {
            *b = 0x80;
        }
        std::fs::write(&path, &bytes).unwrap();
        let mut buf = vec![0u8; span.decoded_len as usize];
        let err = backend.read_at(span.decoded_offset, &mut buf, Access::Sequential).unwrap_err();
        assert!(matches!(&err, StorageError::Corrupt(m) if m.contains("delta-varint")), "{err}");
        assert!(err.is_corruption());
    }
}
