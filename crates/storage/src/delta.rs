//! On-disk delta runs: the spilled form of the dynamic-graph write
//! buffer (LSM-style streaming ingest, DESIGN.md §11).
//!
//! A *delta run* is one immutable, sorted batch of edge updates —
//! inserts and tombstoned deletes — grouped by the `(i, j)` edge block
//! of the base graph they touch. Runs are written once when the
//! in-memory memtable crosses its budget, listed in the directory's
//! `MANIFEST` (`run` lines), merged newest-first into every read of
//! the blocks they touch, and folded away by compaction. The
//! byte-level layout is specified in `docs/FORMAT.md` § "Delta runs"
//! and mirrored by the `docs_sync` test.
//!
//! ```
//! use hus_storage::delta::{DeltaRecord, DeltaRun};
//! use hus_storage::StorageDir;
//!
//! let tmp = tempfile::tempdir()?;
//! let dir = StorageDir::create(tmp.path())?;
//! let mut run = DeltaRun::new(1, 4);
//! run.push(0, 0, DeltaRecord::insert(0, 1, 1.0));
//! run.push(0, 0, DeltaRecord::tombstone(2, 1));
//! let name = run.write_to(&dir)?;
//! assert_eq!(name, "delta_000001.run");
//! let back = DeltaRun::load_from(&dir, &name)?;
//! assert_eq!(back.record_count(), 2);
//! # Ok::<(), hus_storage::StorageError>(())
//! ```

use crate::checksum::crc32c;
use crate::durable;
use crate::error::{Result, StorageError};
use crate::tracker::Access;
use crate::StorageDir;
use std::collections::BTreeMap;

/// Magic number opening a delta-run file: the bytes `HUSD` read as a
/// little-endian `u32`.
pub const DELTA_MAGIC: u32 = u32::from_le_bytes(*b"HUSD");

/// Version of the delta-run layout described in `docs/FORMAT.md`.
pub const DELTA_VERSION: u16 = 1;

/// Fixed header size: magic (4) + version (2) + codec id (2) + `P` (4)
/// + block-section count (4) + sequence number (8) + total record
///   count (8).
pub const DELTA_HEADER_BYTES: u64 = 32;

/// One block-directory entry: `i` (4) + `j` (4) + payload offset (8) +
/// record count (8) + payload CRC-32C (4).
pub const DELTA_DIR_ENTRY_BYTES: u64 = 28;

/// One update record on disk: `src` (4) + `dst` (4) + weight `f32` (4)
/// + flags (4, bit 0 = tombstone, rest must be zero).
pub const DELTA_RECORD_BYTES: u64 = 16;

/// Flags bit marking a record as a delete tombstone.
const FLAG_TOMBSTONE: u32 = 1;

/// One edge update inside a delta run.
///
/// Records are keyed by `(src, dst)`; within a block section they are
/// stored sorted by that key with no duplicates. A tombstone's weight
/// is stored as `0.0` and ignored by readers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaRecord {
    /// Global source vertex id.
    pub src: u32,
    /// Global destination vertex id.
    pub dst: u32,
    /// Edge weight (inserts into weighted graphs; `0.0` on tombstones
    /// and ignored for unweighted graphs).
    pub weight: f32,
    /// `true` for a delete tombstone, `false` for an insert/update.
    pub tombstone: bool,
}

impl DeltaRecord {
    /// An insert (or weight-update) record.
    pub fn insert(src: u32, dst: u32, weight: f32) -> Self {
        DeltaRecord { src, dst, weight, tombstone: false }
    }

    /// A delete tombstone.
    pub fn tombstone(src: u32, dst: u32) -> Self {
        DeltaRecord { src, dst, weight: 0.0, tombstone: true }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        let w = if self.tombstone { 0.0 } else { self.weight };
        out.extend_from_slice(&w.to_le_bytes());
        let flags = if self.tombstone { FLAG_TOMBSTONE } else { 0 };
        out.extend_from_slice(&flags.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let src = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let dst = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let weight = f32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if flags & !FLAG_TOMBSTONE != 0 {
            return Err(StorageError::Corrupt(format!(
                "delta record ({src}, {dst}) carries unknown flags 0x{flags:08X}"
            )));
        }
        Ok(DeltaRecord { src, dst, weight, tombstone: flags & FLAG_TOMBSTONE != 0 })
    }
}

/// One decoded delta run: a sorted batch of updates grouped by the
/// `(i, j)` base-graph block they touch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRun {
    /// Monotonic sequence number; higher sequences are newer and win
    /// merges. Also determines the file name ([`DeltaRun::file_name`]).
    pub seq: u64,
    /// Interval count `P` of the base graph the run was written
    /// against; readers reject runs whose `P` disagrees with
    /// `meta.json` (a run cannot outlive a repartitioning rebuild).
    pub p: u32,
    /// Per-block update records, keyed by `(i, j)`, each section
    /// sorted by `(src, dst)` with no duplicate keys.
    pub blocks: BTreeMap<(u32, u32), Vec<DeltaRecord>>,
}

impl DeltaRun {
    /// An empty run with the given sequence number against a `P`-way
    /// partitioned base graph.
    pub fn new(seq: u64, p: u32) -> Self {
        DeltaRun { seq, p, blocks: BTreeMap::new() }
    }

    /// Append a record to block `(i, j)`. Callers append in sorted
    /// `(src, dst)` order per block; [`DeltaRun::encode`] rejects
    /// unsorted or duplicate-keyed sections.
    pub fn push(&mut self, i: u32, j: u32, rec: DeltaRecord) {
        self.blocks.entry((i, j)).or_default().push(rec);
    }

    /// Total number of records across every block section.
    pub fn record_count(&self) -> u64 {
        self.blocks.values().map(|v| v.len() as u64).sum()
    }

    /// The run's on-disk file name, `delta_<seq:06>.run`.
    pub fn file_name(&self) -> String {
        run_file(self.seq)
    }

    /// Serialize to the on-disk layout (see `docs/FORMAT.md` § "Delta
    /// runs"): header, block directory, per-block record payloads, and
    /// a trailing CRC-32C over every preceding byte.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let dir_len = self.blocks.len() as u64 * DELTA_DIR_ENTRY_BYTES;
        let payload_len = self.record_count() * DELTA_RECORD_BYTES;
        let total = DELTA_HEADER_BYTES + dir_len + payload_len + 4;
        let mut out = Vec::with_capacity(total as usize);
        out.extend_from_slice(&DELTA_MAGIC.to_le_bytes());
        out.extend_from_slice(&DELTA_VERSION.to_le_bytes());
        out.extend_from_slice(&hus_codec::CODEC_RAW.to_le_bytes());
        out.extend_from_slice(&self.p.to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.record_count().to_le_bytes());
        debug_assert_eq!(out.len() as u64, DELTA_HEADER_BYTES);

        // Encode payloads first so the directory can carry their CRCs.
        let mut payloads = Vec::with_capacity(payload_len as usize);
        let mut entries = Vec::with_capacity(self.blocks.len());
        for (&(i, j), recs) in &self.blocks {
            if i >= self.p || j >= self.p {
                return Err(StorageError::Corrupt(format!(
                    "delta run {}: block ({i}, {j}) outside a {}x{} grid",
                    self.seq, self.p, self.p
                )));
            }
            let start = payloads.len() as u64;
            for (k, rec) in recs.iter().enumerate() {
                if k > 0 {
                    let prev = &recs[k - 1];
                    if (prev.src, prev.dst) >= (rec.src, rec.dst) {
                        return Err(StorageError::Corrupt(format!(
                            "delta run {}: block ({i}, {j}) not sorted by (src, dst) \
                             or holds duplicate keys",
                            self.seq
                        )));
                    }
                }
                rec.encode_into(&mut payloads);
            }
            let payload = &payloads[start as usize..];
            entries.push((i, j, start, recs.len() as u64, crc32c(payload)));
        }
        for (i, j, offset, count, crc) in entries {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&j.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&crc.to_le_bytes());
        }
        out.extend_from_slice(&payloads);
        let trailer = crc32c(&out);
        out.extend_from_slice(&trailer.to_le_bytes());
        debug_assert_eq!(out.len() as u64, total);
        Ok(out)
    }

    /// Parse and fully validate a run from its exact byte image:
    /// trailer CRC first (distinguishing torn writes from misparses),
    /// then magic, version, codec, counts, per-block CRCs and
    /// per-block `(src, dst)` sortedness.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let fixed = DELTA_HEADER_BYTES as usize + 4;
        if bytes.len() < fixed {
            return Err(StorageError::Corrupt(format!(
                "delta run truncated: {} bytes, need at least {fixed}",
                bytes.len()
            )));
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let actual = crc32c(body);
        if stored != actual {
            return Err(StorageError::Corrupt(format!(
                "delta run trailer self-check failed: stored 0x{stored:08X}, \
                 computed 0x{actual:08X}"
            )));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != DELTA_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "bad delta-run magic 0x{magic:08X} (expected 0x{DELTA_MAGIC:08X})"
            )));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != DELTA_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported delta-run version {version} (expected {DELTA_VERSION})"
            )));
        }
        let codec = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        if codec != hus_codec::CODEC_RAW {
            return Err(StorageError::Corrupt(format!(
                "unsupported delta-run codec id {codec} (version {DELTA_VERSION} \
                 runs are always raw)"
            )));
        }
        let p = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let block_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let seq = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let record_count = u64::from_le_bytes(bytes[24..32].try_into().unwrap());

        let dir_end = DELTA_HEADER_BYTES + block_count as u64 * DELTA_DIR_ENTRY_BYTES;
        let want = dir_end + record_count * DELTA_RECORD_BYTES + 4;
        if bytes.len() as u64 != want {
            return Err(StorageError::Corrupt(format!(
                "delta run {seq}: length {} does not match {block_count} blocks / \
                 {record_count} records (expected {want})",
                bytes.len()
            )));
        }
        let payloads = &bytes[dir_end as usize..bytes.len() - 4];
        let mut blocks = BTreeMap::new();
        let mut seen = 0u64;
        for e in 0..block_count {
            let at = DELTA_HEADER_BYTES as usize + e * DELTA_DIR_ENTRY_BYTES as usize;
            let i = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let j = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            let count = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[at + 24..at + 28].try_into().unwrap());
            if i >= p || j >= p {
                return Err(StorageError::Corrupt(format!(
                    "delta run {seq}: block ({i}, {j}) outside a {p}x{p} grid"
                )));
            }
            if offset != seen * DELTA_RECORD_BYTES {
                return Err(StorageError::Corrupt(format!(
                    "delta run {seq}: block ({i}, {j}) payload offset {offset} is not \
                     contiguous"
                )));
            }
            let start = offset as usize;
            let end = start + (count * DELTA_RECORD_BYTES) as usize;
            let payload = payloads.get(start..end).ok_or_else(|| {
                StorageError::Corrupt(format!(
                    "delta run {seq}: block ({i}, {j}) payload overruns the file"
                ))
            })?;
            let actual = crc32c(payload);
            if actual != crc {
                return Err(StorageError::Corrupt(format!(
                    "delta run {seq}: block ({i}, {j}) payload CRC mismatch \
                     (stored 0x{crc:08X}, computed 0x{actual:08X})"
                )));
            }
            let mut recs = Vec::with_capacity(count as usize);
            for chunk in payload.chunks_exact(DELTA_RECORD_BYTES as usize) {
                let rec = DeltaRecord::decode(chunk)?;
                if let Some(prev) = recs.last() {
                    let prev: &DeltaRecord = prev;
                    if (prev.src, prev.dst) >= (rec.src, rec.dst) {
                        return Err(StorageError::Corrupt(format!(
                            "delta run {seq}: block ({i}, {j}) records not sorted by \
                             (src, dst)"
                        )));
                    }
                }
                recs.push(rec);
            }
            seen += count;
            if blocks.insert((i, j), recs).is_some() {
                return Err(StorageError::Corrupt(format!(
                    "delta run {seq}: duplicate directory entry for block ({i}, {j})"
                )));
            }
        }
        if seen != record_count {
            return Err(StorageError::Corrupt(format!(
                "delta run {seq}: directory counts {seen} records, header says \
                 {record_count}"
            )));
        }
        Ok(DeltaRun { seq, p, blocks })
    }

    /// Durably write the run into `dir` under its canonical name via a
    /// same-directory temporary file and atomic rename: a crash mid
    /// write leaves only a `.tmp` orphan (never a torn run), which
    /// `hus fsck --repair` quarantines. Returns the committed file
    /// name. Not billed as data I/O (runs are written cold, like
    /// shards during a build).
    pub fn write_to(&self, dir: &StorageDir) -> Result<String> {
        let name = self.file_name();
        let bytes = self.encode()?;
        // Routed through the directory's write-fault injector (when
        // configured): a drawn fault damages only the tmp file, which
        // the caller's rollback quarantines.
        let tmp_name = format!("{name}.tmp");
        dir.durable_write(&tmp_name, &bytes)?;
        let tmp = dir.path(&tmp_name);
        durable::crash_point("delta.run_tmp");
        let dst = dir.path(&name);
        std::fs::rename(&tmp, &dst).map_err(|e| StorageError::io_at(&dst, e))?;
        durable::sync_parent_dir(&dst)?;
        Ok(name)
    }

    /// Read and fully validate a run file through the directory's
    /// tracked reader (billed sequential — a run is always consumed
    /// whole).
    pub fn load_from(dir: &StorageDir, name: &str) -> Result<Self> {
        let reader = dir.reader(name)?;
        let mut bytes = vec![0u8; reader.len() as usize];
        if !bytes.is_empty() {
            reader.read_at(0, &mut bytes, Access::Sequential)?;
        }
        Self::decode(&bytes)
            .map_err(|e| StorageError::Corrupt(format!("{}: {e}", dir.path(name).display())))
    }

    /// The trailing self-CRC of an encoded run — the last four bytes,
    /// a fingerprint of the whole file recorded in `MANIFEST` `run`
    /// lines.
    pub fn trailer_crc(bytes: &[u8]) -> Option<u32> {
        let n = bytes.len();
        if n < 4 {
            return None;
        }
        Some(u32::from_le_bytes(bytes[n - 4..].try_into().unwrap()))
    }
}

/// Canonical delta-run file name for a sequence number:
/// `delta_<seq:06>.run` (zero-padded so lexicographic order is
/// sequence order).
pub fn run_file(seq: u64) -> String {
    format!("delta_{seq:06}.run")
}

/// Parse a delta-run file name back to its sequence number; `None` for
/// anything that is not a well-formed run name.
pub fn parse_run_file(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("delta_")?.strip_suffix(".run")?;
    if digits.len() < 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeltaRun {
        let mut run = DeltaRun::new(3, 4);
        run.push(0, 0, DeltaRecord::insert(0, 1, 1.5));
        run.push(0, 0, DeltaRecord::tombstone(1, 0));
        run.push(2, 1, DeltaRecord::insert(9, 5, 0.25));
        run
    }

    #[test]
    fn roundtrip() {
        let run = sample();
        let bytes = run.encode().unwrap();
        assert_eq!(
            bytes.len() as u64,
            DELTA_HEADER_BYTES + 2 * DELTA_DIR_ENTRY_BYTES + 3 * DELTA_RECORD_BYTES + 4
        );
        let back = DeltaRun::decode(&bytes).unwrap();
        assert_eq!(back, run);
        assert_eq!(back.record_count(), 3);
    }

    #[test]
    fn tombstone_weight_is_normalized_to_zero() {
        let mut run = DeltaRun::new(1, 1);
        run.push(0, 0, DeltaRecord { src: 0, dst: 1, weight: 7.0, tombstone: true });
        let back = DeltaRun::decode(&run.encode().unwrap()).unwrap();
        assert_eq!(back.blocks[&(0, 0)][0].weight, 0.0);
    }

    #[test]
    fn file_naming_roundtrips() {
        assert_eq!(run_file(1), "delta_000001.run");
        assert_eq!(run_file(1_234_567), "delta_1234567.run");
        assert_eq!(parse_run_file("delta_000042.run"), Some(42));
        assert_eq!(parse_run_file("delta_1234567.run"), Some(1_234_567));
        assert_eq!(parse_run_file("delta_42.run"), None, "underpadded");
        assert_eq!(parse_run_file("out_0.edges"), None);
        assert_eq!(parse_run_file("delta_00000x.run"), None);
    }

    #[test]
    fn unsorted_section_is_rejected_at_encode_and_decode() {
        let mut run = DeltaRun::new(1, 2);
        run.push(0, 0, DeltaRecord::insert(5, 5, 1.0));
        run.push(0, 0, DeltaRecord::insert(1, 1, 1.0));
        assert!(run.encode().unwrap_err().to_string().contains("sorted"));
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let bytes = sample().encode().unwrap();
        for pos in [0, 5, 12, DELTA_HEADER_BYTES as usize + 3, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(DeltaRun::decode(&bad).is_err(), "flip at {pos} undetected");
        }
    }

    #[test]
    fn out_of_grid_block_is_rejected() {
        let mut run = DeltaRun::new(1, 2);
        run.push(7, 0, DeltaRecord::insert(0, 1, 1.0));
        assert!(run.encode().unwrap_err().to_string().contains("grid"));
    }

    #[test]
    fn write_and_load_through_storage_dir() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let run = sample();
        let name = run.write_to(&dir).unwrap();
        assert_eq!(name, "delta_000003.run");
        assert!(dir.exists(&name));
        assert!(!dir.exists(&format!("{name}.tmp")), "tmp renamed away");
        let back = DeltaRun::load_from(&dir, &name).unwrap();
        assert_eq!(back, run);
        // The trailing CRC is the fingerprint MANIFEST records.
        let bytes = std::fs::read(dir.path(&name)).unwrap();
        let trailer = DeltaRun::trailer_crc(&bytes).unwrap();
        assert_eq!(trailer, crc32c(&bytes[..bytes.len() - 4]));
    }

    #[test]
    fn empty_run_roundtrips() {
        let run = DeltaRun::new(9, 8);
        let back = DeltaRun::decode(&run.encode().unwrap()).unwrap();
        assert_eq!(back, run);
        assert_eq!(back.record_count(), 0);
    }
}
