//! CRC32C block checksums and the shard footer format.
//!
//! Every shard and index file written by a checksum-aware builder carries a
//! small *footer* after its payload bytes: one CRC32C per block (the file's
//! `P` blocks, in block order) plus a self-checksummed trailer. Readers that
//! know the block boundaries (from the manifest) can verify any full-block
//! read against the stored CRC and report corruption down to the exact
//! block and byte offset. See `docs/FORMAT.md` § "Checksum footer" for the
//! byte-level layout.
//!
//! The CRC is CRC-32C (Castagnoli, polynomial `0x1EDC6F41`), the same
//! checksum used by iSCSI, ext4 and Btrfs, implemented here in software so
//! the workspace stays dependency-free.
//!
//! ```
//! use hus_storage::checksum::crc32c;
//! // The canonical CRC-32C test vector.
//! assert_eq!(crc32c(b"123456789"), 0xE306_9283);
//! ```

use crate::error::{Result, StorageError};
use std::io::Write;
use std::path::Path;

/// Magic number opening a shard footer: the bytes `HUSC` read as a
/// little-endian `u32`.
pub const FOOTER_MAGIC: u32 = u32::from_le_bytes(*b"HUSC");

/// Version of the footer layout described in `docs/FORMAT.md`.
/// Version 2 repurposed the reserved flags field as the codec id.
pub const FOOTER_VERSION: u16 = 2;

/// Footer bytes independent of the block count: magic (4) + version (2) +
/// codec id (2) + block count (4) + trailing footer CRC (4).
pub const FOOTER_FIXED_BYTES: u64 = 16;

/// Reflected CRC-32C polynomial (Castagnoli).
const POLY: u32 = 0x82F6_3B78;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC-32C hasher for streaming writers.
///
/// ```
/// use hus_storage::checksum::{crc32c, Crc32c};
/// let mut h = Crc32c::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finish(), crc32c(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32c { state: 0xFFFF_FFFF }
    }

    /// Feed more payload bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// Final checksum of everything fed so far (does not consume; further
    /// `update` calls continue the stream).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32C of a byte slice.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finish()
}

/// Total footer length in bytes for a file holding `blocks` blocks.
pub fn footer_len(blocks: usize) -> u64 {
    FOOTER_FIXED_BYTES + 4 * blocks as u64
}

/// Decoded per-block checksum footer of one shard or index file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFooter {
    /// CRC-32C of each block's *on-disk* (encoded) payload bytes, in
    /// block order.
    pub crcs: Vec<u32>,
    /// Wire id of the codec the payload blocks are encoded with
    /// (`hus_codec::CODEC_RAW` for index files and uncompressed
    /// shards). Readers cross-check this against `meta.json` so a
    /// mismatched manifest is detected before any block is decoded.
    pub codec: u16,
}

impl ShardFooter {
    /// Footer over the given per-block checksums, for a raw-encoded
    /// payload.
    pub fn new(crcs: Vec<u32>) -> Self {
        ShardFooter { crcs, codec: hus_codec::CODEC_RAW }
    }

    /// Footer over the given per-block checksums with an explicit
    /// codec id.
    pub fn with_codec(crcs: Vec<u32>, codec: u16) -> Self {
        ShardFooter { crcs, codec }
    }

    /// Serialize to the on-disk layout (see `docs/FORMAT.md`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(footer_len(self.crcs.len()) as usize);
        out.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        out.extend_from_slice(&FOOTER_VERSION.to_le_bytes());
        out.extend_from_slice(&self.codec.to_le_bytes());
        out.extend_from_slice(&(self.crcs.len() as u32).to_le_bytes());
        for crc in &self.crcs {
            out.extend_from_slice(&crc.to_le_bytes());
        }
        let trailer = crc32c(&out);
        out.extend_from_slice(&trailer.to_le_bytes());
        out
    }

    /// Parse a footer from its exact byte image.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let fixed = FOOTER_FIXED_BYTES as usize;
        if bytes.len() < fixed {
            return Err(StorageError::Corrupt(format!(
                "shard footer truncated: {} bytes, need at least {fixed}",
                bytes.len()
            )));
        }
        let body = &bytes[..bytes.len() - 4];
        let stored_trailer = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let actual_trailer = crc32c(body);
        if stored_trailer != actual_trailer {
            return Err(StorageError::Corrupt(format!(
                "shard footer self-check failed: stored 0x{stored_trailer:08X}, computed 0x{actual_trailer:08X}"
            )));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != FOOTER_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "bad shard footer magic 0x{magic:08X} (expected 0x{FOOTER_MAGIC:08X})"
            )));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != FOOTER_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported shard footer version {version} (expected {FOOTER_VERSION})"
            )));
        }
        let codec = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if bytes.len() != footer_len(count) as usize {
            return Err(StorageError::Corrupt(format!(
                "shard footer length {} does not match block count {count}",
                bytes.len()
            )));
        }
        let crcs = bytes[12..12 + 4 * count]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(ShardFooter { crcs, codec })
    }

    /// Append this footer to an existing payload file. The write is *not*
    /// billed to any tracker: the footer is integrity metadata, like the
    /// manifest, not modeled data I/O.
    pub fn append_to(&self, path: &Path) -> Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| StorageError::io_at(path, e))?;
        f.write_all(&self.encode()).map_err(|e| StorageError::io_at(path, e))?;
        f.sync_data().map_err(|e| StorageError::io_at(path, e))?;
        Ok(())
    }

    /// Read and validate the footer at the end of `path`, expecting
    /// `blocks` per-block checksums.
    pub fn read_from(path: &Path, blocks: usize) -> Result<Self> {
        let want = footer_len(blocks);
        let bytes = std::fs::read(path).map_err(|e| StorageError::io_at(path, e))?;
        if (bytes.len() as u64) < want {
            return Err(StorageError::Corrupt(format!(
                "{}: file too short ({} bytes) for a {blocks}-block checksum footer ({want} bytes)",
                path.display(),
                bytes.len()
            )));
        }
        let footer = Self::decode(&bytes[bytes.len() - want as usize..])
            .map_err(|e| StorageError::Corrupt(format!("{}: {e}", path.display())))?;
        Ok(footer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical CRC-32C vectors (RFC 3720 appendix B.4 style).
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut h = Crc32c::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32c(&data));
    }

    #[test]
    fn footer_roundtrip() {
        let f = ShardFooter::new(vec![0xDEAD_BEEF, 0, 42]);
        let bytes = f.encode();
        assert_eq!(bytes.len() as u64, footer_len(3));
        assert_eq!(ShardFooter::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn footer_records_the_codec_id() {
        let f = ShardFooter::with_codec(vec![1, 2], hus_codec::CODEC_DELTA_VARINT);
        let bytes = f.encode();
        // The codec id sits in the former reserved-flags slot.
        assert_eq!(u16::from_le_bytes(bytes[6..8].try_into().unwrap()), f.codec);
        let back = ShardFooter::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(ShardFooter::new(vec![1]).codec, hus_codec::CODEC_RAW);
    }

    #[test]
    fn footer_detects_its_own_corruption() {
        let f = ShardFooter::new(vec![1, 2, 3, 4]);
        let mut bytes = f.encode();
        bytes[13] ^= 0x40; // flip a bit inside a stored CRC
        let err = ShardFooter::decode(&bytes).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
    }

    #[test]
    fn footer_rejects_bad_magic_and_version() {
        let f = ShardFooter::new(vec![7]);
        let mut bad_magic = f.encode();
        bad_magic[0] ^= 0xFF;
        // Re-seal the trailer so only the magic is wrong.
        let n = bad_magic.len();
        let t = crc32c(&bad_magic[..n - 4]);
        bad_magic[n - 4..].copy_from_slice(&t.to_le_bytes());
        assert!(ShardFooter::decode(&bad_magic).unwrap_err().to_string().contains("magic"));

        let mut bad_ver = f.encode();
        bad_ver[4] = 0x7F;
        let t = crc32c(&bad_ver[..n - 4]);
        bad_ver[n - 4..].copy_from_slice(&t.to_le_bytes());
        assert!(ShardFooter::decode(&bad_ver).unwrap_err().to_string().contains("version"));
    }

    #[test]
    fn append_and_read_from_file() {
        let tmp = tempfile::tempdir().unwrap();
        let p = tmp.path().join("x.edges");
        std::fs::write(&p, [9u8; 100]).unwrap();
        let f = ShardFooter::new(vec![crc32c(&[9u8; 60]), crc32c(&[9u8; 40])]);
        f.append_to(&p).unwrap();
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 100 + footer_len(2));
        assert_eq!(ShardFooter::read_from(&p, 2).unwrap(), f);
        // Wrong expected block count is rejected.
        assert!(ShardFooter::read_from(&p, 3).is_err());
    }
}
