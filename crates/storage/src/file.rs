//! Positioned-read file backend and a read/write tracked file handle.

use crate::error::{Result, StorageError};
use crate::tracker::{Access, IoTracker};
use crate::{RangeRead, ReadBackend};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Per-access-class `pread` latency in nanoseconds.
static READ_NS_SEQ: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.file.read_ns.seq");
static READ_NS_RAND: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.file.read_ns.rand");
static READ_NS_BATCHED: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.file.read_ns.batched");
/// `pwrite` latency in nanoseconds.
static WRITE_NS: hus_obs::LazyHistogram = hus_obs::LazyHistogram::new("storage.file.write_ns");

fn read_latency_hist(access: Access) -> &'static hus_obs::LazyHistogram {
    match access {
        Access::Sequential => &READ_NS_SEQ,
        Access::Random => &READ_NS_RAND,
        Access::Batched => &READ_NS_BATCHED,
    }
}

/// Read-only backend over a plain file using positioned (`pread`) reads.
///
/// Safe for concurrent use from many threads: positioned reads carry their
/// own offset and never touch the shared file cursor.
pub struct FileBackend {
    path: PathBuf,
    file: File,
    len: u64,
    tracker: Arc<IoTracker>,
}

impl FileBackend {
    /// Open `path` read-only, attributing traffic to `tracker`.
    pub fn open(path: impl AsRef<Path>, tracker: Arc<IoTracker>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|e| StorageError::io_at(&path, e))?;
        let len = file.metadata().map_err(|e| StorageError::io_at(&path, e))?.len();
        Ok(FileBackend { path, file, len, tracker })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl ReadBackend for FileBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        let want = buf.len() as u64;
        if offset + want > self.len {
            return Err(StorageError::OutOfBounds { offset, len: want, file_len: self.len });
        }
        let t0 = hus_obs::latency_timer();
        self.file.read_exact_at(buf, offset).map_err(|e| StorageError::io_at(&self.path, e))?;
        read_latency_hist(access).record_elapsed(t0);
        self.tracker.record_read(access, want);
        Ok(())
    }

    /// Multi-range read as one spanning `pread`: the disk head travels
    /// the run once (the elevator pass a real scheduler would make from
    /// the same queue), the requested slices are scattered out of the
    /// spanning buffer, and the *requested* bytes are billed as a single
    /// tracked operation — same bytes modeled, one syscall.
    fn read_ranges(&self, ranges: &mut [RangeRead<'_>], access: Access) -> Result<()> {
        crate::debug_assert_ranges_sorted(ranges);
        match ranges {
            [] => return Ok(()),
            [only] => return self.read_at(only.offset, only.buf, access),
            _ => {}
        }
        let mut span_lo = u64::MAX;
        let mut span_hi = 0u64;
        let mut requested = 0u64;
        for r in ranges.iter() {
            let end = r.offset + r.buf.len() as u64;
            if end > self.len {
                return Err(StorageError::OutOfBounds {
                    offset: r.offset,
                    len: r.buf.len() as u64,
                    file_len: self.len,
                });
            }
            span_lo = span_lo.min(r.offset);
            span_hi = span_hi.max(end);
            requested += r.buf.len() as u64;
        }
        if requested == 0 {
            return Ok(());
        }
        let mut span = vec![0u8; (span_hi - span_lo) as usize];
        let t0 = hus_obs::latency_timer();
        self.file
            .read_exact_at(&mut span, span_lo)
            .map_err(|e| StorageError::io_at(&self.path, e))?;
        read_latency_hist(access).record_elapsed(t0);
        for r in ranges.iter_mut() {
            let s = (r.offset - span_lo) as usize;
            r.buf.copy_from_slice(&span[s..s + r.buf.len()]);
        }
        self.tracker.record_read(access, requested);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// A read-write file handle with tracked positioned reads and writes.
///
/// Used by engines for vertex-value stores that are updated in place
/// (e.g. swapping `S_i`/`D_i` interval values back to disk).
pub struct TrackedFile {
    path: PathBuf,
    file: File,
    len: AtomicU64,
    tracker: Arc<IoTracker>,
}

impl TrackedFile {
    /// Open (creating if needed) `path` for read/write access.
    pub fn open_rw(path: impl AsRef<Path>, tracker: Arc<IoTracker>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| StorageError::io_at(&path, e))?;
        let len = file.metadata().map_err(|e| StorageError::io_at(&path, e))?.len();
        Ok(TrackedFile { path, file, len: AtomicU64::new(len), tracker })
    }

    /// Write `data` at `offset`, growing the file if needed.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let t0 = hus_obs::latency_timer();
        self.file.write_all_at(data, offset).map_err(|e| StorageError::io_at(&self.path, e))?;
        WRITE_NS.record_elapsed(t0);
        self.tracker.record_write(data.len() as u64);
        let end = offset + data.len() as u64;
        self.len.fetch_max(end, Ordering::Relaxed);
        Ok(())
    }

    /// Pre-size the file to `len` bytes (not billed as data I/O).
    pub fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len).map_err(|e| StorageError::io_at(&self.path, e))?;
        self.len.store(len, Ordering::Relaxed);
        Ok(())
    }

    /// Flush file contents to the OS.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data().map_err(|e| StorageError::io_at(&self.path, e))
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl ReadBackend for TrackedFile {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        let want = buf.len() as u64;
        let len = self.len.load(Ordering::Relaxed);
        if offset + want > len {
            return Err(StorageError::OutOfBounds { offset, len: want, file_len: len });
        }
        let t0 = hus_obs::latency_timer();
        self.file.read_exact_at(buf, offset).map_err(|e| StorageError::io_at(&self.path, e))?;
        read_latency_hist(access).record_elapsed(t0);
        self.tracker.record_read(access, want);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(content: &[u8]) -> (tempfile::TempDir, PathBuf) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("data.bin");
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        (dir, path)
    }

    #[test]
    fn file_backend_reads_and_tracks() {
        let (_d, path) = tmp_file(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let tracker = Arc::new(IoTracker::new());
        let b = FileBackend::open(&path, Arc::clone(&tracker)).unwrap();
        assert_eq!(b.len(), 8);
        let mut buf = [0u8; 4];
        b.read_at(2, &mut buf, Access::Random).unwrap();
        assert_eq!(buf, [3, 4, 5, 6]);
        let s = tracker.snapshot();
        assert_eq!(s.rand_read_bytes, 4);
        assert_eq!(s.rand_read_ops, 1);
    }

    #[test]
    fn file_backend_rejects_out_of_bounds() {
        let (_d, path) = tmp_file(&[0u8; 10]);
        let b = FileBackend::open(&path, Arc::new(IoTracker::new())).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            b.read_at(8, &mut buf, Access::Sequential),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn read_ranges_scatters_one_spanning_read() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let (_d, path) = tmp_file(&data);
        let tracker = Arc::new(IoTracker::new());
        let b = FileBackend::open(&path, Arc::clone(&tracker)).unwrap();
        let (mut a, mut m, mut z) = ([0u8; 8], [0u8; 16], [0u8; 4]);
        let mut ranges = [
            RangeRead { offset: 10, buf: &mut a },
            RangeRead { offset: 100, buf: &mut m },
            RangeRead { offset: 500, buf: &mut z },
        ];
        b.read_ranges(&mut ranges, Access::Batched).unwrap();
        assert_eq!(a, data[10..18]);
        assert_eq!(m, data[100..116]);
        assert_eq!(z, data[500..504]);
        let s = tracker.snapshot();
        // Requested bytes billed, gap bytes not; one tracked op.
        assert_eq!(s.batched_read_bytes, 8 + 16 + 4);
        assert_eq!(s.batched_read_ops, 1);
    }

    #[test]
    fn read_ranges_rejects_out_of_bounds_before_reading() {
        let (_d, path) = tmp_file(&[0u8; 64]);
        let tracker = Arc::new(IoTracker::new());
        let b = FileBackend::open(&path, Arc::clone(&tracker)).unwrap();
        let (mut a, mut z) = ([0u8; 8], [0u8; 8]);
        let mut ranges =
            [RangeRead { offset: 0, buf: &mut a }, RangeRead { offset: 60, buf: &mut z }];
        assert!(matches!(
            b.read_ranges(&mut ranges, Access::Batched),
            Err(StorageError::OutOfBounds { .. })
        ));
        assert_eq!(tracker.snapshot().total_bytes(), 0);
    }

    #[test]
    fn tracked_file_write_then_read() {
        let dir = tempfile::tempdir().unwrap();
        let tracker = Arc::new(IoTracker::new());
        let f = TrackedFile::open_rw(dir.path().join("rw.bin"), Arc::clone(&tracker)).unwrap();
        f.write_at(0, &[9, 8, 7, 6]).unwrap();
        f.write_at(4, &[5, 4]).unwrap();
        assert_eq!(f.len(), 6);
        let mut buf = [0u8; 6];
        f.read_at(0, &mut buf, Access::Sequential).unwrap();
        assert_eq!(buf, [9, 8, 7, 6, 5, 4]);
        let s = tracker.snapshot();
        assert_eq!(s.write_bytes, 6);
        assert_eq!(s.write_ops, 2);
        assert_eq!(s.seq_read_bytes, 6);
    }

    #[test]
    fn tracked_file_set_len_grows_without_io_billing() {
        let dir = tempfile::tempdir().unwrap();
        let tracker = Arc::new(IoTracker::new());
        let f = TrackedFile::open_rw(dir.path().join("g.bin"), Arc::clone(&tracker)).unwrap();
        f.set_len(128).unwrap();
        assert_eq!(f.len(), 128);
        assert_eq!(tracker.snapshot().write_bytes, 0);
        let mut buf = [0u8; 128];
        f.read_at(0, &mut buf, Access::Sequential).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn tracked_file_reopens_existing() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("persist.bin");
        let tracker = Arc::new(IoTracker::new());
        {
            let f = TrackedFile::open_rw(&path, Arc::clone(&tracker)).unwrap();
            f.write_at(0, &[42; 16]).unwrap();
            f.sync().unwrap();
        }
        let f = TrackedFile::open_rw(&path, tracker).unwrap();
        assert_eq!(f.len(), 16);
        let mut buf = [0u8; 16];
        f.read_at(0, &mut buf, Access::Random).unwrap();
        assert_eq!(buf, [42; 16]);
    }
}
