//! A sharded LRU page cache over any [`ReadBackend`] — a controllable
//! stand-in for the OS page cache.
//!
//! Out-of-core evaluations (the paper gives every system an 8 GB memory
//! budget, §4.1) are really evaluations of what happens *below* the
//! cache. Wrapping a backend in a [`CachedBackend`] with a fixed byte
//! budget lets experiments model that budget explicitly: reads served
//! from cache are **not** billed to the tracker (they never reach the
//! device), and hit/miss counters expose the cache's effectiveness.
//!
//! Pages are fixed-size; a read spanning `k` pages touches each of them
//! (misses fetch whole pages from the inner backend — one page-sized
//! inner read per missing page, billed sequential/batched since a page
//! fetch is one contiguous transfer).
//!
//! The page map is split into power-of-two **shards**, each with its own
//! LRU clock, page table and stats, selected by the low bits of the page
//! number. Concurrent readers (parallel ROP rows, the COP prefetcher
//! pool) therefore contend only when they touch the same shard; the
//! `storage.cache.shard_contention` counter records how often a reader
//! found its shard lock held.

use crate::error::Result;
use crate::tracker::Access;
use crate::ReadBackend;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default page size (64 KiB — readahead-window sized).
pub const DEFAULT_PAGE_BYTES: usize = 64 << 10;

/// Upper bound on the default shard count (per-cache; explicit
/// [`CachedBackend::with_shards`] callers may exceed it).
pub const MAX_DEFAULT_SHARDS: usize = 64;

/// Process-wide cache effectiveness counters (sum across all caches).
/// The hit counter is flushed in [`GLOBAL_HIT_FLUSH`]-sized batches per
/// shard — a per-hit RMW on one shared cacheline would serialise the
/// very hit path sharding parallelises. Exact counts (including the
/// unflushed tail) live in each cache's [`CacheStats`].
static HITS: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.cache.hits");
static MISSES: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.cache.misses");
static EVICTIONS: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.cache.evictions");
/// Times a reader found its shard lock held by another thread.
static SHARD_CONTENTION: hus_obs::LazyCounter =
    hus_obs::LazyCounter::new("storage.cache.shard_contention");
/// Nanoseconds to fetch one page from the inner backend on a miss.
static PAGE_FETCH_NS: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.cache.page_fetch_ns");

/// Hits accumulated in a shard between flushes of the process-wide
/// [`HITS`] counter.
const GLOBAL_HIT_FLUSH: u64 = 1024;

/// Cache hit/miss counters (one shard's, or the aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Pages served from cache.
    pub hits: u64,
    /// Pages fetched from the inner backend.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of page touches served from cache.
    ///
    /// Returns 0.0 when no pages have been touched at all (`hits +
    /// misses == 0`) — an empty run has no hit rate, and callers that
    /// divide dashboards by it must not see `NaN`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Element-wise sum (used to aggregate shard stats).
    fn plus(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

struct PageEntry {
    data: Vec<u8>,
    /// Last-touch stamp for LRU eviction (shard-local clock).
    stamp: u64,
}

struct ShardState {
    pages: HashMap<u64, PageEntry>,
    stats: CacheStats,
}

struct Shard {
    clock: AtomicU64,
    max_pages: usize,
    state: Mutex<ShardState>,
}

impl Shard {
    fn new(max_pages: usize) -> Self {
        Shard {
            clock: AtomicU64::new(0),
            max_pages,
            state: Mutex::new(ShardState { pages: HashMap::new(), stats: CacheStats::default() }),
        }
    }

    /// Lock the shard, counting the times the lock was already held.
    fn lock(&self) -> parking_lot::MutexGuard<'_, ShardState> {
        match self.state.try_lock() {
            Some(guard) => guard,
            None => {
                SHARD_CONTENTION.incr();
                self.state.lock()
            }
        }
    }
}

/// Sharded LRU page cache wrapping an inner backend. See the module docs.
///
/// ```
/// use hus_storage::{Access, CachedBackend, ReadBackend, StorageDir};
///
/// let tmp = tempfile::tempdir().unwrap();
/// let dir = StorageDir::create(tmp.path().join("s")).unwrap();
/// let mut w = dir.writer("data.bin").unwrap();
/// w.write_all(&[7u8; 4096]).unwrap();
/// w.finish().unwrap();
///
/// let cached = CachedBackend::with_budget(dir.reader("data.bin").unwrap(), 1 << 20);
/// let mut buf = [0u8; 16];
/// cached.read_at(0, &mut buf, Access::Random).unwrap(); // miss: billed
/// cached.read_at(0, &mut buf, Access::Random).unwrap(); // hit: free
/// assert_eq!(cached.stats().hits, 1);
/// ```
pub struct CachedBackend<B> {
    inner: B,
    page_bytes: usize,
    shards: Vec<Shard>,
}

/// Largest power of two `<= n` (1 for `n == 0`).
fn floor_pow2(n: usize) -> usize {
    if n == 0 {
        1
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

fn default_shards() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.next_power_of_two().min(MAX_DEFAULT_SHARDS)
}

impl<B: ReadBackend> CachedBackend<B> {
    /// Cache up to `budget_bytes` of `inner` in `page_bytes` pages,
    /// sharded for the machine's core count.
    pub fn new(inner: B, budget_bytes: usize, page_bytes: usize) -> Self {
        Self::with_shards(inner, budget_bytes, page_bytes, default_shards())
    }

    /// Cache with the default page size and shard count.
    pub fn with_budget(inner: B, budget_bytes: usize) -> Self {
        Self::new(inner, budget_bytes, DEFAULT_PAGE_BYTES)
    }

    /// Cache with an explicit shard count, rounded up to a power of two
    /// and clamped so every shard holds at least one page without
    /// exceeding the byte budget (`shards <= total page budget`). Pass 1
    /// for the old single-lock behavior (deterministic global LRU).
    pub fn with_shards(inner: B, budget_bytes: usize, page_bytes: usize, shards: usize) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        let max_pages = (budget_bytes / page_bytes).max(1);
        let n = shards.max(1).next_power_of_two().min(floor_pow2(max_pages));
        let per_shard = (max_pages / n).max(1);
        CachedBackend { inner, page_bytes, shards: (0..n).map(|_| Shard::new(per_shard)).collect() }
    }

    /// Number of shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate hit/miss counters across all shards.
    pub fn stats(&self) -> CacheStats {
        self.shards.iter().fold(CacheStats::default(), |acc, s| acc.plus(&s.state.lock().stats))
    }

    /// Per-shard hit/miss counters, in shard order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(|s| s.state.lock().stats).collect()
    }

    /// Drop every cached page in every shard (counters survive).
    pub fn clear(&self) {
        for s in &self.shards {
            s.state.lock().pages.clear();
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn shard_of(&self, page: u64) -> &Shard {
        &self.shards[page as usize & (self.shards.len() - 1)]
    }

    fn load_page(&self, page: u64, access: Access) -> Result<Vec<u8>> {
        let start = page * self.page_bytes as u64;
        let len = (self.inner.len().saturating_sub(start)).min(self.page_bytes as u64) as usize;
        let mut buf = vec![0u8; len];
        if len > 0 {
            // A miss fetches one contiguous page regardless of how small
            // the caller's request was: a scattered (Random) request is
            // therefore billed at the batched-sweep rate — the effective
            // small-request random throughput already assumes requests
            // far below a page.
            let billed = match access {
                Access::Random => Access::Batched,
                other => other,
            };
            let t0 = hus_obs::latency_timer();
            self.inner.read_at(start, &mut buf, billed)?;
            PAGE_FETCH_NS.record_elapsed(t0);
        }
        Ok(buf)
    }
}

impl<B: ReadBackend> ReadBackend for CachedBackend<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        if offset + buf.len() as u64 > self.inner.len() {
            return Err(crate::StorageError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                file_len: self.inner.len(),
            });
        }
        let first = offset / self.page_bytes as u64;
        let last = (offset + buf.len() as u64 - 1) / self.page_bytes as u64;
        let mut written = 0usize;
        for page in first..=last {
            let page_start = page * self.page_bytes as u64;
            // Slice of this page the caller wants.
            let want_start = offset.max(page_start);
            let want_end = (offset + buf.len() as u64).min(page_start + self.page_bytes as u64);
            let in_page = (want_start - page_start) as usize;
            let n = (want_end - want_start) as usize;

            let shard = self.shard_of(page);
            let stamp = shard.clock.fetch_add(1, Ordering::Relaxed);
            // Fast path: copy straight from the resident page into the
            // caller's buffer under the shard lock — no intermediate
            // allocation on the hit path. Fetch outside the lock on miss.
            // `None` = miss; `Some(flush)` = hit, flushing a batch of
            // shard-local hits into the global counter when due.
            let served = {
                let mut state = shard.lock();
                if let Some(entry) = state.pages.get_mut(&page) {
                    entry.stamp = stamp;
                    buf[written..written + n].copy_from_slice(&entry.data[in_page..in_page + n]);
                    state.stats.hits += 1;
                    Some(state.stats.hits.is_multiple_of(GLOBAL_HIT_FLUSH))
                } else {
                    None
                }
            };
            if let Some(flush) = served {
                if flush {
                    HITS.add(GLOBAL_HIT_FLUSH);
                }
                hus_obs::attr::record(hus_obs::BlockStat::CacheHits, 1);
            } else {
                let data = self.load_page(page, access)?;
                buf[written..written + n].copy_from_slice(&data[in_page..in_page + n]);
                MISSES.incr();
                hus_obs::attr::record(hus_obs::BlockStat::CacheMisses, 1);
                let mut state = shard.lock();
                state.stats.misses += 1;
                if state.pages.len() >= shard.max_pages {
                    // Evict the shard's least-recently used page.
                    if let Some((&victim, _)) = state.pages.iter().min_by_key(|(_, e)| e.stamp) {
                        state.pages.remove(&victim);
                        state.stats.evictions += 1;
                        EVICTIONS.incr();
                    }
                }
                state.pages.insert(page, PageEntry { data, stamp });
            }
            written += n;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::StorageDir;
    use crate::tracker::IoTracker;
    use std::sync::Arc;

    fn backing(data: &[u8]) -> (tempfile::TempDir, StorageDir) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let mut w = dir.writer("f.bin").unwrap();
        w.write_all(data).unwrap();
        w.finish().unwrap();
        (tmp, dir)
    }

    #[test]
    fn repeated_reads_hit_cache_and_skip_tracker() {
        let data: Vec<u8> = (0..255u8).cycle().take(10_000).collect();
        let (_t, dir) = backing(&data);
        dir.tracker().reset();
        let cached = CachedBackend::new(dir.reader("f.bin").unwrap(), 1 << 20, 1024);
        let mut buf = [0u8; 100];
        cached.read_at(500, &mut buf, Access::Random).unwrap();
        assert_eq!(&buf[..], &data[500..600]);
        let billed_after_first = dir.tracker().snapshot().total_bytes();
        assert!(billed_after_first > 0, "first read misses");
        for _ in 0..10 {
            cached.read_at(500, &mut buf, Access::Random).unwrap();
        }
        assert_eq!(
            dir.tracker().snapshot().total_bytes(),
            billed_after_first,
            "hits must not be billed"
        );
        let s = cached.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 10);
        assert!(s.hit_rate() > 0.9);
    }

    #[test]
    fn reads_spanning_pages_assemble_correctly() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let (_t, dir) = backing(&data);
        let cached = CachedBackend::new(dir.reader("f.bin").unwrap(), 1 << 20, 256);
        let mut buf = vec![0u8; 1000];
        cached.read_at(100, &mut buf, Access::Sequential).unwrap();
        assert_eq!(&buf[..], &data[100..1100]);
        assert_eq!(cached.stats().misses, 5, "offsets 100..1100 touch 5 pages of 256");
    }

    #[test]
    fn lru_evicts_oldest_under_pressure() {
        let data = vec![7u8; 4096];
        let (_t, dir) = backing(&data);
        // Two-page budget; one shard so the LRU order is global and
        // deterministic.
        let cached = CachedBackend::with_shards(dir.reader("f.bin").unwrap(), 512, 256, 1);
        assert_eq!(cached.num_shards(), 1);
        let mut b = [0u8; 1];
        cached.read_at(0, &mut b, Access::Random).unwrap(); // page 0
        cached.read_at(256, &mut b, Access::Random).unwrap(); // page 1
        cached.read_at(0, &mut b, Access::Random).unwrap(); // refresh page 0
        cached.read_at(512, &mut b, Access::Random).unwrap(); // evicts page 1
        assert_eq!(cached.stats().evictions, 1);
        cached.read_at(0, &mut b, Access::Random).unwrap(); // page 0 survived
        assert_eq!(cached.stats().hits, 2);
        cached.read_at(256, &mut b, Access::Random).unwrap(); // page 1 is gone
        assert_eq!(cached.stats().misses, 4);
    }

    #[test]
    fn tail_page_is_partial() {
        let data = vec![9u8; 300];
        let (_t, dir) = backing(&data);
        let cached = CachedBackend::new(dir.reader("f.bin").unwrap(), 1 << 20, 256);
        let mut buf = vec![0u8; 44];
        cached.read_at(256, &mut buf, Access::Sequential).unwrap();
        assert_eq!(buf, vec![9u8; 44]);
        assert_eq!(cached.len(), 300);
        // Reading past the end still errors through the page fetch.
        let mut over = vec![0u8; 100];
        assert!(cached.read_at(256, &mut over, Access::Sequential).is_err());
    }

    #[test]
    fn clear_drops_pages_but_keeps_counters() {
        let data = vec![1u8; 2048];
        let (_t, dir) = backing(&data);
        let cached = CachedBackend::with_budget(dir.reader("f.bin").unwrap(), 1 << 20);
        let mut b = [0u8; 8];
        cached.read_at(0, &mut b, Access::Random).unwrap();
        cached.clear();
        cached.read_at(0, &mut b, Access::Random).unwrap();
        assert_eq!(cached.stats().misses, 2);
    }

    #[test]
    fn hit_rate_is_zero_on_untouched_cache() {
        // Satellite: the documented empty-run behavior, both on the
        // plain struct and a cache nothing ever read through.
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let (_t, dir) = backing(&[0u8; 64]);
        let cached = CachedBackend::with_budget(dir.reader("f.bin").unwrap(), 1 << 20);
        assert_eq!(cached.stats().hit_rate(), 0.0);
        assert!(!cached.stats().hit_rate().is_nan());
    }

    #[test]
    fn hit_rate_counters_survive_clear() {
        let data = vec![5u8; 1024];
        let (_t, dir) = backing(&data);
        let cached = CachedBackend::with_shards(dir.reader("f.bin").unwrap(), 1 << 20, 256, 1);
        let mut b = [0u8; 4];
        cached.read_at(0, &mut b, Access::Random).unwrap(); // miss
        cached.read_at(0, &mut b, Access::Random).unwrap(); // hit
        assert_eq!(cached.stats().hit_rate(), 0.5);
        cached.clear();
        // clear() drops pages, not history: the rate is unchanged until
        // new touches dilute it.
        assert_eq!(cached.stats().hit_rate(), 0.5);
        cached.read_at(0, &mut b, Access::Random).unwrap(); // miss again
        let s = cached.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn shard_stats_aggregate_to_totals() {
        let data = vec![2u8; 64 * 256];
        let (_t, dir) = backing(&data);
        let cached = CachedBackend::with_shards(dir.reader("f.bin").unwrap(), 1 << 20, 256, 4);
        assert_eq!(cached.num_shards(), 4);
        let mut b = [0u8; 1];
        for page in 0..16u64 {
            cached.read_at(page * 256, &mut b, Access::Random).unwrap();
            cached.read_at(page * 256, &mut b, Access::Random).unwrap();
        }
        let per_shard = cached.shard_stats();
        assert_eq!(per_shard.len(), 4);
        // Pages 0..16 spread evenly over 4 shards by low bits.
        for s in &per_shard {
            assert_eq!(s.misses, 4);
            assert_eq!(s.hits, 4);
        }
        let total = cached.stats();
        assert_eq!(total.misses, per_shard.iter().map(|s| s.misses).sum::<u64>());
        assert_eq!(total.hits, 16);
    }

    #[test]
    fn shard_count_is_clamped_to_page_budget() {
        let (_t, dir) = backing(&[0u8; 1024]);
        // 2-page budget cannot support 8 shards; clamp keeps total
        // capacity within the byte budget.
        let cached = CachedBackend::with_shards(dir.reader("f.bin").unwrap(), 512, 256, 8);
        assert_eq!(cached.num_shards(), 2);
        let one = CachedBackend::with_shards(dir.reader("f.bin").unwrap(), 256, 256, 8);
        assert_eq!(one.num_shards(), 1);
    }

    #[test]
    fn concurrent_readers_see_consistent_data() {
        let data: Vec<u8> = (0..=255u8).cycle().take(64 * 1024).collect();
        let (_t, dir) = backing(&data);
        let cached = Arc::new(CachedBackend::new(dir.reader("f.bin").unwrap(), 16 << 10, 1024));
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cached = Arc::clone(&cached);
                let data = &data;
                scope.spawn(move || {
                    let mut buf = [0u8; 64];
                    for i in 0..200usize {
                        let off = ((t * 7919 + i * 524287) % (data.len() - 64)) as u64;
                        cached.read_at(off, &mut buf, Access::Random).unwrap();
                        assert_eq!(&buf[..], &data[off as usize..off as usize + 64]);
                    }
                });
            }
        });
        let s = cached.stats();
        assert!(s.hits + s.misses >= 1600, "every page touch is counted");
    }

    #[test]
    fn works_behind_arc_tracker() {
        // The cache composes with any ReadBackend, including a fresh
        // FileBackend with its own tracker.
        let data = vec![3u8; 1024];
        let tmp = tempfile::tempdir().unwrap();
        std::fs::write(tmp.path().join("x.bin"), &data).unwrap();
        let tracker = Arc::new(IoTracker::new());
        let fb = crate::FileBackend::open(tmp.path().join("x.bin"), Arc::clone(&tracker)).unwrap();
        let cached = CachedBackend::with_budget(fb, 1 << 20);
        let mut buf = [0u8; 16];
        cached.read_at(0, &mut buf, Access::Sequential).unwrap();
        cached.read_at(0, &mut buf, Access::Sequential).unwrap();
        assert_eq!(cached.stats().hits, 1);
    }
}
