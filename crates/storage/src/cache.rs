//! An LRU page cache over any [`ReadBackend`] — a controllable stand-in
//! for the OS page cache.
//!
//! Out-of-core evaluations (the paper gives every system an 8 GB memory
//! budget, §4.1) are really evaluations of what happens *below* the
//! cache. Wrapping a backend in a [`CachedBackend`] with a fixed byte
//! budget lets experiments model that budget explicitly: reads served
//! from cache are **not** billed to the tracker (they never reach the
//! device), and hit/miss counters expose the cache's effectiveness.
//!
//! Pages are fixed-size; a read spanning `k` pages touches each of them
//! (misses fetch whole pages from the inner backend — one page-sized
//! inner read per missing page, billed sequential/batched since a page
//! fetch is one contiguous transfer).

use crate::error::Result;
use crate::tracker::Access;
use crate::ReadBackend;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default page size (64 KiB — readahead-window sized).
pub const DEFAULT_PAGE_BYTES: usize = 64 << 10;

/// Process-wide cache effectiveness counters (sum across all caches).
static HITS: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.cache.hits");
static MISSES: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.cache.misses");
static EVICTIONS: hus_obs::LazyCounter = hus_obs::LazyCounter::new("storage.cache.evictions");
/// Nanoseconds to fetch one page from the inner backend on a miss.
static PAGE_FETCH_NS: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.cache.page_fetch_ns");

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Pages served from cache.
    pub hits: u64,
    /// Pages fetched from the inner backend.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of page touches served from cache (1.0 when everything
    /// hits; 0.0 on an empty run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct PageEntry {
    data: Vec<u8>,
    /// Last-touch stamp for LRU eviction.
    stamp: u64,
}

struct CacheInner {
    pages: HashMap<u64, PageEntry>,
    stats: CacheStats,
}

/// LRU page cache wrapping an inner backend. See the module docs.
///
/// ```
/// use hus_storage::{Access, CachedBackend, ReadBackend, StorageDir};
///
/// let tmp = tempfile::tempdir().unwrap();
/// let dir = StorageDir::create(tmp.path().join("s")).unwrap();
/// let mut w = dir.writer("data.bin").unwrap();
/// w.write_all(&[7u8; 4096]).unwrap();
/// w.finish().unwrap();
///
/// let cached = CachedBackend::with_budget(dir.reader("data.bin").unwrap(), 1 << 20);
/// let mut buf = [0u8; 16];
/// cached.read_at(0, &mut buf, Access::Random).unwrap(); // miss: billed
/// cached.read_at(0, &mut buf, Access::Random).unwrap(); // hit: free
/// assert_eq!(cached.stats().hits, 1);
/// ```
pub struct CachedBackend<B> {
    inner: B,
    page_bytes: usize,
    max_pages: usize,
    clock: AtomicU64,
    state: Mutex<CacheInner>,
}

impl<B: ReadBackend> CachedBackend<B> {
    /// Cache up to `budget_bytes` of `inner` in `page_bytes` pages.
    pub fn new(inner: B, budget_bytes: usize, page_bytes: usize) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        CachedBackend {
            inner,
            page_bytes,
            max_pages: (budget_bytes / page_bytes).max(1),
            clock: AtomicU64::new(0),
            state: Mutex::new(CacheInner { pages: HashMap::new(), stats: CacheStats::default() }),
        }
    }

    /// Cache with the default page size.
    pub fn with_budget(inner: B, budget_bytes: usize) -> Self {
        Self::new(inner, budget_bytes, DEFAULT_PAGE_BYTES)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Drop every cached page (counters survive).
    pub fn clear(&self) {
        self.state.lock().pages.clear();
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn load_page(&self, page: u64, access: Access) -> Result<Vec<u8>> {
        let start = page * self.page_bytes as u64;
        let len = (self.inner.len().saturating_sub(start)).min(self.page_bytes as u64) as usize;
        let mut buf = vec![0u8; len];
        if len > 0 {
            // A miss fetches one contiguous page regardless of how small
            // the caller's request was: a scattered (Random) request is
            // therefore billed at the batched-sweep rate — the effective
            // small-request random throughput already assumes requests
            // far below a page.
            let billed = match access {
                Access::Random => Access::Batched,
                other => other,
            };
            let t0 = hus_obs::latency_timer();
            self.inner.read_at(start, &mut buf, billed)?;
            PAGE_FETCH_NS.record_elapsed(t0);
        }
        Ok(buf)
    }
}

impl<B: ReadBackend> ReadBackend for CachedBackend<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        if offset + buf.len() as u64 > self.inner.len() {
            return Err(crate::StorageError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                file_len: self.inner.len(),
            });
        }
        let first = offset / self.page_bytes as u64;
        let last = (offset + buf.len() as u64 - 1) / self.page_bytes as u64;
        let mut written = 0usize;
        for page in first..=last {
            let page_start = page * self.page_bytes as u64;
            // Slice of this page the caller wants.
            let want_start = offset.max(page_start);
            let want_end = (offset + buf.len() as u64).min(page_start + self.page_bytes as u64);
            let in_page = (want_start - page_start) as usize;
            let n = (want_end - want_start) as usize;

            let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
            // Fast path under the lock; fetch outside it on miss.
            let cached = {
                let mut state = self.state.lock();
                let hit = if let Some(entry) = state.pages.get_mut(&page) {
                    entry.stamp = stamp;
                    Some(entry.data[in_page..in_page + n].to_vec())
                } else {
                    None
                };
                if hit.is_some() {
                    state.stats.hits += 1;
                    HITS.incr();
                }
                hit
            };
            let bytes = match cached {
                Some(b) => b,
                None => {
                    let data = self.load_page(page, access)?;
                    let out = data[in_page..in_page + n].to_vec();
                    let mut state = self.state.lock();
                    state.stats.misses += 1;
                    MISSES.incr();
                    if state.pages.len() >= self.max_pages {
                        // Evict the least-recently used page.
                        if let Some((&victim, _)) = state.pages.iter().min_by_key(|(_, e)| e.stamp)
                        {
                            state.pages.remove(&victim);
                            state.stats.evictions += 1;
                            EVICTIONS.incr();
                        }
                    }
                    state.pages.insert(page, PageEntry { data, stamp });
                    out
                }
            };
            buf[written..written + n].copy_from_slice(&bytes);
            written += n;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::StorageDir;
    use crate::tracker::IoTracker;
    use std::sync::Arc;

    fn backing(data: &[u8]) -> (tempfile::TempDir, StorageDir) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let mut w = dir.writer("f.bin").unwrap();
        w.write_all(data).unwrap();
        w.finish().unwrap();
        (tmp, dir)
    }

    #[test]
    fn repeated_reads_hit_cache_and_skip_tracker() {
        let data: Vec<u8> = (0..255u8).cycle().take(10_000).collect();
        let (_t, dir) = backing(&data);
        dir.tracker().reset();
        let cached = CachedBackend::new(dir.reader("f.bin").unwrap(), 1 << 20, 1024);
        let mut buf = [0u8; 100];
        cached.read_at(500, &mut buf, Access::Random).unwrap();
        assert_eq!(&buf[..], &data[500..600]);
        let billed_after_first = dir.tracker().snapshot().total_bytes();
        assert!(billed_after_first > 0, "first read misses");
        for _ in 0..10 {
            cached.read_at(500, &mut buf, Access::Random).unwrap();
        }
        assert_eq!(
            dir.tracker().snapshot().total_bytes(),
            billed_after_first,
            "hits must not be billed"
        );
        let s = cached.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 10);
        assert!(s.hit_rate() > 0.9);
    }

    #[test]
    fn reads_spanning_pages_assemble_correctly() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let (_t, dir) = backing(&data);
        let cached = CachedBackend::new(dir.reader("f.bin").unwrap(), 1 << 20, 256);
        let mut buf = vec![0u8; 1000];
        cached.read_at(100, &mut buf, Access::Sequential).unwrap();
        assert_eq!(&buf[..], &data[100..1100]);
        assert_eq!(cached.stats().misses, 5, "offsets 100..1100 touch 5 pages of 256");
    }

    #[test]
    fn lru_evicts_oldest_under_pressure() {
        let data = vec![7u8; 4096];
        let (_t, dir) = backing(&data);
        // Two-page budget.
        let cached = CachedBackend::new(dir.reader("f.bin").unwrap(), 512, 256);
        let mut b = [0u8; 1];
        cached.read_at(0, &mut b, Access::Random).unwrap(); // page 0
        cached.read_at(256, &mut b, Access::Random).unwrap(); // page 1
        cached.read_at(0, &mut b, Access::Random).unwrap(); // refresh page 0
        cached.read_at(512, &mut b, Access::Random).unwrap(); // evicts page 1
        assert_eq!(cached.stats().evictions, 1);
        cached.read_at(0, &mut b, Access::Random).unwrap(); // page 0 survived
        assert_eq!(cached.stats().hits, 2);
        cached.read_at(256, &mut b, Access::Random).unwrap(); // page 1 is gone
        assert_eq!(cached.stats().misses, 4);
    }

    #[test]
    fn tail_page_is_partial() {
        let data = vec![9u8; 300];
        let (_t, dir) = backing(&data);
        let cached = CachedBackend::new(dir.reader("f.bin").unwrap(), 1 << 20, 256);
        let mut buf = vec![0u8; 44];
        cached.read_at(256, &mut buf, Access::Sequential).unwrap();
        assert_eq!(buf, vec![9u8; 44]);
        assert_eq!(cached.len(), 300);
        // Reading past the end still errors through the page fetch.
        let mut over = vec![0u8; 100];
        assert!(cached.read_at(256, &mut over, Access::Sequential).is_err());
    }

    #[test]
    fn clear_drops_pages_but_keeps_counters() {
        let data = vec![1u8; 2048];
        let (_t, dir) = backing(&data);
        let cached = CachedBackend::with_budget(dir.reader("f.bin").unwrap(), 1 << 20);
        let mut b = [0u8; 8];
        cached.read_at(0, &mut b, Access::Random).unwrap();
        cached.clear();
        cached.read_at(0, &mut b, Access::Random).unwrap();
        assert_eq!(cached.stats().misses, 2);
    }

    #[test]
    fn works_behind_arc_tracker() {
        // The cache composes with any ReadBackend, including a fresh
        // FileBackend with its own tracker.
        let data = vec![3u8; 1024];
        let tmp = tempfile::tempdir().unwrap();
        std::fs::write(tmp.path().join("x.bin"), &data).unwrap();
        let tracker = Arc::new(IoTracker::new());
        let fb = crate::FileBackend::open(tmp.path().join("x.bin"), Arc::clone(&tracker)).unwrap();
        let cached = CachedBackend::with_budget(fb, 1 << 20);
        let mut buf = [0u8; 16];
        cached.read_at(0, &mut buf, Access::Sequential).unwrap();
        cached.read_at(0, &mut buf, Access::Sequential).unwrap();
        assert_eq!(cached.stats().hits, 1);
    }
}
