//! A directory of named storage files sharing one I/O tracker.
//!
//! Each engine's on-disk representation (dual-block shards, PSW shards,
//! grid blocks, vertex stores) lives inside a `StorageDir`. The directory
//! decides which read backend to use (positioned file reads or mmap) and
//! hands out tracked readers/writers.

use crate::buffer::TrackedWriter;
use crate::cache::CachedBackend;
use crate::direct::DirectBackend;
use crate::durable;
use crate::error::{Result, StorageError};
use crate::fault::{FaultInjectBackend, FaultInjectWriter, FaultSpec};
use crate::file::{FileBackend, TrackedFile};
use crate::manifest::BuildManifest;
use crate::mmap::MmapBackend;
use crate::retry::{warn_once, ResilienceTracker, RetryBackend, RetryPolicy};
use crate::tracker::IoTracker;
use crate::ReadBackend;
use std::path::{Path, PathBuf};
use std::sync::Arc;

static OBS_MMAP_FALLBACKS: hus_obs::LazyCounter =
    hus_obs::LazyCounter::new("storage.fallback.mmap");
static OBS_DIRECT_FALLBACKS: hus_obs::LazyCounter =
    hus_obs::LazyCounter::new("storage.fallback.direct");

/// Environment variable selecting the default read backend
/// (`file` | `mmap` | `direct`) for directories opened without an
/// explicit [`BackendKind`].
pub const BACKEND_ENV: &str = "HUS_BACKEND";

/// Which mechanism serves reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Positioned `pread` calls on a shared file descriptor.
    #[default]
    File,
    /// Shared read-only memory map (zero-copy block access).
    Mmap,
    /// `O_DIRECT` positioned reads bypassing the OS page cache, served
    /// from pooled 4 KiB-aligned buffers with vectored multi-range
    /// submission (io_uring or thread fan-out; see [`crate::direct`]).
    /// Degrades to [`BackendKind::File`] on filesystems that refuse
    /// `O_DIRECT` (e.g. tmpfs).
    Direct,
    /// File reads behind a per-file LRU page cache of the given byte
    /// budget — models an explicit memory budget: cache hits are not
    /// billed as device I/O (see [`crate::cache`]).
    Cached {
        /// Cache budget per opened file, in bytes.
        budget_bytes: u64,
    },
}

impl BackendKind {
    /// The default backend, honoring the `HUS_BACKEND` environment
    /// variable (`file` | `mmap` | `direct`). Unknown values are
    /// reported once and fall back to [`BackendKind::File`]; explicit
    /// [`StorageDir::with_backend`] / [`StorageDir::create_with`]
    /// selections are never overridden by the environment.
    pub fn default_from_env() -> BackendKind {
        match std::env::var(BACKEND_ENV) {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "" | "file" => BackendKind::File,
                "mmap" => BackendKind::Mmap,
                "direct" => BackendKind::Direct,
                other => {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    warn_once(
                        &WARNED,
                        &format!("unknown {BACKEND_ENV}={other:?}; using the file backend"),
                    );
                    BackendKind::File
                }
            },
            Err(_) => BackendKind::File,
        }
    }
}

/// A directory of named data files with shared I/O accounting.
#[derive(Clone)]
pub struct StorageDir {
    root: PathBuf,
    tracker: Arc<IoTracker>,
    kind: BackendKind,
    resilience: Arc<ResilienceTracker>,
    retry: RetryPolicy,
    faults: Option<FaultSpec>,
    write_faults: Option<Arc<FaultInjectWriter>>,
}

impl StorageDir {
    /// Create (or reuse) the directory at `root` with the default read
    /// backend (`HUS_BACKEND`, or positioned file reads when unset).
    pub fn create(root: impl AsRef<Path>) -> Result<Self> {
        Self::create_with(root, BackendKind::default_from_env())
    }

    /// Create (or reuse) the directory at `root`, selecting the read
    /// backend. The fault-injection spec, if any, is captured from
    /// `HUS_FAULT` at this point.
    pub fn create_with(root: impl AsRef<Path>, kind: BackendKind) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root).map_err(|e| StorageError::io_at(&root, e))?;
        Ok(Self::assemble(root, kind))
    }

    /// Open an existing directory (errors if absent) with the default
    /// read backend (`HUS_BACKEND`, or positioned file reads when unset).
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        if !root.is_dir() {
            return Err(StorageError::MissingFile(root));
        }
        Ok(Self::assemble(root, BackendKind::default_from_env()))
    }

    fn assemble(root: PathBuf, kind: BackendKind) -> Self {
        let resilience = Arc::new(ResilienceTracker::new());
        let faults = FaultSpec::from_env();
        let write_faults = Self::write_injector_for(faults, &resilience);
        StorageDir {
            root,
            tracker: Arc::new(IoTracker::new()),
            kind,
            resilience,
            retry: RetryPolicy::from_env(),
            faults,
            write_faults,
        }
    }

    /// A shared write-fault injector for `faults`, when the spec has any
    /// write-side probability. The injector is shared by subdirectories
    /// and staging clones so the write-op draw counter spans the tree.
    fn write_injector_for(
        faults: Option<FaultSpec>,
        resilience: &Arc<ResilienceTracker>,
    ) -> Option<Arc<FaultInjectWriter>> {
        faults
            .filter(FaultSpec::injects_write_faults)
            .map(|s| Arc::new(FaultInjectWriter::new(s, Arc::clone(resilience))))
    }

    /// Switch the read backend (builder-style).
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Override the fault-injection spec captured from `HUS_FAULT`
    /// (builder-style). `None` disables injection. Tests use this instead
    /// of mutating process-global environment variables.
    pub fn with_faults(mut self, spec: Option<FaultSpec>) -> Self {
        self.faults = spec.filter(FaultSpec::injects_faults);
        self.write_faults = Self::write_injector_for(self.faults, &self.resilience);
        self
    }

    /// Override the retry policy (builder-style).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// A nested directory sharing this directory's tracker, backend and
    /// resilience accounting (used e.g. for per-run vertex-store scratch
    /// space whose traffic must count toward the same run's I/O).
    pub fn subdir(&self, name: &str) -> Result<StorageDir> {
        let root = self.root.join(name);
        std::fs::create_dir_all(&root).map_err(|e| StorageError::io_at(&root, e))?;
        Ok(StorageDir {
            root,
            tracker: Arc::clone(&self.tracker),
            kind: self.kind,
            resilience: Arc::clone(&self.resilience),
            retry: self.retry,
            faults: self.faults,
            write_faults: self.write_faults.clone(),
        })
    }

    /// The shared tracker for this directory.
    pub fn tracker(&self) -> Arc<IoTracker> {
        Arc::clone(&self.tracker)
    }

    /// The shared resilience (retry/fallback/corruption) counters for
    /// this directory tree.
    pub fn resilience(&self) -> Arc<ResilienceTracker> {
        Arc::clone(&self.resilience)
    }

    /// Root path of the directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path of a named file inside the directory.
    pub fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Whether a named file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.path(name).is_file()
    }

    /// Length in bytes of a named file.
    pub fn file_len(&self, name: &str) -> Result<u64> {
        let p = self.path(name);
        let md = std::fs::metadata(&p).map_err(|e| StorageError::io_at(&p, e))?;
        Ok(md.len())
    }

    /// Open a named file for tracked reading with the configured backend.
    ///
    /// The handed-out backend is composed as
    /// `Cached?( Retry( FaultInject?( File | Mmap | Direct ) ) )`:
    /// retries sit below the page cache (hits never consult the device)
    /// and above fault injection (injected transient faults exercise the
    /// real retry path). If an mmap cannot be established, or the
    /// filesystem refuses `O_DIRECT` (tmpfs, some network mounts), the
    /// reader degrades to the positioned-read file backend — logged once
    /// and counted in [`ResilienceTracker::snapshot`] as an
    /// `mmap_fallback` / `direct_fallback`.
    pub fn reader(&self, name: &str) -> Result<Arc<dyn ReadBackend>> {
        let p = self.path(name);
        if !p.is_file() {
            return Err(StorageError::MissingFile(p));
        }
        let mut cache_budget = None;
        let base: Arc<dyn ReadBackend> = match self.kind {
            BackendKind::File => Arc::new(FileBackend::open(p, self.tracker())?),
            BackendKind::Mmap => match MmapBackend::open(&p, self.tracker()) {
                Ok(m) => Arc::new(m),
                Err(e) => {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    warn_once(
                        &WARNED,
                        &format!("mmap of {} failed ({e}); degrading to file backend", p.display()),
                    );
                    self.resilience.record_mmap_fallback();
                    OBS_MMAP_FALLBACKS.add(1);
                    Arc::new(FileBackend::open(p, self.tracker())?)
                }
            },
            BackendKind::Direct => match DirectBackend::open(&p, self.tracker()) {
                Ok(d) => Arc::new(d),
                Err(e) => {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    warn_once(
                        &WARNED,
                        &format!(
                            "O_DIRECT open of {} failed ({e}); degrading to file backend",
                            p.display()
                        ),
                    );
                    self.resilience.record_direct_fallback();
                    OBS_DIRECT_FALLBACKS.add(1);
                    Arc::new(FileBackend::open(p, self.tracker())?)
                }
            },
            BackendKind::Cached { budget_bytes } => {
                cache_budget = Some(budget_bytes as usize);
                Arc::new(FileBackend::open(p, self.tracker())?)
            }
        };
        let faulty: Arc<dyn ReadBackend> = match self.faults.filter(FaultSpec::injects_read_faults)
        {
            Some(spec) => Arc::new(FaultInjectBackend::new(base, spec)),
            None => base,
        };
        let retried: Arc<dyn ReadBackend> =
            Arc::new(RetryBackend::new(faulty, self.retry, Arc::clone(&self.resilience)));
        Ok(match cache_budget {
            Some(budget) => Arc::new(CachedBackend::with_budget(retried, budget)),
            None => retried,
        })
    }

    /// Create (truncate) a named file and return a buffered tracked
    /// writer for streaming output. When the directory carries a
    /// write-fault spec the writer injects per-operation faults, so the
    /// staged builder's shard streams exercise the same failure modes
    /// as whole-file durable writes.
    pub fn writer(&self, name: &str) -> Result<TrackedWriter> {
        if let Some(parent) = self.path(name).parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| StorageError::io_at(parent.to_path_buf(), e))?;
        }
        let w = TrackedWriter::create(self.path(name), self.tracker())?;
        Ok(match &self.write_faults {
            Some(inj) => w.with_faults(Arc::clone(inj)),
            None => w,
        })
    }

    /// The shared write-fault injector, when this directory tree
    /// carries a write-fault spec.
    pub fn write_injector(&self) -> Option<Arc<FaultInjectWriter>> {
        self.write_faults.clone()
    }

    /// Durably write a whole named file: write + fsync, routed through
    /// the write-fault injector when one is configured. This is the
    /// write primitive under every commit-protocol artifact that is
    /// first produced tmp-named and then renamed into place (delta-run
    /// spills, `MANIFEST` rewrites, checkpoint slots) — a drawn fault
    /// therefore never damages a committed file, only the tmp copy.
    pub fn durable_write(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let p = self.path(name);
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| StorageError::io_at(parent.to_path_buf(), e))?;
        }
        match &self.write_faults {
            Some(inj) => inj.durable_write(&p, bytes),
            None => {
                std::fs::write(&p, bytes).map_err(|e| StorageError::io_at(&p, e))?;
                durable::sync_file(&p)
            }
        }
    }

    /// Open (creating if needed) a named file for tracked positioned
    /// read/write access.
    pub fn update(&self, name: &str) -> Result<TrackedFile> {
        if let Some(parent) = self.path(name).parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| StorageError::io_at(parent.to_path_buf(), e))?;
        }
        TrackedFile::open_rw(self.path(name), self.tracker())
    }

    /// Write a small metadata string (manifest); not billed as data I/O.
    pub fn put_meta(&self, name: &str, contents: &str) -> Result<()> {
        let p = self.path(name);
        std::fs::write(&p, contents).map_err(|e| StorageError::io_at(p, e))
    }

    /// Read back a metadata string; not billed as data I/O.
    pub fn get_meta(&self, name: &str) -> Result<String> {
        let p = self.path(name);
        std::fs::read_to_string(&p).map_err(|e| StorageError::io_at(p, e))
    }

    /// Begin an atomic build of this directory: a same-filesystem
    /// sibling staging directory `<root>.tmp-<nonce>` sharing this
    /// directory's tracker, backend and resilience accounting. Write
    /// the build into [`StagingDir::dir`], then [`StagingDir::commit`]
    /// to fsync and atomically rename it over this root. Dropping the
    /// handle without committing removes the staging directory; a
    /// crash (no `Drop`) leaves it behind for resume or
    /// `hus fsck --repair` quarantine.
    pub fn staging(&self) -> Result<StagingDir> {
        StagingDir::begin(self)
    }

    /// Leftover `<root>.tmp-*` staging siblings of this directory —
    /// the residue of crashed builds, candidates for resume
    /// (external builder) or quarantine (`hus fsck --repair`).
    pub fn staging_siblings(&self) -> Vec<PathBuf> {
        staging_siblings_of(&self.root)
    }

    /// Clone of this handle rooted elsewhere, sharing the tracker,
    /// backend, resilience counters, retry policy and fault spec.
    fn rerooted(&self, root: PathBuf) -> StorageDir {
        StorageDir {
            root,
            tracker: Arc::clone(&self.tracker),
            kind: self.kind,
            resilience: Arc::clone(&self.resilience),
            retry: self.retry,
            faults: self.faults,
            write_faults: self.write_faults.clone(),
        }
    }

    /// Sum of the sizes of all regular files under the directory —
    /// the on-disk footprint of a representation.
    pub fn disk_footprint(&self) -> Result<u64> {
        fn walk(dir: &Path, acc: &mut u64) -> std::io::Result<()> {
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let md = entry.metadata()?;
                if md.is_dir() {
                    walk(&entry.path(), acc)?;
                } else {
                    *acc += md.len();
                }
            }
            Ok(())
        }
        let mut acc = 0;
        walk(&self.root, &mut acc).map_err(|e| StorageError::io_at(self.root.clone(), e))?;
        Ok(acc)
    }
}

/// `<base>.<suffix>` next to `base` (same parent directory, so renames
/// between the two are atomic same-filesystem operations).
fn sibling_path(base: &Path, suffix: &str) -> PathBuf {
    let name = base.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    base.with_file_name(format!("{name}.{suffix}"))
}

fn staging_siblings_of(root: &Path) -> Vec<PathBuf> {
    let Some(name) = root.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return Vec::new();
    };
    let prefix = format!("{name}.tmp-");
    let Some(parent) = root.parent() else { return Vec::new() };
    let parent = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
    let Ok(entries) = std::fs::read_dir(parent) else { return Vec::new() };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix) && e.path().is_dir())
        .map(|e| e.path())
        .collect();
    out.sort();
    out
}

/// An in-progress atomic build of a [`StorageDir`] (see
/// [`StorageDir::staging`]).
///
/// The commit protocol (DESIGN.md §10): fsync every staged file, fsync
/// the staging directory, atomically rename it over the target root,
/// fsync the parent directory. A crash before the rename leaves the
/// target untouched; after it, the target is the complete new build.
pub struct StagingDir {
    dir: StorageDir,
    target_root: PathBuf,
    nonce: String,
    generation: u64,
    committed: bool,
}

impl StagingDir {
    fn begin(target: &StorageDir) -> Result<Self> {
        let nonce = format!(
            "{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        let root = sibling_path(&target.root, &format!("tmp-{nonce}"));
        std::fs::create_dir_all(&root).map_err(|e| StorageError::io_at(&root, e))?;
        Ok(StagingDir {
            dir: target.rerooted(root),
            target_root: target.root.clone(),
            nonce,
            generation: BuildManifest::next_generation(&target.root),
            committed: false,
        })
    }

    /// Adopt an existing staging sibling (from
    /// [`StorageDir::staging_siblings`]) left behind by a crashed
    /// build, so a resumable builder can continue where it stopped.
    pub fn adopt(target: &StorageDir, staging_root: PathBuf) -> Result<Self> {
        if !staging_root.is_dir() {
            return Err(StorageError::MissingFile(staging_root));
        }
        let nonce = staging_root
            .file_name()
            .and_then(|n| n.to_string_lossy().rsplit_once(".tmp-").map(|(_, s)| s.to_string()))
            .unwrap_or_else(|| format!("{}", std::process::id()));
        Ok(StagingDir {
            dir: target.rerooted(staging_root),
            target_root: target.root.clone(),
            nonce,
            generation: BuildManifest::next_generation(&target.root),
            committed: false,
        })
    }

    /// The staging directory to write the build into.
    pub fn dir(&self) -> &StorageDir {
        &self.dir
    }

    /// Generation number this build will stamp into its manifest.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Make the staged build durable and atomically swap it into place
    /// at the target root. On return the target directory is the new
    /// build; the staging directory no longer exists.
    pub fn commit(mut self) -> Result<()> {
        sync_tree(self.dir.root())?;
        durable::crash_point("build.pre_rename");
        let staging = self.dir.root().to_path_buf();
        match std::fs::rename(&staging, &self.target_root) {
            Ok(()) => {}
            Err(_) => {
                // The target exists and is non-empty (a rebuild):
                // rename it aside, swap in the staging dir, drop the
                // old build. A crash between the two renames leaves
                // the target absent — a state open-time validation
                // reports cleanly.
                let old = sibling_path(&self.target_root, &format!("old-{}", self.nonce));
                std::fs::rename(&self.target_root, &old)
                    .map_err(|e| StorageError::io_at(&self.target_root, e))?;
                std::fs::rename(&staging, &self.target_root)
                    .map_err(|e| StorageError::io_at(&staging, e))?;
                let _ = std::fs::remove_dir_all(&old);
            }
        }
        durable::sync_parent_dir(&self.target_root)?;
        durable::crash_point("build.post_rename");
        self.committed = true;
        Ok(())
    }
}

impl Drop for StagingDir {
    fn drop(&mut self) {
        if !self.committed {
            // Failed (errored) build: clean up. A *crash* never runs
            // this, deliberately leaving the staging dir for resume.
            let _ = std::fs::remove_dir_all(self.dir.root());
        }
    }
}

/// Fsync every regular file and directory under `root`, depth-first
/// (no-op under `HUS_NO_FSYNC=1`).
fn sync_tree(root: &Path) -> Result<()> {
    if !durable::fsync_enabled() {
        return Ok(());
    }
    for entry in std::fs::read_dir(root).map_err(|e| StorageError::io_at(root, e))? {
        let entry = entry.map_err(|e| StorageError::io_at(root, e))?;
        let path = entry.path();
        if path.is_dir() {
            sync_tree(&path)?;
        } else {
            durable::sync_file(&path)?;
        }
    }
    durable::sync_dir(root)
}

#[cfg(test)]
mod staging_tests {
    use super::*;

    #[test]
    fn commit_swaps_staging_over_empty_target() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let staging = dir.staging().unwrap();
        assert_eq!(staging.generation(), 1);
        staging.dir().put_meta("hello.txt", "hi").unwrap();
        let staging_root = staging.dir().root().to_path_buf();
        assert!(staging_root.is_dir());
        staging.commit().unwrap();
        assert!(!staging_root.exists(), "staging dir must be gone after commit");
        assert_eq!(dir.get_meta("hello.txt").unwrap(), "hi");
    }

    #[test]
    fn commit_replaces_nonempty_target_and_bumps_generation() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        dir.put_meta("stale.txt", "old").unwrap();
        BuildManifest::new(4).write_to(dir.root()).unwrap();
        let staging = dir.staging().unwrap();
        assert_eq!(staging.generation(), 5, "generation continues from the old manifest");
        staging.dir().put_meta("fresh.txt", "new").unwrap();
        staging.commit().unwrap();
        assert!(!dir.exists("stale.txt"), "old build contents are replaced wholesale");
        assert_eq!(dir.get_meta("fresh.txt").unwrap(), "new");
        // No .old- or .tmp- residue.
        assert!(dir.staging_siblings().is_empty());
        let residue: Vec<_> = std::fs::read_dir(tmp.path())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n != "g")
            .collect();
        assert!(residue.is_empty(), "leftovers: {residue:?}");
    }

    #[test]
    fn dropped_staging_cleans_up_and_siblings_are_listed() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        {
            let staging = dir.staging().unwrap();
            staging.dir().put_meta("x", "y").unwrap();
            assert_eq!(dir.staging_siblings().len(), 1);
        } // dropped uncommitted
        assert!(dir.staging_siblings().is_empty(), "drop must clean up");

        // A crashed build's leftover (simulated by creating one
        // manually) is listed and adoptable.
        let leftover = tmp.path().join("g.tmp-dead");
        std::fs::create_dir(&leftover).unwrap();
        std::fs::write(leftover.join("partial.bin"), [0u8; 3]).unwrap();
        assert_eq!(dir.staging_siblings(), vec![leftover.clone()]);
        let adopted = StagingDir::adopt(&dir, leftover).unwrap();
        assert!(adopted.dir().exists("partial.bin"));
        adopted.commit().unwrap();
        assert!(dir.exists("partial.bin"));
    }

    #[test]
    fn staging_shares_the_io_tracker() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let staging = dir.staging().unwrap();
        let mut w = staging.dir().writer("data.bin").unwrap();
        w.write_all(&[0u8; 64]).unwrap();
        w.finish().unwrap();
        assert_eq!(dir.tracker().snapshot().write_bytes, 64);
        staging.commit().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::Access;

    #[test]
    fn write_then_read_roundtrip() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("store")).unwrap();
        let mut w = dir.writer("edges.bin").unwrap();
        w.write_all(&[1, 2, 3, 4]).unwrap();
        w.finish().unwrap();
        let r = dir.reader("edges.bin").unwrap();
        let mut buf = [0u8; 4];
        r.read_at(0, &mut buf, Access::Sequential).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        let s = dir.tracker().snapshot();
        assert_eq!(s.write_bytes, 4);
        assert_eq!(s.seq_read_bytes, 4);
    }

    #[test]
    fn mmap_backend_selected() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create_with(tmp.path().join("m"), BackendKind::Mmap).unwrap();
        let mut w = dir.writer("x.bin").unwrap();
        w.write_all(&[9; 32]).unwrap();
        w.finish().unwrap();
        let r = dir.reader("x.bin").unwrap();
        assert_eq!(r.len(), 32);
    }

    #[test]
    fn direct_kind_reads_correctly_or_degrades() {
        // On filesystems without O_DIRECT (tmpfs) the reader silently
        // degrades to the file backend; either way the bytes and the
        // billing must be identical to BackendKind::File.
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create_with(tmp.path().join("d"), BackendKind::Direct).unwrap();
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        let mut w = dir.writer("x.bin").unwrap();
        w.write_all(&data).unwrap();
        w.finish().unwrap();
        dir.tracker().reset();
        let r = dir.reader("x.bin").unwrap();
        assert_eq!(r.len(), data.len() as u64);
        let mut buf = vec![0u8; 5000];
        r.read_at(3000, &mut buf, Access::Random).unwrap();
        assert_eq!(buf, data[3000..8000]);
        let s = dir.tracker().snapshot();
        assert_eq!(s.rand_read_bytes, 5000, "requested bytes billed, not aligned transfer");
        assert_eq!(s.rand_read_ops, 1);
    }

    #[test]
    fn missing_file_error() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        assert!(matches!(dir.reader("nope.bin"), Err(StorageError::MissingFile(_))));
        assert!(!dir.exists("nope.bin"));
    }

    #[test]
    fn nested_names_create_subdirs() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let mut w = dir.writer("shards/out/0.bin").unwrap();
        w.write_all(&[1]).unwrap();
        w.finish().unwrap();
        assert!(dir.exists("shards/out/0.bin"));
        assert_eq!(dir.file_len("shards/out/0.bin").unwrap(), 1);
    }

    #[test]
    fn meta_roundtrip_not_billed() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        dir.put_meta("meta.json", "{\"p\":4}").unwrap();
        assert_eq!(dir.get_meta("meta.json").unwrap(), "{\"p\":4}");
        assert_eq!(dir.tracker().snapshot().total_bytes(), 0);
    }

    #[test]
    fn disk_footprint_sums_files() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let mut w = dir.writer("a.bin").unwrap();
        w.write_all(&[0; 10]).unwrap();
        w.finish().unwrap();
        let mut w = dir.writer("sub/b.bin").unwrap();
        w.write_all(&[0; 5]).unwrap();
        w.finish().unwrap();
        assert_eq!(dir.disk_footprint().unwrap(), 15);
    }

    #[test]
    fn open_missing_dir_fails() {
        let tmp = tempfile::tempdir().unwrap();
        assert!(StorageDir::open(tmp.path().join("absent")).is_err());
    }
}

#[cfg(test)]
mod cached_backend_tests {
    use super::*;
    use crate::tracker::Access;

    #[test]
    fn cached_kind_serves_hits_unbilled() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create_with(
            tmp.path().join("c"),
            BackendKind::Cached { budget_bytes: 1 << 20 },
        )
        .unwrap();
        let mut w = dir.writer("x.bin").unwrap();
        w.write_all(&[5u8; 4096]).unwrap();
        w.finish().unwrap();
        dir.tracker().reset();
        let r = dir.reader("x.bin").unwrap();
        let mut buf = [0u8; 64];
        r.read_at(0, &mut buf, Access::Random).unwrap();
        let first = dir.tracker().snapshot().total_bytes();
        r.read_at(0, &mut buf, Access::Random).unwrap();
        r.read_at(8, &mut buf, Access::Random).unwrap();
        assert_eq!(dir.tracker().snapshot().total_bytes(), first, "hits unbilled");
        assert_eq!(buf, [5u8; 64]);
    }
}
