//! `fio`-like host throughput measurement.
//!
//! The paper measures `T_sequential` and `T_random` with a disk benchmark
//! before running experiments (§3.4: "the disk access throughput ... can
//! be measured by using several measurement tools such as fio"). This
//! module provides the same capability for this host: it writes a scratch
//! file, then times sequential chunked reads and scattered small reads.
//!
//! Note: on a machine with ample page cache the numbers come out
//! memory-speed; the experiment harness therefore defaults to the
//! deterministic [`crate::DeviceProfile`] presets and uses the probe only
//! when explicitly requested (`HUS_PROBE=1`).

use crate::device::Throughput;
use crate::error::{Result, StorageError};
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

/// Options for a throughput probe run.
#[derive(Debug, Clone)]
pub struct ProbeOptions {
    /// Size of the scratch file.
    pub file_bytes: usize,
    /// Chunk size for the sequential pass.
    pub seq_chunk: usize,
    /// Request size for the random pass.
    pub rand_request: usize,
    /// Number of random requests to issue.
    pub rand_ops: usize,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        ProbeOptions {
            file_bytes: 64 << 20,
            seq_chunk: 1 << 20,
            rand_request: 4096,
            rand_ops: 2048,
        }
    }
}

impl ProbeOptions {
    /// A tiny configuration suitable for unit tests.
    pub fn tiny() -> Self {
        ProbeOptions { file_bytes: 1 << 20, seq_chunk: 64 << 10, rand_request: 512, rand_ops: 64 }
    }
}

/// Result of a probe run.
#[derive(Debug, Clone, Copy)]
pub struct ProbeReport {
    /// Measured read throughputs.
    pub read: Throughput,
    /// Measured (buffered) write throughput, bytes/second.
    pub write_bps: f64,
}

/// Measure sequential/random read and write throughput using a scratch
/// file inside `dir`. The scratch file is removed afterwards.
pub fn measure(dir: &Path, opts: &ProbeOptions) -> Result<ProbeReport> {
    let path = dir.join(".hus-probe.tmp");
    let result = measure_inner(&path, opts);
    let _ = std::fs::remove_file(&path);
    result
}

fn measure_inner(path: &Path, opts: &ProbeOptions) -> Result<ProbeReport> {
    assert!(opts.seq_chunk > 0 && opts.rand_request > 0 && opts.file_bytes >= opts.seq_chunk);
    // Write pass.
    let pattern = vec![0xA5u8; opts.seq_chunk];
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
        .map_err(|e| StorageError::io_at(path.to_path_buf(), e))?;
    let write_start = Instant::now();
    let mut written = 0usize;
    while written < opts.file_bytes {
        let n = pattern.len().min(opts.file_bytes - written);
        file.write_all(&pattern[..n]).map_err(|e| StorageError::io_at(path.to_path_buf(), e))?;
        written += n;
    }
    file.sync_data().map_err(|e| StorageError::io_at(path.to_path_buf(), e))?;
    let write_secs = write_start.elapsed().as_secs_f64().max(1e-9);

    // Sequential read pass.
    file.seek(SeekFrom::Start(0)).map_err(|e| StorageError::io_at(path.to_path_buf(), e))?;
    let mut buf = vec![0u8; opts.seq_chunk];
    let seq_start = Instant::now();
    let mut read_total = 0usize;
    while read_total < opts.file_bytes {
        let n = buf.len().min(opts.file_bytes - read_total);
        file.read_exact(&mut buf[..n]).map_err(|e| StorageError::io_at(path.to_path_buf(), e))?;
        read_total += n;
    }
    let seq_secs = seq_start.elapsed().as_secs_f64().max(1e-9);

    // Random read pass: stride through the file with a non-trivial jump so
    // requests are scattered but deterministic.
    let slots = (opts.file_bytes / opts.rand_request).max(1);
    let stride = (slots / 2).max(1) | 1; // odd stride visits many slots
    let mut small = vec![0u8; opts.rand_request];
    let rand_start = Instant::now();
    let mut slot = 0usize;
    for _ in 0..opts.rand_ops {
        slot = (slot + stride) % slots;
        let off = (slot * opts.rand_request) as u64;
        file.seek(SeekFrom::Start(off)).map_err(|e| StorageError::io_at(path.to_path_buf(), e))?;
        file.read_exact(&mut small).map_err(|e| StorageError::io_at(path.to_path_buf(), e))?;
    }
    let rand_secs = rand_start.elapsed().as_secs_f64().max(1e-9);

    Ok(ProbeReport {
        read: Throughput {
            sequential_bps: opts.file_bytes as f64 / seq_secs,
            random_bps: (opts.rand_ops * opts.rand_request) as f64 / rand_secs,
            // A sorted sweep sits between the two; approximate with the
            // geometric mean of the measured extremes.
            batched_bps: (opts.file_bytes as f64 / seq_secs
                * ((opts.rand_ops * opts.rand_request) as f64 / rand_secs))
                .sqrt(),
        },
        write_bps: opts.file_bytes as f64 / write_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_produces_positive_throughputs() {
        let tmp = tempfile::tempdir().unwrap();
        let report = measure(tmp.path(), &ProbeOptions::tiny()).unwrap();
        assert!(report.read.sequential_bps > 0.0);
        assert!(report.read.random_bps > 0.0);
        assert!(report.write_bps > 0.0);
    }

    #[test]
    fn probe_cleans_up_scratch_file() {
        let tmp = tempfile::tempdir().unwrap();
        measure(tmp.path(), &ProbeOptions::tiny()).unwrap();
        assert!(!tmp.path().join(".hus-probe.tmp").exists());
    }

    #[test]
    fn probe_feeds_device_profile() {
        let tmp = tempfile::tempdir().unwrap();
        let report = measure(tmp.path(), &ProbeOptions::tiny()).unwrap();
        let profile =
            crate::DeviceProfile::from_measured("this-host", report.read, report.write_bps);
        assert_eq!(profile.name, "this-host");
        assert!(profile.read.sequential_bps > 0.0);
    }
}
