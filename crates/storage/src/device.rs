//! Device throughput profiles and the modeled-time cost function.
//!
//! The paper's performance predictor (§3.4) states the cost of an I/O plan
//! as `bytes / throughput`, with distinct sequential and random
//! throughputs measured up front with a tool like `fio`. We reuse exactly
//! that model to convert measured [`IoSnapshot`]s into modeled wall time,
//! adding (a) an explicit per-seek latency for random reads, and (b) a
//! CPU term (`edges / (rate × threads)`) so the thread-scaling experiment
//! (Figure 10) has a compute axis. See DESIGN.md §3 for why modeled time
//! is the right substitute for wall time on a page-cached container.

use crate::tracker::IoSnapshot;
use serde::{Deserialize, Serialize};

/// Sequential/random throughput pair in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Sequential throughput, bytes/second.
    pub sequential_bps: f64,
    /// Random-access throughput, bytes/second (effective, excluding the
    /// per-operation seek charged separately).
    pub random_bps: f64,
    /// Throughput of a coalesced ascending sweep over scattered ranges
    /// (elevator order): between random and sequential on spinning
    /// disks, near-sequential on flash.
    pub batched_bps: f64,
}

/// A secondary-storage device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name ("hdd-7200rpm", "sata-ssd", ...).
    pub name: String,
    /// Read throughput.
    pub read: Throughput,
    /// Write throughput (writes are modeled as sequential; all engines
    /// here write whole chunks/shards).
    pub write_bps: f64,
    /// Latency charged per random read operation, seconds.
    pub seek_seconds: f64,
}

impl DeviceProfile {
    /// 7200 RPM commodity HDD, matching the paper's evaluation machine
    /// (500 GB 7200RPM HDD): ~120 MB/s sequential, ~1 MB/s effective
    /// random.
    ///
    /// Following the paper's cost model (§3.4), time is pure
    /// `bytes / throughput`: the seek latency is folded into the
    /// *effective* random throughput (1 MB/s ≈ one 8 ms seek per ~8 KB
    /// request) rather than charged per operation, so `seek_seconds` is
    /// zero here. Custom profiles may still set a per-op seek.
    pub fn hdd() -> Self {
        DeviceProfile {
            name: "hdd-7200rpm".into(),
            read: Throughput { sequential_bps: 120e6, random_bps: 1.0e6, batched_bps: 40e6 },
            write_bps: 110e6,
            seek_seconds: 0.0,
        }
    }

    /// SATA2 SSD matching the paper's scalability experiment (§4.5):
    /// ~450 MB/s sequential, ~250 MB/s random, no seek penalty.
    pub fn ssd() -> Self {
        DeviceProfile {
            name: "sata-ssd".into(),
            read: Throughput { sequential_bps: 450e6, random_bps: 250e6, batched_bps: 400e6 },
            write_bps: 400e6,
            seek_seconds: 0.0,
        }
    }

    /// An NVMe-class device (extension beyond the paper, used by the
    /// device-sweep ablation).
    pub fn nvme() -> Self {
        DeviceProfile {
            name: "nvme".into(),
            read: Throughput { sequential_bps: 3.0e9, random_bps: 2.0e9, batched_bps: 2.8e9 },
            write_bps: 2.5e9,
            seek_seconds: 10e-6,
        }
    }

    /// Page-cache / in-memory speeds: for graphs that fit in RAM, where
    /// the paper observes thread count dominates performance (§4.5,
    /// LiveJournal).
    pub fn memory() -> Self {
        DeviceProfile {
            name: "memory".into(),
            read: Throughput { sequential_bps: 10e9, random_bps: 8e9, batched_bps: 10e9 },
            write_bps: 8e9,
            seek_seconds: 0.0,
        }
    }

    /// Build a profile from measured throughputs (see [`crate::probe`]).
    pub fn from_measured(name: impl Into<String>, read: Throughput, write_bps: f64) -> Self {
        DeviceProfile { name: name.into(), read, write_bps, seek_seconds: 0.0 }
    }

    /// Modeled seconds to perform the I/O recorded in `io` on this device.
    pub fn io_seconds(&self, io: &IoSnapshot) -> f64 {
        io.seq_read_bytes as f64 / self.read.sequential_bps
            + io.rand_read_bytes as f64 / self.read.random_bps
            + io.batched_read_bytes as f64 / self.read.batched_bps
            + io.rand_read_ops as f64 * self.seek_seconds
            + io.write_bytes as f64 / self.write_bps
    }
}

/// Combined I/O + CPU time model.
///
/// `modeled_seconds = max(io_seconds, cpu_seconds)` when overlap is
/// enabled (the paper overlaps CPU processing and disk I/O, §3.5), or
/// their sum otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The storage device.
    pub device: DeviceProfile,
    /// Edges a single thread processes per second (update-function
    /// applications). Calibrated for simple update functions.
    pub edges_per_second_per_thread: f64,
    /// Per-vertex bookkeeping rate per thread (activation checks, value
    /// synchronization).
    pub vertices_per_second_per_thread: f64,
    /// Whether CPU work overlaps I/O (paper §3.5: yes).
    pub overlap_cpu_io: bool,
    /// Amdahl serial fraction of the CPU work: 0.0 = perfectly parallel.
    /// Used to model engines whose execution has a serial component
    /// (e.g. GraphChi's deterministic parallelism, which the paper blames
    /// for its poor thread scaling, §4.5).
    pub serial_fraction: f64,
}

impl CostModel {
    /// Default model on a given device.
    pub fn new(device: DeviceProfile) -> Self {
        CostModel {
            device,
            edges_per_second_per_thread: 50e6,
            vertices_per_second_per_thread: 200e6,
            overlap_cpu_io: true,
            serial_fraction: 0.0,
        }
    }

    /// CPU seconds for `edges` edge updates and `vertices` vertex touches
    /// on `threads` worker threads.
    pub fn cpu_seconds(&self, edges: u64, vertices: u64, threads: usize) -> f64 {
        let t = threads.max(1) as f64;
        let speedup = 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / t);
        (edges as f64 / self.edges_per_second_per_thread
            + vertices as f64 / self.vertices_per_second_per_thread)
            / speedup
    }

    /// Full modeled runtime.
    pub fn modeled_seconds(
        &self,
        io: &IoSnapshot,
        edges: u64,
        vertices: u64,
        threads: usize,
    ) -> f64 {
        let io_s = self.device.io_seconds(io);
        let cpu_s = self.cpu_seconds(edges, vertices, threads);
        if self.overlap_cpu_io {
            io_s.max(cpu_s)
        } else {
            io_s + cpu_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(seq: u64, rand: u64, rand_ops: u64, write: u64) -> IoSnapshot {
        IoSnapshot {
            seq_read_bytes: seq,
            rand_read_bytes: rand,
            rand_read_ops: rand_ops,
            write_bytes: write,
            ..Default::default()
        }
    }

    #[test]
    fn hdd_penalizes_random() {
        let hdd = DeviceProfile::hdd();
        let seq = snap(100_000_000, 0, 0, 0);
        let rand = snap(0, 100_000_000, 1000, 0);
        assert!(hdd.io_seconds(&rand) > 10.0 * hdd.io_seconds(&seq));
    }

    #[test]
    fn ssd_narrows_random_gap() {
        let hdd = DeviceProfile::hdd();
        let ssd = DeviceProfile::ssd();
        let rand = snap(0, 100_000_000, 1000, 0);
        let hdd_ratio = hdd.io_seconds(&rand) / hdd.io_seconds(&snap(100_000_000, 0, 0, 0));
        let ssd_ratio = ssd.io_seconds(&rand) / ssd.io_seconds(&snap(100_000_000, 0, 0, 0));
        assert!(ssd_ratio < hdd_ratio / 10.0, "hdd {hdd_ratio} ssd {ssd_ratio}");
    }

    #[test]
    fn seek_latency_counts_when_configured() {
        let mut custom = DeviceProfile::hdd();
        custom.seek_seconds = 8e-3;
        let one_op = snap(0, 4096, 1, 0);
        assert!(custom.io_seconds(&one_op) >= 8e-3);
        // The presets fold seeks into effective random throughput.
        assert_eq!(DeviceProfile::hdd().seek_seconds, 0.0);
        assert_eq!(DeviceProfile::ssd().seek_seconds, 0.0);
    }

    #[test]
    fn writes_add_time() {
        let hdd = DeviceProfile::hdd();
        let with_writes = snap(1_000_000, 0, 0, 1_000_000);
        let without = snap(1_000_000, 0, 0, 0);
        assert!(hdd.io_seconds(&with_writes) > hdd.io_seconds(&without));
    }

    #[test]
    fn cpu_scales_with_threads() {
        let m = CostModel::new(DeviceProfile::hdd());
        let one = m.cpu_seconds(100_000_000, 0, 1);
        let four = m.cpu_seconds(100_000_000, 0, 4);
        assert!((one / four - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_takes_max() {
        let mut m = CostModel::new(DeviceProfile::hdd());
        m.overlap_cpu_io = true;
        let io = snap(120_000_000, 0, 0, 0); // ~1s of I/O
        let cpu_bound = m.modeled_seconds(&io, 500_000_000, 0, 1); // 10s CPU
        assert!((cpu_bound - m.cpu_seconds(500_000_000, 0, 1)).abs() < 1e-9);
        m.overlap_cpu_io = false;
        let summed = m.modeled_seconds(&io, 500_000_000, 0, 1);
        assert!(summed > cpu_bound);
    }

    #[test]
    fn zero_threads_treated_as_one() {
        let m = CostModel::new(DeviceProfile::ssd());
        assert_eq!(m.cpu_seconds(1000, 0, 0), m.cpu_seconds(1000, 0, 1));
    }
}
