//! Plain-old-data casting helpers for on-disk formats.
//!
//! Every engine in the workspace stores fixed-width records (edges, CSR
//! offsets, vertex values) as raw little-endian bytes. This module
//! centralizes the `&[u8]` ⇄ `&[T]` conversions so the `unsafe` surface is
//! small, audited, and alignment-checked.

use crate::error::{Result, StorageError};

/// Marker for types that are valid for any bit pattern and contain no
/// padding, so they can be serialized by memcpy.
///
/// # Safety
///
/// Implementors must guarantee:
/// * every bit pattern is a valid value (no `bool`, no enums with gaps),
/// * the type has no padding bytes (`size_of::<T>()` equals the sum of its
///   field sizes under `#[repr(C)]`),
/// * the type contains no pointers or references.
pub unsafe trait Pod: Copy + Send + Sync + 'static {
    /// The all-zero value (always valid for a `Pod` type).
    fn zeroed() -> Self {
        // SAFETY: Pod guarantees all bit patterns, including all-zero, are
        // valid values of Self.
        unsafe { std::mem::zeroed() }
    }
}

// SAFETY: primitive integers/floats have no padding and allow all bit
// patterns.
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl Pod for usize {}

// SAFETY: arrays of Pod are Pod (no padding between elements).
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// View a typed slice as raw bytes.
pub fn as_bytes<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: Pod types have no padding, so every byte is initialized, and
    // u8 has alignment 1.
    unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), std::mem::size_of_val(slice)) }
}

/// View a typed slice as mutable raw bytes.
pub fn as_bytes_mut<T: Pod>(slice: &mut [T]) -> &mut [u8] {
    // SAFETY: as above; Pod additionally guarantees any bytes written are a
    // valid T.
    unsafe {
        std::slice::from_raw_parts_mut(
            slice.as_mut_ptr().cast::<u8>(),
            std::mem::size_of_val(slice),
        )
    }
}

/// Reinterpret a byte slice as a typed slice without copying.
///
/// Fails if the byte length is not a multiple of `size_of::<T>()` or the
/// pointer is not suitably aligned (mmap'd regions are page-aligned, so
/// aligned offsets within a file stay aligned).
pub fn cast_slice<T: Pod>(bytes: &[u8]) -> Result<&[T]> {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return Err(StorageError::BadCast { detail: "zero-sized type".into() });
    }
    if !bytes.len().is_multiple_of(size) {
        return Err(StorageError::BadCast {
            detail: format!("{} bytes is not a multiple of item size {}", bytes.len(), size),
        });
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(StorageError::BadCast {
            detail: format!(
                "pointer {:p} not aligned to {}",
                bytes.as_ptr(),
                std::mem::align_of::<T>()
            ),
        });
    }
    // SAFETY: length and alignment verified above; Pod allows any bit
    // pattern.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) })
}

/// Copy a byte slice into an owned `Vec<T>` (works for any alignment).
pub fn to_vec<T: Pod>(bytes: &[u8]) -> Result<Vec<T>> {
    let size = std::mem::size_of::<T>();
    if size == 0 || !bytes.len().is_multiple_of(size) {
        return Err(StorageError::BadCast {
            detail: format!("{} bytes is not a multiple of item size {}", bytes.len(), size),
        });
    }
    let count = bytes.len() / size;
    let mut out: Vec<T> = vec![T::zeroed(); count];
    as_bytes_mut(&mut out).copy_from_slice(bytes);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let values: Vec<u32> = vec![1, 2, 0xdead_beef, u32::MAX];
        let bytes = as_bytes(&values);
        assert_eq!(bytes.len(), 16);
        let back: &[u32] = cast_slice(bytes).unwrap();
        assert_eq!(back, values.as_slice());
        let owned: Vec<u32> = to_vec(bytes).unwrap();
        assert_eq!(owned, values);
    }

    #[test]
    fn cast_rejects_bad_length() {
        let bytes = [0u8; 7];
        assert!(cast_slice::<u32>(&bytes).is_err());
        assert!(to_vec::<u32>(&bytes).is_err());
    }

    #[test]
    fn cast_rejects_misaligned() {
        let bytes = [0u8; 12];
        // Find a deliberately misaligned start within the buffer.
        let start = if (bytes.as_ptr() as usize).is_multiple_of(4) { 1 } else { 0 };
        let sub = &bytes[start..start + 8];
        assert!(cast_slice::<u32>(sub).is_err());
        // The copying variant accepts any alignment.
        assert!(to_vec::<u32>(sub).is_ok());
    }

    #[test]
    fn zeroed_is_zero() {
        assert_eq!(u64::zeroed(), 0);
        assert_eq!(<[u32; 3]>::zeroed(), [0, 0, 0]);
    }

    #[test]
    fn as_bytes_mut_writes_through() {
        let mut values = [0u16; 2];
        as_bytes_mut(&mut values).copy_from_slice(&[0x34, 0x12, 0x78, 0x56]);
        assert_eq!(values, [0x1234, 0x5678]); // little-endian host assumed in tests
    }
}
