//! Error type for the storage substrate.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error, annotated with the file it occurred on.
    Io {
        /// Path of the file involved, when known.
        path: Option<PathBuf>,
        /// The raw OS error.
        source: io::Error,
    },
    /// A read past the end of a backing file.
    OutOfBounds {
        /// Requested start offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Actual file size in bytes.
        file_len: u64,
    },
    /// A named file was not found inside a [`crate::StorageDir`].
    MissingFile(PathBuf),
    /// A byte buffer could not be reinterpreted as a typed slice.
    BadCast {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Metadata (header/manifest) content failed validation.
    Corrupt(String),
}

impl StorageError {
    /// Wrap an [`io::Error`] with the path that produced it.
    pub fn io_at(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StorageError::Io { path: Some(path.into()), source }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path: Some(p), source } => {
                write!(f, "I/O error on {}: {source}", p.display())
            }
            StorageError::Io { path: None, source } => write!(f, "I/O error: {source}"),
            StorageError::OutOfBounds { offset, len, file_len } => {
                write!(f, "read of {len} bytes at offset {offset} exceeds file length {file_len}")
            }
            StorageError::MissingFile(p) => write!(f, "missing storage file {}", p.display()),
            StorageError::BadCast { detail } => write!(f, "bad pod cast: {detail}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage metadata: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(source: io::Error) -> Self {
        StorageError::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path() {
        let err = StorageError::io_at("/tmp/x.bin", io::Error::other("boom"));
        let msg = err.to_string();
        assert!(msg.contains("/tmp/x.bin"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn display_out_of_bounds() {
        let err = StorageError::OutOfBounds { offset: 10, len: 20, file_len: 16 };
        let msg = err.to_string();
        assert!(msg.contains("20 bytes at offset 10"), "{msg}");
        assert!(msg.contains("16"), "{msg}");
    }

    #[test]
    fn from_io_error_has_source() {
        use std::error::Error as _;
        let err: StorageError = io::Error::other("inner").into();
        assert!(err.source().is_some());
    }
}
