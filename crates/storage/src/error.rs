//! Error type for the storage substrate.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error, annotated with the file it occurred on.
    Io {
        /// Path of the file involved, when known.
        path: Option<PathBuf>,
        /// The raw OS error.
        source: io::Error,
    },
    /// A read past the end of a backing file.
    OutOfBounds {
        /// Requested start offset.
        offset: u64,
        /// Requested length in bytes.
        len: u64,
        /// Actual file size in bytes.
        file_len: u64,
    },
    /// A named file was not found inside a [`crate::StorageDir`].
    MissingFile(PathBuf),
    /// A byte buffer could not be reinterpreted as a typed slice.
    BadCast {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Metadata (header/manifest) content failed validation.
    Corrupt(String),
    /// A block's payload bytes did not match the CRC-32C recorded in the
    /// shard's checksum footer (see `docs/FORMAT.md`). Names the exact
    /// file, block and byte offset so the damage can be located on disk.
    ChecksumMismatch {
        /// Path of the shard or index file.
        path: PathBuf,
        /// Grid coordinates `(i, j)` of the damaged block.
        block: (u32, u32),
        /// Byte offset of the block's payload within the file.
        offset: u64,
        /// CRC-32C recorded by the builder.
        expected: u32,
        /// CRC-32C computed over the bytes actually read.
        actual: u32,
    },
    /// A graph directory is not a complete build: its `MANIFEST` is
    /// missing or torn, or a file the build must produce never made it
    /// to disk. Raised by open-time validation so an interrupted build
    /// (crash before the atomic rename, partial deletion) surfaces as
    /// one actionable error instead of an arbitrary downstream I/O
    /// failure. See DESIGN.md §10.
    IncompleteBuild {
        /// Root of the offending graph directory.
        path: PathBuf,
        /// What exactly is incomplete (names the missing piece).
        detail: String,
    },
    /// A file disagrees with what the directory's `MANIFEST` (or, for
    /// pre-manifest legacy dirs, `meta.json`) says it should be —
    /// typically a length mismatch from truncation.
    ManifestMismatch {
        /// Root of the offending graph directory.
        path: PathBuf,
        /// Name of the file that disagrees.
        file: String,
        /// How it disagrees (expected vs found).
        detail: String,
    },
    /// A cooperatively cancelled operation: its per-query deadline
    /// passed before it finished. Checked at block boundaries in the
    /// COP/ROP loops, so partial work is abandoned cleanly — nothing
    /// on disk is touched. Neither transient (retrying cannot beat an
    /// already-expired deadline) nor corruption.
    DeadlineExceeded {
        /// Milliseconds the operation had been granted.
        budget_ms: u64,
    },
}

impl StorageError {
    /// Wrap an [`io::Error`] with the path that produced it.
    pub fn io_at(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StorageError::Io { path: Some(path.into()), source }
    }

    /// Whether retrying the same operation could plausibly succeed.
    ///
    /// Transient errors are interrupted/timed-out syscalls, short reads
    /// (`UnexpectedEof` from a racing writer or a flaky device) and the
    /// raw `EIO`/`EAGAIN` family. Everything else — corruption, checksum
    /// mismatches, out-of-bounds requests, missing files, cast failures —
    /// is permanent: retrying would deterministically fail again.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io { source, .. } => {
                matches!(
                    source.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::UnexpectedEof
                ) || matches!(source.raw_os_error(), Some(code) if code == 5 /* EIO */ || code == 11 /* EAGAIN */)
            }
            _ => false,
        }
    }

    /// Whether this error indicates damaged on-disk data (as opposed to a
    /// failed access). Degradation paths must *not* mask corruption by
    /// falling back to a different read strategy.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StorageError::Corrupt(_)
                | StorageError::ChecksumMismatch { .. }
                | StorageError::BadCast { .. }
                | StorageError::IncompleteBuild { .. }
                | StorageError::ManifestMismatch { .. }
        )
    }

    /// Whether this error is a (real or injected) out-of-space
    /// condition — the class a degraded dynamic graph reports for
    /// rejected ingest while the disk stays full.
    pub fn is_no_space(&self) -> bool {
        matches!(
            self,
            StorageError::Io { source, .. } if source.raw_os_error() == Some(28) /* ENOSPC */
        )
    }

    /// Whether this error is a cooperative deadline cancellation.
    pub fn is_deadline(&self) -> bool {
        matches!(self, StorageError::DeadlineExceeded { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path: Some(p), source } => {
                write!(f, "I/O error on {}: {source}", p.display())
            }
            StorageError::Io { path: None, source } => write!(f, "I/O error: {source}"),
            StorageError::OutOfBounds { offset, len, file_len } => {
                write!(f, "read of {len} bytes at offset {offset} exceeds file length {file_len}")
            }
            StorageError::MissingFile(p) => write!(f, "missing storage file {}", p.display()),
            StorageError::BadCast { detail } => write!(f, "bad pod cast: {detail}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage metadata: {msg}"),
            StorageError::ChecksumMismatch { path, block, offset, expected, actual } => write!(
                f,
                "checksum mismatch in {} block ({}, {}) at offset {offset}: \
                 stored 0x{expected:08X}, computed 0x{actual:08X}",
                path.display(),
                block.0,
                block.1
            ),
            StorageError::IncompleteBuild { path, detail } => {
                write!(f, "incomplete build at {}: {detail}", path.display())
            }
            StorageError::ManifestMismatch { path, file, detail } => {
                write!(f, "manifest mismatch in {}: {file}: {detail}", path.display())
            }
            StorageError::DeadlineExceeded { budget_ms } => {
                write!(f, "query deadline of {budget_ms} ms exceeded")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(source: io::Error) -> Self {
        StorageError::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path() {
        let err = StorageError::io_at("/tmp/x.bin", io::Error::other("boom"));
        let msg = err.to_string();
        assert!(msg.contains("/tmp/x.bin"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn display_out_of_bounds() {
        let err = StorageError::OutOfBounds { offset: 10, len: 20, file_len: 16 };
        let msg = err.to_string();
        assert!(msg.contains("20 bytes at offset 10"), "{msg}");
        assert!(msg.contains("16"), "{msg}");
    }

    #[test]
    fn from_io_error_has_source() {
        use std::error::Error as _;
        let err: StorageError = io::Error::other("inner").into();
        assert!(err.source().is_some());
    }

    #[test]
    fn transient_classification() {
        let eintr: StorageError = io::Error::from(io::ErrorKind::Interrupted).into();
        assert!(eintr.is_transient());
        let eio: StorageError = io::Error::from_raw_os_error(5).into();
        assert!(eio.is_transient());
        let short: StorageError = io::Error::from(io::ErrorKind::UnexpectedEof).into();
        assert!(short.is_transient());
        let denied: StorageError = io::Error::from(io::ErrorKind::PermissionDenied).into();
        assert!(!denied.is_transient());
        assert!(!StorageError::Corrupt("x".into()).is_transient());
        assert!(!StorageError::MissingFile("/x".into()).is_transient());
    }

    #[test]
    fn corruption_classification_and_display() {
        let err = StorageError::ChecksumMismatch {
            path: "/tmp/out_3.edges".into(),
            block: (3, 1),
            offset: 8192,
            expected: 0xDEAD_BEEF,
            actual: 0x0BAD_F00D,
        };
        assert!(err.is_corruption());
        assert!(!err.is_transient());
        let msg = err.to_string();
        assert!(msg.contains("out_3.edges"), "{msg}");
        assert!(msg.contains("(3, 1)"), "{msg}");
        assert!(msg.contains("8192"), "{msg}");
        assert!(msg.contains("0xDEADBEEF"), "{msg}");
        assert!(!StorageError::OutOfBounds { offset: 0, len: 1, file_len: 0 }.is_corruption());
    }

    #[test]
    fn build_lifecycle_errors_classify_as_corruption() {
        let incomplete = StorageError::IncompleteBuild {
            path: "/tmp/g".into(),
            detail: "out_1.edges is missing".into(),
        };
        assert!(incomplete.is_corruption());
        assert!(!incomplete.is_transient());
        let msg = incomplete.to_string();
        assert!(msg.contains("incomplete build"), "{msg}");
        assert!(msg.contains("out_1.edges"), "{msg}");

        let mismatch = StorageError::ManifestMismatch {
            path: "/tmp/g".into(),
            file: "out_0.index".into(),
            detail: "expected 128 bytes, found 100".into(),
        };
        assert!(mismatch.is_corruption());
        assert!(!mismatch.is_transient());
        let msg = mismatch.to_string();
        assert!(msg.contains("out_0.index"), "{msg}");
        assert!(msg.contains("expected 128 bytes, found 100"), "{msg}");
    }

    #[test]
    fn no_space_and_deadline_classification() {
        let enospc: StorageError = io::Error::from_raw_os_error(28).into();
        assert!(enospc.is_no_space());
        assert!(!enospc.is_transient(), "a full disk does not clear on retry");
        assert!(!enospc.is_corruption());
        let eio: StorageError = io::Error::from_raw_os_error(5).into();
        assert!(!eio.is_no_space());

        let deadline = StorageError::DeadlineExceeded { budget_ms: 250 };
        assert!(deadline.is_deadline());
        assert!(!deadline.is_transient());
        assert!(!deadline.is_corruption());
        assert!(!deadline.is_no_space());
        let msg = deadline.to_string();
        assert!(msg.contains("250 ms"), "{msg}");
    }
}
