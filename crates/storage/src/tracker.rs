//! Byte-accurate I/O accounting shared by all engines.
//!
//! The HUS-Graph paper's central trade-off is *I/O amount* versus *I/O
//! access locality* (§1, §2.1). To measure both, every read performed
//! through this crate is classified by its caller as sequential (block
//! streaming) or random (per-vertex edge-range loads), and counted here.
//! The experiment harness diffs [`IoSnapshot`]s around each run to report
//! the paper's "I/O amount" figures, and the [`crate::CostModel`] converts
//! snapshots into modeled wall time.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Request-size distributions per access class (log-bucketed; populated
/// only while `hus_obs` collection is enabled).
static READ_SEQ_BYTES: hus_obs::LazyHistogram = hus_obs::LazyHistogram::new("io.read_bytes.seq");
static READ_RAND_BYTES: hus_obs::LazyHistogram = hus_obs::LazyHistogram::new("io.read_bytes.rand");
static READ_BATCHED_BYTES: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("io.read_bytes.batched");
static WRITE_BYTES: hus_obs::LazyHistogram = hus_obs::LazyHistogram::new("io.write_bytes");

/// Classification of a read access, as seen by the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Access {
    /// Part of a large streaming scan; billed at sequential throughput.
    Sequential,
    /// An isolated positioned read; billed at random throughput plus a
    /// seek.
    Random,
    /// A coalesced ascending sweep over scattered ranges (elevator
    /// order): cheaper than independent seeks, slower than a pure
    /// stream. Billed at the device's batched throughput.
    Batched,
}

/// Thread-safe I/O counters. Cheap to share via `Arc`; all updates are
/// relaxed atomics (counters are independent, no ordering needed).
#[derive(Debug, Default)]
pub struct IoTracker {
    seq_read_bytes: AtomicU64,
    seq_read_ops: AtomicU64,
    rand_read_bytes: AtomicU64,
    rand_read_ops: AtomicU64,
    batched_read_bytes: AtomicU64,
    batched_read_ops: AtomicU64,
    write_bytes: AtomicU64,
    write_ops: AtomicU64,
}

impl IoTracker {
    /// A fresh tracker with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `bytes` bytes with the given access pattern.
    pub fn record_read(&self, access: Access, bytes: u64) {
        // Every billed read inside a per-block scope also lands on the
        // heatmap as that block's raw (device) bytes.
        hus_obs::attr::record(hus_obs::BlockStat::RawBytes, bytes);
        match access {
            Access::Sequential => {
                self.seq_read_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.seq_read_ops.fetch_add(1, Ordering::Relaxed);
                READ_SEQ_BYTES.record(bytes);
            }
            Access::Random => {
                self.rand_read_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.rand_read_ops.fetch_add(1, Ordering::Relaxed);
                READ_RAND_BYTES.record(bytes);
            }
            Access::Batched => {
                self.batched_read_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.batched_read_ops.fetch_add(1, Ordering::Relaxed);
                READ_BATCHED_BYTES.record(bytes);
            }
        }
    }

    /// Record a write of `bytes` bytes (writes are modeled as sequential;
    /// every engine here writes whole vertex chunks or whole shards).
    pub fn record_write(&self, bytes: u64) {
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        WRITE_BYTES.record(bytes);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            seq_read_bytes: self.seq_read_bytes.load(Ordering::Relaxed),
            seq_read_ops: self.seq_read_ops.load(Ordering::Relaxed),
            rand_read_bytes: self.rand_read_bytes.load(Ordering::Relaxed),
            rand_read_ops: self.rand_read_ops.load(Ordering::Relaxed),
            batched_read_bytes: self.batched_read_bytes.load(Ordering::Relaxed),
            batched_read_ops: self.batched_read_ops.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.seq_read_bytes.store(0, Ordering::Relaxed);
        self.seq_read_ops.store(0, Ordering::Relaxed);
        self.rand_read_bytes.store(0, Ordering::Relaxed);
        self.rand_read_ops.store(0, Ordering::Relaxed);
        self.batched_read_bytes.store(0, Ordering::Relaxed);
        self.batched_read_ops.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the tracker's counters. Supports subtraction to
/// obtain per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoSnapshot {
    /// Bytes read with [`Access::Sequential`].
    pub seq_read_bytes: u64,
    /// Number of sequential read calls.
    pub seq_read_ops: u64,
    /// Bytes read with [`Access::Random`].
    pub rand_read_bytes: u64,
    /// Number of random read calls (each modeled as one seek).
    pub rand_read_ops: u64,
    /// Bytes read with [`Access::Batched`].
    pub batched_read_bytes: u64,
    /// Number of batched sweep calls.
    pub batched_read_ops: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Number of write calls.
    pub write_ops: u64,
}

impl IoSnapshot {
    /// Total bytes read, regardless of pattern.
    pub fn read_bytes(&self) -> u64 {
        self.seq_read_bytes + self.rand_read_bytes + self.batched_read_bytes
    }

    /// Total bytes transferred (reads plus writes) — the paper's
    /// "I/O amount".
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes() + self.write_bytes
    }

    /// Counter-wise difference `self - earlier` (saturating, so a reset
    /// tracker never produces an underflow panic).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            seq_read_bytes: self.seq_read_bytes.saturating_sub(earlier.seq_read_bytes),
            seq_read_ops: self.seq_read_ops.saturating_sub(earlier.seq_read_ops),
            rand_read_bytes: self.rand_read_bytes.saturating_sub(earlier.rand_read_bytes),
            rand_read_ops: self.rand_read_ops.saturating_sub(earlier.rand_read_ops),
            batched_read_bytes: self.batched_read_bytes.saturating_sub(earlier.batched_read_bytes),
            batched_read_ops: self.batched_read_ops.saturating_sub(earlier.batched_read_ops),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
        }
    }

    /// Counter-wise sum.
    pub fn plus(&self, other: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            seq_read_bytes: self.seq_read_bytes + other.seq_read_bytes,
            seq_read_ops: self.seq_read_ops + other.seq_read_ops,
            rand_read_bytes: self.rand_read_bytes + other.rand_read_bytes,
            rand_read_ops: self.rand_read_ops + other.rand_read_ops,
            batched_read_bytes: self.batched_read_bytes + other.batched_read_bytes,
            batched_read_ops: self.batched_read_ops + other.batched_read_ops,
            write_bytes: self.write_bytes + other.write_bytes,
            write_ops: self.write_ops + other.write_ops,
        }
    }

    /// Total bytes expressed in (decimal) gigabytes, as the paper's
    /// I/O-amount plots use.
    pub fn total_gb(&self) -> f64 {
        self.total_bytes() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_by_class() {
        let t = IoTracker::new();
        t.record_read(Access::Sequential, 100);
        t.record_read(Access::Random, 8);
        t.record_read(Access::Random, 8);
        t.record_write(32);
        let s = t.snapshot();
        assert_eq!(s.seq_read_bytes, 100);
        assert_eq!(s.seq_read_ops, 1);
        assert_eq!(s.rand_read_bytes, 16);
        assert_eq!(s.rand_read_ops, 2);
        assert_eq!(s.write_bytes, 32);
        assert_eq!(s.read_bytes(), 116);
        assert_eq!(s.total_bytes(), 148);
    }

    #[test]
    fn since_computes_delta() {
        let t = IoTracker::new();
        t.record_read(Access::Sequential, 10);
        let a = t.snapshot();
        t.record_read(Access::Sequential, 5);
        t.record_write(7);
        let b = t.snapshot();
        let d = b.since(&a);
        assert_eq!(d.seq_read_bytes, 5);
        assert_eq!(d.write_bytes, 7);
        assert_eq!(d.seq_read_ops, 1);
    }

    #[test]
    fn since_saturates_after_reset() {
        let t = IoTracker::new();
        t.record_read(Access::Random, 100);
        let a = t.snapshot();
        t.reset();
        let b = t.snapshot();
        let d = b.since(&a);
        assert_eq!(d.rand_read_bytes, 0);
    }

    #[test]
    fn concurrent_updates_sum() {
        let t = Arc::new(IoTracker::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.record_read(Access::Sequential, 3);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(t.snapshot().seq_read_bytes, 12_000);
        assert_eq!(t.snapshot().seq_read_ops, 4_000);
    }

    #[test]
    fn plus_adds() {
        let a = IoSnapshot { seq_read_bytes: 1, write_bytes: 2, ..Default::default() };
        let b = IoSnapshot { seq_read_bytes: 3, rand_read_ops: 4, ..Default::default() };
        let c = a.plus(&b);
        assert_eq!(c.seq_read_bytes, 4);
        assert_eq!(c.write_bytes, 2);
        assert_eq!(c.rand_read_ops, 4);
    }

    #[test]
    fn since_inverts_plus_on_every_field() {
        let a = IoSnapshot {
            seq_read_bytes: 100,
            seq_read_ops: 3,
            rand_read_bytes: 40,
            rand_read_ops: 5,
            batched_read_bytes: 64,
            batched_read_ops: 1,
            write_bytes: 256,
            write_ops: 2,
        };
        let b = IoSnapshot {
            seq_read_bytes: 7,
            seq_read_ops: 1,
            rand_read_bytes: 8,
            rand_read_ops: 2,
            batched_read_bytes: 16,
            batched_read_ops: 4,
            write_bytes: 32,
            write_ops: 8,
        };
        // The diff of a later cumulative snapshot against an earlier one
        // recovers exactly the traffic in between, field by field.
        assert_eq!(a.plus(&b).since(&a), b);
        assert_eq!(a.since(&a), IoSnapshot::default());
        assert_eq!(a.plus(&b).since(&a).total_bytes(), b.total_bytes());
    }

    #[test]
    fn gb_conversion() {
        let s = IoSnapshot { seq_read_bytes: 2_000_000_000, ..Default::default() };
        assert!((s.total_gb() - 2.0).abs() < 1e-9);
    }
}
