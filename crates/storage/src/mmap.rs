//! Memory-mapped read backend.
//!
//! Functionally identical to [`crate::FileBackend`] but serves reads by
//! copying out of a shared memory map. Access classification and byte
//! accounting are unchanged — the tracker measures *logical* out-of-core
//! traffic, which is what the paper's I/O-amount figures report,
//! independent of whether the OS satisfies a read from the page cache.

use crate::error::{Result, StorageError};
use crate::tracker::{Access, IoTracker};
use crate::{RangeRead, ReadBackend};
use memmap2::Mmap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Per-access-class mmap copy-out latency in nanoseconds (page faults on
/// a cold map show up as slow outliers here).
static READ_NS_SEQ: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.mmap.read_ns.seq");
static READ_NS_RAND: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.mmap.read_ns.rand");
static READ_NS_BATCHED: hus_obs::LazyHistogram =
    hus_obs::LazyHistogram::new("storage.mmap.read_ns.batched");

fn read_latency_hist(access: Access) -> &'static hus_obs::LazyHistogram {
    match access {
        Access::Sequential => &READ_NS_SEQ,
        Access::Random => &READ_NS_RAND,
        Access::Batched => &READ_NS_BATCHED,
    }
}

/// Read-only mmap-backed storage backend.
pub struct MmapBackend {
    path: PathBuf,
    map: Option<Mmap>,
    tracker: Arc<IoTracker>,
}

impl MmapBackend {
    /// Map `path` read-only, attributing traffic to `tracker`.
    pub fn open(path: impl AsRef<Path>, tracker: Arc<IoTracker>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|e| StorageError::io_at(&path, e))?;
        let len = file.metadata().map_err(|e| StorageError::io_at(&path, e))?.len();
        // mmap of an empty file fails on some platforms; model it as None.
        let map = if len == 0 {
            None
        } else {
            // SAFETY: we map read-only and the engines in this workspace
            // never modify a data file after it has been published by its
            // builder (builders write to a temp name and rename).
            Some(unsafe { Mmap::map(&file) }.map_err(|e| StorageError::io_at(&path, e))?)
        };
        Ok(MmapBackend { path, map, tracker })
    }

    /// Borrow a byte range directly from the map (zero-copy). Traffic is
    /// still recorded against the tracker.
    pub fn slice(&self, offset: u64, len: usize, access: Access) -> Result<&[u8]> {
        let total = self.len();
        if offset + len as u64 > total {
            return Err(StorageError::OutOfBounds { offset, len: len as u64, file_len: total });
        }
        self.tracker.record_read(access, len as u64);
        let map = self.map.as_ref().expect("non-empty checked above");
        Ok(&map[offset as usize..offset as usize + len])
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl ReadBackend for MmapBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        let want = buf.len();
        let t0 = hus_obs::latency_timer();
        let slice = self.slice(offset, want, access)?;
        buf.copy_from_slice(slice);
        read_latency_hist(access).record_elapsed(t0);
        Ok(())
    }

    /// Multi-range copy-out billed as one tracked operation, matching
    /// [`crate::FileBackend`]'s spanning read: a memory map has no
    /// syscall to save, but the op-count accounting must agree between
    /// backends.
    fn read_ranges(&self, ranges: &mut [RangeRead<'_>], access: Access) -> Result<()> {
        crate::debug_assert_ranges_sorted(ranges);
        match ranges {
            [] => return Ok(()),
            [only] => return self.read_at(only.offset, only.buf, access),
            _ => {}
        }
        let total = self.len();
        let mut requested = 0u64;
        for r in ranges.iter() {
            if r.offset + r.buf.len() as u64 > total {
                return Err(StorageError::OutOfBounds {
                    offset: r.offset,
                    len: r.buf.len() as u64,
                    file_len: total,
                });
            }
            requested += r.buf.len() as u64;
        }
        if requested == 0 {
            return Ok(());
        }
        let t0 = hus_obs::latency_timer();
        let map = self.map.as_ref().expect("non-empty checked above");
        for r in ranges.iter_mut() {
            let s = r.offset as usize;
            r.buf.copy_from_slice(&map[s..s + r.buf.len()]);
        }
        read_latency_hist(access).record_elapsed(t0);
        self.tracker.record_read(access, requested);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.map.as_ref().map_or(0, |m| m.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(content: &[u8]) -> (tempfile::TempDir, PathBuf) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("data.bin");
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        (dir, path)
    }

    #[test]
    fn mmap_reads_match_file() {
        let data: Vec<u8> = (0..=255).collect();
        let (_d, path) = tmp_file(&data);
        let tracker = Arc::new(IoTracker::new());
        let b = MmapBackend::open(&path, Arc::clone(&tracker)).unwrap();
        assert_eq!(b.len(), 256);
        let mut buf = [0u8; 16];
        b.read_at(100, &mut buf, Access::Sequential).unwrap();
        assert_eq!(&buf[..], &data[100..116]);
        assert_eq!(tracker.snapshot().seq_read_bytes, 16);
    }

    #[test]
    fn zero_copy_slice() {
        let (_d, path) = tmp_file(&[7u8; 64]);
        let tracker = Arc::new(IoTracker::new());
        let b = MmapBackend::open(&path, Arc::clone(&tracker)).unwrap();
        let s = b.slice(8, 8, Access::Random).unwrap();
        assert_eq!(s, &[7u8; 8]);
        assert_eq!(tracker.snapshot().rand_read_bytes, 8);
        assert_eq!(tracker.snapshot().rand_read_ops, 1);
    }

    #[test]
    fn empty_file_maps_as_empty() {
        let (_d, path) = tmp_file(&[]);
        let b = MmapBackend::open(&path, Arc::new(IoTracker::new())).unwrap();
        assert!(b.is_empty());
        let mut buf = [0u8; 1];
        assert!(b.read_at(0, &mut buf, Access::Sequential).is_err());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (_d, path) = tmp_file(&[0u8; 10]);
        let b = MmapBackend::open(&path, Arc::new(IoTracker::new())).unwrap();
        assert!(b.slice(5, 6, Access::Random).is_err());
        assert!(b.slice(5, 5, Access::Random).is_ok());
    }
}
