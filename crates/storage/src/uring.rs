//! Minimal `io_uring` submission path for vectored direct-I/O reads.
//!
//! The workspace deliberately has no `libc` dependency, so this module
//! speaks to the kernel directly: raw `syscall` instructions for
//! `io_uring_setup`/`io_uring_enter`/`mmap`/`munmap`/`close` and
//! hand-written `#[repr(C)]` mirrors of the ABI structs. Only the tiny
//! slice of the interface we need is implemented: fixed-depth rings,
//! `IORING_OP_READ`, and blocking completion waits.
//!
//! Availability is probed at runtime ([`Uring::probe`] performs a full
//! NOP round trip), because seccomp filters and old kernels commonly
//! reject the syscalls; callers fall back to a thread-pool fan-out when
//! probing fails. Compiled only on Linux x86_64/aarch64 behind the
//! `uring` cargo feature (default-on).

use std::io;

// --- syscall numbers -----------------------------------------------------

const SYS_IO_URING_SETUP: i64 = 425;
const SYS_IO_URING_ENTER: i64 = 426;

#[cfg(target_arch = "x86_64")]
const SYS_MMAP: i64 = 9;
#[cfg(target_arch = "x86_64")]
const SYS_MUNMAP: i64 = 11;
#[cfg(target_arch = "x86_64")]
const SYS_CLOSE: i64 = 3;

#[cfg(target_arch = "aarch64")]
const SYS_MMAP: i64 = 222;
#[cfg(target_arch = "aarch64")]
const SYS_MUNMAP: i64 = 215;
#[cfg(target_arch = "aarch64")]
const SYS_CLOSE: i64 = 57;

/// Raw 6-argument syscall. Returns the kernel's raw return value:
/// negative values in `[-4095, -1]` are `-errno`.
///
/// # Safety
/// The caller must uphold the contract of the specific syscall invoked
/// (valid pointers, lengths, file descriptors).
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(nr: i64, a0: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
    let mut ret = nr;
    std::arch::asm!(
        "syscall",
        inlateout("rax") ret,
        in("rdi") a0,
        in("rsi") a1,
        in("rdx") a2,
        in("r10") a3,
        in("r8") a4,
        in("r9") a5,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

/// Raw 6-argument syscall (aarch64 flavor); see the x86_64 twin.
///
/// # Safety
/// The caller must uphold the contract of the specific syscall invoked.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(nr: i64, a0: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
    let mut ret = a0;
    std::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") ret,
        in("x1") a1,
        in("x2") a2,
        in("x3") a3,
        in("x4") a4,
        in("x5") a5,
        options(nostack),
    );
    ret
}

fn check(ret: i64) -> io::Result<i64> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error((-ret) as i32))
    } else {
        Ok(ret)
    }
}

// --- ABI structs ---------------------------------------------------------

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Default, Clone, Copy)]
struct IoUringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

/// One submission-queue entry (64 bytes on every kernel we target).
#[repr(C)]
#[derive(Clone, Copy)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    rw_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    pad2: [u64; 2],
}

/// One completion-queue entry.
#[repr(C)]
#[derive(Clone, Copy)]
struct Cqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;
const IORING_ENTER_GETEVENTS: i64 = 1;
const IORING_FEAT_SINGLE_MMAP: u32 = 1;
const IORING_OP_NOP: u8 = 0;
const IORING_OP_READ: u8 = 22;

const PROT_READ_WRITE: i64 = 0x3;
const MAP_SHARED_POPULATE: i64 = 0x01 | 0x8000;

// --- mapped ring region --------------------------------------------------

struct MapRegion {
    ptr: *mut u8,
    len: usize,
}

impl MapRegion {
    fn map(fd: i32, len: usize, offset: i64) -> io::Result<MapRegion> {
        // SAFETY: standard anonymous-address shared mapping of an io_uring
        // ring region; the kernel validates fd/offset/len.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len as i64,
                PROT_READ_WRITE,
                MAP_SHARED_POPULATE,
                fd as i64,
                offset,
            )
        };
        check(ret).map(|p| MapRegion { ptr: p as *mut u8, len })
    }

    /// # Safety
    /// `byte_off` must lie within the mapping.
    unsafe fn at<T>(&self, byte_off: u32) -> *mut T {
        self.ptr.add(byte_off as usize).cast::<T>()
    }
}

impl Drop for MapRegion {
    fn drop(&mut self) {
        // SAFETY: unmapping a region we mapped and no longer touch.
        unsafe { syscall6(SYS_MUNMAP, self.ptr as i64, self.len as i64, 0, 0, 0, 0) };
    }
}

// --- the ring ------------------------------------------------------------

use std::sync::atomic::{AtomicU32, Ordering};

/// One direct read request: fill `buf` from absolute file `offset`.
///
/// Offset and buffer must satisfy the `O_DIRECT` alignment contract (see
/// [`crate::aligned::DIRECT_ALIGN`]). After [`Uring::read_fully`] returns,
/// `filled` holds the number of bytes actually read (short only at EOF).
pub struct ReadJob<'a> {
    /// Absolute, aligned byte offset in the file.
    pub offset: u64,
    /// Aligned destination buffer.
    pub buf: &'a mut [u8],
    /// Bytes filled so far; set by the ring.
    pub filled: usize,
}

/// A fixed-depth `io_uring` instance dedicated to `O_DIRECT` reads.
///
/// Not `Sync`: submission mutates the rings, so callers serialize access
/// (the direct backend keeps it behind a mutex).
pub struct Uring {
    fd: i32,
    _sq_ring: MapRegion,
    _cq_ring: Option<MapRegion>,
    _sqes: MapRegion,
    sq_head: *const AtomicU32,
    sq_tail: *const AtomicU32,
    sq_mask: u32,
    sq_array: *mut u32,
    cq_head: *const AtomicU32,
    cq_tail: *const AtomicU32,
    cq_mask: u32,
    cqes: *const Cqe,
    sqe_base: *mut Sqe,
    depth: u32,
}

// SAFETY: the ring is only ever driven through `&mut self`; the raw
// pointers target the private mappings owned by this value.
unsafe impl Send for Uring {}

impl Uring {
    /// Try to create a ring of (at least) `depth` entries and verify it
    /// works end to end with a NOP round trip. Returns `None` when the
    /// kernel, a seccomp filter, or resource limits refuse any step —
    /// callers then use the thread-pool fallback.
    pub fn probe(depth: u32) -> Option<Uring> {
        let depth = depth.clamp(1, 256);
        let mut params = IoUringParams::default();
        // SAFETY: params is a properly-sized zeroed ABI struct.
        let ret = unsafe {
            syscall6(SYS_IO_URING_SETUP, depth as i64, &mut params as *mut _ as i64, 0, 0, 0, 0)
        };
        let fd = check(ret).ok()? as i32;
        match Self::finish(fd, &params) {
            Ok(mut ring) => match ring.nop_round_trip() {
                Ok(()) => Some(ring),
                Err(_) => None,
            },
            Err(_) => {
                // SAFETY: fd came from io_uring_setup above and the ring
                // mappings failed, so nothing else references it.
                unsafe { syscall6(SYS_CLOSE, fd as i64, 0, 0, 0, 0, 0) };
                None
            }
        }
    }

    fn finish(fd: i32, p: &IoUringParams) -> io::Result<Uring> {
        let sq_size = p.sq_off.array as usize + p.sq_entries as usize * 4;
        let cq_size = p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
        let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;
        let sq_ring = MapRegion::map(
            fd,
            if single { sq_size.max(cq_size) } else { sq_size },
            IORING_OFF_SQ_RING,
        )?;
        let cq_ring =
            if single { None } else { Some(MapRegion::map(fd, cq_size, IORING_OFF_CQ_RING)?) };
        let sqes = MapRegion::map(
            fd,
            p.sq_entries as usize * std::mem::size_of::<Sqe>(),
            IORING_OFF_SQES,
        )?;

        let cq_base: &MapRegion = cq_ring.as_ref().unwrap_or(&sq_ring);
        // SAFETY: all offsets come from the kernel's io_uring_params and
        // lie within the mappings established above.
        let ring = unsafe {
            Uring {
                fd,
                sq_head: sq_ring.at::<AtomicU32>(p.sq_off.head),
                sq_tail: sq_ring.at::<AtomicU32>(p.sq_off.tail),
                sq_mask: *sq_ring.at::<u32>(p.sq_off.ring_mask),
                sq_array: sq_ring.at::<u32>(p.sq_off.array),
                cq_head: cq_base.at::<AtomicU32>(p.cq_off.head),
                cq_tail: cq_base.at::<AtomicU32>(p.cq_off.tail),
                cq_mask: *cq_base.at::<u32>(p.cq_off.ring_mask),
                cqes: cq_base.at::<Cqe>(p.cq_off.cqes),
                sqe_base: sqes.at::<Sqe>(0),
                depth: p.sq_entries,
                _sq_ring: sq_ring,
                _cq_ring: cq_ring,
                _sqes: sqes,
            }
        };
        Ok(ring)
    }

    /// Submission-queue depth the kernel granted.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    fn enter(&self, to_submit: u32, min_complete: u32) -> io::Result<u32> {
        // SAFETY: fd is our live ring; no sigset is passed.
        let ret = unsafe {
            syscall6(
                SYS_IO_URING_ENTER,
                self.fd as i64,
                to_submit as i64,
                min_complete as i64,
                IORING_ENTER_GETEVENTS,
                0,
                0,
            )
        };
        check(ret).map(|n| n as u32)
    }

    /// Push one SQE; returns false when the submission queue is full.
    fn push_sqe(&mut self, sqe: Sqe) -> bool {
        // SAFETY: head/tail/array/sqe pointers were derived from the live
        // ring mappings in `finish`; indices are masked to the ring size.
        unsafe {
            let head = (*self.sq_head).load(Ordering::Acquire);
            let tail = (*self.sq_tail).load(Ordering::Relaxed);
            if tail.wrapping_sub(head) >= self.depth {
                return false;
            }
            let idx = tail & self.sq_mask;
            *self.sqe_base.add(idx as usize) = sqe;
            *self.sq_array.add(idx as usize) = idx;
            (*self.sq_tail).store(tail.wrapping_add(1), Ordering::Release);
        }
        true
    }

    /// Pop one CQE if available.
    fn pop_cqe(&mut self) -> Option<Cqe> {
        // SAFETY: see `push_sqe`; the CQE at a masked index below the tail
        // has been fully written by the kernel (Acquire pairs with its
        // Release tail update).
        unsafe {
            let head = (*self.cq_head).load(Ordering::Relaxed);
            let tail = (*self.cq_tail).load(Ordering::Acquire);
            if head == tail {
                return None;
            }
            let cqe = *self.cqes.add((head & self.cq_mask) as usize);
            (*self.cq_head).store(head.wrapping_add(1), Ordering::Release);
            Some(cqe)
        }
    }

    fn nop_round_trip(&mut self) -> io::Result<()> {
        let sqe = Sqe {
            opcode: IORING_OP_NOP,
            flags: 0,
            ioprio: 0,
            fd: -1,
            off: 0,
            addr: 0,
            len: 0,
            rw_flags: 0,
            user_data: u64::MAX,
            buf_index: 0,
            personality: 0,
            splice_fd_in: 0,
            pad2: [0; 2],
        };
        if !self.push_sqe(sqe) {
            return Err(io::Error::other("sq full during probe"));
        }
        self.enter(1, 1)?;
        match self.pop_cqe() {
            Some(c) if c.user_data == u64::MAX && c.res >= 0 => Ok(()),
            _ => Err(io::Error::other("nop round trip failed")),
        }
    }

    /// Read every job to completion (short only at EOF), overlapping the
    /// requests at ring depth. Kernel-reported short reads that end on an
    /// alignment boundary are resubmitted as continuations; a short read
    /// off the alignment quantum means EOF under `O_DIRECT` and finishes
    /// the job.
    ///
    /// On any per-request error all in-flight requests are still drained
    /// before returning, so the borrowed buffers are never written after
    /// this call returns.
    pub fn read_fully(&mut self, fd: i32, jobs: &mut [ReadJob<'_>]) -> io::Result<()> {
        let mut pending: Vec<usize> = (0..jobs.len()).rev().collect();
        let mut in_flight = 0u32;
        let mut first_err: Option<io::Error> = None;

        while !pending.is_empty() || in_flight > 0 {
            let mut submitted = 0u32;
            if first_err.is_none() {
                while in_flight < self.depth {
                    let Some(&i) = pending.last() else { break };
                    let job = &mut jobs[i];
                    let sqe = Sqe {
                        opcode: IORING_OP_READ,
                        flags: 0,
                        ioprio: 0,
                        fd,
                        off: job.offset + job.filled as u64,
                        addr: job.buf[job.filled..].as_mut_ptr() as u64,
                        len: (job.buf.len() - job.filled) as u32,
                        rw_flags: 0,
                        user_data: i as u64,
                        buf_index: 0,
                        personality: 0,
                        splice_fd_in: 0,
                        pad2: [0; 2],
                    };
                    if !self.push_sqe(sqe) {
                        break;
                    }
                    pending.pop();
                    in_flight += 1;
                    submitted += 1;
                }
            } else {
                // An error occurred: stop submitting, just drain.
                pending.clear();
            }
            if submitted == 0 && in_flight == 0 {
                break;
            }
            let wait = if in_flight > 0 { 1 } else { 0 };
            if let Err(e) = self.enter(submitted, wait) {
                // EINTR: retry the wait; anything else is fatal, but we
                // must still drain in-flight completions.
                if e.kind() != io::ErrorKind::Interrupted {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    // Block until the kernel finishes outstanding reads.
                    while in_flight > 0 {
                        match self.enter(0, 1) {
                            Ok(_) => {}
                            Err(e2) if e2.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                        while self.pop_cqe().is_some() {
                            in_flight -= 1;
                        }
                    }
                    break;
                }
            }
            while let Some(cqe) = self.pop_cqe() {
                in_flight -= 1;
                let i = cqe.user_data as usize;
                if cqe.res < 0 {
                    if first_err.is_none() {
                        first_err = Some(io::Error::from_raw_os_error(-cqe.res));
                    }
                    continue;
                }
                let got = cqe.res as usize;
                let job = &mut jobs[i];
                job.filled += got;
                let done = got == 0
                    || job.filled == job.buf.len()
                    || !job.filled.is_multiple_of(crate::aligned::DIRECT_ALIGN);
                if !done && first_err.is_none() {
                    pending.push(i);
                }
            }
        }

        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for Uring {
    fn drop(&mut self) {
        // SAFETY: closing the ring fd we own; mappings are unmapped by
        // their own Drop impls afterwards.
        unsafe { syscall6(SYS_CLOSE, self.fd as i64, 0, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligned::{AlignedBuf, DIRECT_ALIGN};
    use std::io::Write;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn abi_struct_sizes() {
        assert_eq!(std::mem::size_of::<IoUringParams>(), 120);
        assert_eq!(std::mem::size_of::<Sqe>(), 64);
        assert_eq!(std::mem::size_of::<Cqe>(), 16);
    }

    #[test]
    fn probe_then_read_round_trip() {
        let Some(mut ring) = Uring::probe(8) else {
            eprintln!("io_uring unavailable on this host; skipping");
            return;
        };
        assert!(ring.depth() >= 8);

        // Write two blocks of recognizable data, read them back as two
        // concurrent aligned jobs.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("ring.bin");
        let mut data = vec![0u8; 2 * DIRECT_ALIGN];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        std::fs::File::create(&path).unwrap().write_all(&data).unwrap();
        let f = std::fs::File::open(&path).unwrap();

        let mut b0 = AlignedBuf::zeroed(DIRECT_ALIGN);
        let mut b1 = AlignedBuf::zeroed(DIRECT_ALIGN);
        let mut jobs = [
            ReadJob { offset: 0, buf: &mut b0, filled: 0 },
            ReadJob { offset: DIRECT_ALIGN as u64, buf: &mut b1, filled: 0 },
        ];
        ring.read_fully(f.as_raw_fd(), &mut jobs).unwrap();
        assert_eq!(jobs[0].filled, DIRECT_ALIGN);
        assert_eq!(jobs[1].filled, DIRECT_ALIGN);
        assert_eq!(&b0[..], &data[..DIRECT_ALIGN]);
        assert_eq!(&b1[..], &data[DIRECT_ALIGN..]);
    }

    #[test]
    fn short_read_at_eof_reports_partial_fill() {
        let Some(mut ring) = Uring::probe(4) else {
            eprintln!("io_uring unavailable on this host; skipping");
            return;
        };
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("tail.bin");
        std::fs::File::create(&path).unwrap().write_all(&[7u8; 100]).unwrap();
        let f = std::fs::File::open(&path).unwrap();

        let mut b = AlignedBuf::zeroed(DIRECT_ALIGN);
        let mut jobs = [ReadJob { offset: 0, buf: &mut b, filled: 0 }];
        ring.read_fully(f.as_raw_fd(), &mut jobs).unwrap();
        assert_eq!(jobs[0].filled, 100);
        assert!(b[..100].iter().all(|&x| x == 7));
    }
}
