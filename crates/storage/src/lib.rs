//! # hus-storage — tracked out-of-core storage substrate
//!
//! Every out-of-core engine in this workspace (HUS-Graph itself as well as
//! the GraphChi- and GridGraph-style baselines) performs its disk I/O
//! through this crate, so that all systems are measured identically.
//!
//! The crate provides:
//!
//! * [`StorageDir`] — a directory of named data files with a shared
//!   [`IoTracker`]; readers classify every access as [`Access::Sequential`]
//!   or [`Access::Random`], mirroring the distinction at the heart of the
//!   HUS-Graph paper (§2.1, §3.4).
//! * [`ReadBackend`] implementations backed by positioned file reads
//!   ([`file::FileBackend`]) or memory maps ([`mmap::MmapBackend`]).
//! * [`DeviceProfile`] / [`CostModel`] — the paper's I/O time model
//!   (`bytes / throughput + seeks`), with HDD and SSD presets used by the
//!   experiment harness to reproduce Figure 11.
//! * [`probe`] — a small `fio`-like throughput measurement of the host,
//!   which can feed measured `T_sequential` / `T_random` into the
//!   predictor instead of a preset profile.
//! * [`pod`] — safe-by-construction byte ⇄ typed-slice conversions used by
//!   the on-disk formats of all engines.
//! * [`cache`] — an LRU page cache over any backend, modeling an explicit
//!   memory budget (cache hits are not billed as device I/O).
//! * [`codec_backend`] — a decoding view over codec-compressed shard
//!   files (see the `hus-codec` crate); readers address decoded record
//!   offsets while the tracker bills the encoded on-disk bytes.
//! * [`checksum`] / [`fault`] / [`retry`] — the storage resilience layer:
//!   CRC-32C shard footers, deterministic fault injection (`HUS_FAULT`),
//!   and transparent retry with bounded backoff plus degradation paths
//!   (mmap→file, batched→per-range). See DESIGN.md §9.
//! * [`delta`] — on-disk delta runs: the spilled, CRC-sealed form of the
//!   dynamic-graph write buffer, merged newest-first into reads and
//!   folded away by compaction. See DESIGN.md §11.
//! * [`manifest`] / [`durable`] / [`StagingDir`] — the crash-consistent
//!   build lifecycle: sibling staging directories committed by atomic
//!   rename, generation-stamped `MANIFEST` files, fsync discipline with
//!   a `HUS_NO_FSYNC` escape hatch, and `HUS_CRASH_AT` crash points for
//!   the recovery test harness. See DESIGN.md §10.

#![warn(missing_docs)]

pub mod aligned;
pub mod buffer;
pub mod cache;
pub mod checksum;
pub mod codec_backend;
pub mod delta;
pub mod device;
pub mod dir;
pub mod direct;
pub mod durable;
pub mod error;
pub mod fault;
pub mod file;
pub mod manifest;
pub mod mmap;
pub mod pod;
pub mod probe;
pub mod retry;
pub mod tracker;
#[cfg(all(
    feature = "uring",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod uring;

pub use aligned::{AlignedBuf, BufPool, DIRECT_ALIGN};
pub use buffer::{BlockStream, TrackedWriter};
pub use cache::{CacheStats, CachedBackend};
pub use checksum::{crc32c, Crc32c, ShardFooter};
pub use codec_backend::{BlockSpan, CodecBackend};
pub use delta::{DeltaRecord, DeltaRun};
pub use device::{CostModel, DeviceProfile, Throughput};
pub use dir::{BackendKind, StagingDir, StorageDir};
pub use direct::DirectBackend;
pub use error::{Result, StorageError};
pub use fault::{FaultInjectBackend, FaultInjectWriter, FaultSpec, WriteFault};
pub use file::FileBackend;
pub use manifest::{BuildManifest, ManifestEntry, MANIFEST_FILE};
pub use mmap::MmapBackend;
pub use pod::Pod;
pub use retry::{ResilienceSnapshot, ResilienceTracker, RetryBackend, RetryPolicy};
pub use tracker::{Access, IoSnapshot, IoTracker};

/// Object-safe read interface shared by the file and mmap backends.
///
/// Offsets are absolute byte offsets within the backing file. Callers must
/// classify each access so that the shared [`IoTracker`] can attribute the
/// traffic to the sequential or random bucket.
///
/// Backends are normally obtained from [`StorageDir::reader`], which
/// composes tracking, fault injection, retry and caching:
///
/// ```
/// use hus_storage::{Access, ReadBackend, StorageDir};
///
/// let tmp = tempfile::tempdir()?;
/// let dir = StorageDir::create(tmp.path())?;
/// let mut w = dir.writer("edges.bin")?;
/// w.write_all(&[10, 20, 30, 40])?;
/// w.finish()?;
///
/// let r = dir.reader("edges.bin")?;
/// let mut buf = [0u8; 2];
/// r.read_at(1, &mut buf, Access::Random)?;
/// assert_eq!(buf, [20, 30]);
/// assert_eq!(r.len(), 4);
/// # Ok::<(), hus_storage::StorageError>(())
/// ```
pub trait ReadBackend: Send + Sync {
    /// Read exactly `buf.len()` bytes starting at byte `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()>;

    /// Fill several disjoint ranges in one logical request.
    ///
    /// The default implementation loops [`ReadBackend::read_at`] (one
    /// tracked access per range); backends with a cheaper multi-range
    /// path — notably [`FileBackend`], which issues a single spanning
    /// `pread` — override it and bill the *requested* bytes once, so the
    /// modeled byte count is identical either way and only the operation
    /// count shrinks. Callers pass ranges sorted by offset — vectored
    /// submission ([`direct::DirectBackend`]) and the spanning-read
    /// optimization both rely on it, and every implementation
    /// debug-asserts it.
    fn read_ranges(&self, ranges: &mut [RangeRead<'_>], access: Access) -> Result<()> {
        debug_assert_ranges_sorted(ranges);
        for r in ranges {
            self.read_at(r.offset, r.buf, access)?;
        }
        Ok(())
    }

    /// Total length of the backing file in bytes.
    fn len(&self) -> u64;

    /// Whether the backing file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One destination range of a [`ReadBackend::read_ranges`] request: fill
/// `buf` from the backing file starting at byte `offset`.
pub struct RangeRead<'a> {
    /// Absolute byte offset of the range.
    pub offset: u64,
    /// Destination buffer; its length is the range length.
    pub buf: &'a mut [u8],
}

/// Debug-assert the [`ReadBackend::read_ranges`] calling convention:
/// ranges sorted by offset. Vectored submission orders its queue by this,
/// and the spanning-read backends compute their span from first/last.
pub fn debug_assert_ranges_sorted(ranges: &[RangeRead<'_>]) {
    debug_assert!(
        ranges.windows(2).all(|w| w[0].offset <= w[1].offset),
        "read_ranges requires ranges sorted by offset"
    );
}

impl<T: ReadBackend + ?Sized> ReadBackend for std::sync::Arc<T> {
    fn read_at(&self, offset: u64, buf: &mut [u8], access: Access) -> Result<()> {
        (**self).read_at(offset, buf, access)
    }

    fn read_ranges(&self, ranges: &mut [RangeRead<'_>], access: Access) -> Result<()> {
        (**self).read_ranges(ranges, access)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }
}

/// Read a `Vec<T>` of `count` items starting at `offset`, copying out of the
/// backend (alignment-safe for any `offset`).
pub fn read_pod_vec<T: Pod, B: ReadBackend + ?Sized>(
    backend: &B,
    offset: u64,
    count: usize,
    access: Access,
) -> Result<Vec<T>> {
    let mut out: Vec<T> = vec![T::zeroed(); count];
    backend.read_at(offset, pod::as_bytes_mut(&mut out), access)?;
    Ok(out)
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// Backend that serves a constant pattern — just enough to drive the
    /// default `read_ranges` implementation.
    struct Patterned(u64);

    impl ReadBackend for Patterned {
        fn read_at(&self, offset: u64, buf: &mut [u8], _access: Access) -> Result<()> {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = ((offset + i as u64) % 251) as u8;
            }
            Ok(())
        }

        fn len(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn default_read_ranges_accepts_sorted_input() {
        let b = Patterned(1024);
        let (mut x, mut y) = ([0u8; 4], [0u8; 4]);
        let mut ranges =
            [RangeRead { offset: 8, buf: &mut x }, RangeRead { offset: 100, buf: &mut y }];
        b.read_ranges(&mut ranges, Access::Batched).unwrap();
        assert_eq!(x, [8, 9, 10, 11]);
    }

    /// The documented contract — ranges sorted by offset — is now
    /// enforced in debug builds rather than silently assumed.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted by offset")]
    fn default_read_ranges_rejects_unsorted_input_in_debug() {
        let b = Patterned(1024);
        let (mut x, mut y) = ([0u8; 4], [0u8; 4]);
        let mut ranges =
            [RangeRead { offset: 100, buf: &mut x }, RangeRead { offset: 8, buf: &mut y }];
        let _ = b.read_ranges(&mut ranges, Access::Batched);
    }
}
