//! Streaming helpers: buffered tracked writing and chunked block scans.

use crate::error::{Result, StorageError};
use crate::fault::{FaultInjectWriter, WriteFault};
use crate::pod::{self, Pod};
use crate::tracker::{Access, IoTracker};
use crate::ReadBackend;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default chunk size for streaming scans (matches a typical readahead
/// window; large enough that per-chunk tracker updates are negligible).
pub const DEFAULT_CHUNK: usize = 4 << 20;

/// Buffered writer that bills every byte to the shared tracker.
pub struct TrackedWriter {
    path: PathBuf,
    inner: BufWriter<File>,
    tracker: Arc<IoTracker>,
    written: u64,
    faults: Option<Arc<FaultInjectWriter>>,
}

impl TrackedWriter {
    /// Create (truncate) `path` for streaming output.
    pub fn create(path: impl AsRef<Path>, tracker: Arc<IoTracker>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(|e| StorageError::io_at(&path, e))?;
        Ok(TrackedWriter {
            path,
            inner: BufWriter::with_capacity(1 << 20, file),
            tracker,
            written: 0,
            faults: None,
        })
    }

    /// Attach a write-fault injector: each `write_all` draws transient
    /// write faults (ENOSPC / short write / torn) and `finish_synced`
    /// draws the fsync-failure kind, so a streaming build exercises the
    /// same failure modes as whole-file durable writes.
    pub fn with_faults(mut self, faults: Arc<FaultInjectWriter>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Append raw bytes.
    pub fn write_all(&mut self, data: &[u8]) -> Result<()> {
        if let Some(inj) = &self.faults {
            match inj.draw_stream(data.len()) {
                None | Some(WriteFault::FsyncFail) => {}
                Some(fault @ WriteFault::Enospc) => {
                    return Err(FaultInjectWriter::error_of(fault, &self.path));
                }
                Some(fault @ (WriteFault::ShortWrite { keep } | WriteFault::Torn { keep })) => {
                    let _ = self.inner.write_all(&data[..keep]);
                    self.written += keep as u64;
                    return Err(FaultInjectWriter::error_of(fault, &self.path));
                }
            }
        }
        self.inner.write_all(data).map_err(|e| StorageError::io_at(&self.path, e))?;
        self.written += data.len() as u64;
        Ok(())
    }

    /// Append a typed slice as raw little-endian bytes.
    pub fn write_pod_slice<T: Pod>(&mut self, items: &[T]) -> Result<()> {
        self.write_all(pod::as_bytes(items))
    }

    /// Append a single typed value.
    pub fn write_pod<T: Pod>(&mut self, item: &T) -> Result<()> {
        self.write_pod_slice(std::slice::from_ref(item))
    }

    /// Bytes written so far (== the offset the next write lands at).
    pub fn position(&self) -> u64 {
        self.written
    }

    /// Flush, record the traffic, and close the file.
    pub fn finish(mut self) -> Result<u64> {
        self.inner.flush().map_err(|e| StorageError::io_at(&self.path, e))?;
        self.tracker.record_write(self.written);
        Ok(self.written)
    }

    /// Like [`TrackedWriter::finish`], but also fsync the file so the
    /// bytes are durable before the caller records progress past them
    /// (subject to the `HUS_NO_FSYNC` escape hatch). Builders use this
    /// for files whose existence a later crash-recovery phase relies
    /// on; see DESIGN.md §10.
    pub fn finish_synced(mut self) -> Result<u64> {
        self.inner.flush().map_err(|e| StorageError::io_at(&self.path, e))?;
        if let Some(inj) = &self.faults {
            if inj.draw_fsync() {
                self.tracker.record_write(self.written);
                return Err(FaultInjectWriter::error_of(WriteFault::FsyncFail, &self.path));
            }
        }
        if crate::durable::fsync_enabled() {
            self.inner.get_ref().sync_all().map_err(|e| StorageError::io_at(&self.path, e))?;
        }
        self.tracker.record_write(self.written);
        Ok(self.written)
    }
}

/// Chunked sequential scan over a byte range of a backend.
///
/// Engines use this to stream whole in-blocks/edge-blocks; every chunk is
/// billed as [`Access::Sequential`].
pub struct BlockStream<'a> {
    backend: &'a dyn ReadBackend,
    pos: u64,
    end: u64,
    chunk: usize,
    buf: Vec<u8>,
}

impl<'a> BlockStream<'a> {
    /// Stream bytes `[start, end)` of `backend` in `chunk`-sized pieces.
    pub fn new(backend: &'a dyn ReadBackend, start: u64, end: u64, chunk: usize) -> Self {
        assert!(start <= end, "invalid range {start}..{end}");
        assert!(chunk > 0, "chunk must be positive");
        BlockStream { backend, pos: start, end, chunk, buf: Vec::new() }
    }

    /// Stream with the default chunk size.
    pub fn over(backend: &'a dyn ReadBackend, start: u64, end: u64) -> Self {
        Self::new(backend, start, end, DEFAULT_CHUNK)
    }

    /// Read the next chunk; `None` at end of range.
    #[allow(clippy::should_implement_trait)] // lending iterator: borrows self
    pub fn next(&mut self) -> Result<Option<&[u8]>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let want = ((self.end - self.pos) as usize).min(self.chunk);
        self.buf.resize(want, 0);
        self.backend.read_at(self.pos, &mut self.buf, Access::Sequential)?;
        self.pos += want as u64;
        Ok(Some(&self.buf))
    }

    /// Remaining bytes in the range.
    pub fn remaining(&self) -> u64 {
        self.end - self.pos
    }
}

/// Read an entire byte range as one sequential load.
pub fn read_range(backend: &dyn ReadBackend, start: u64, len: usize) -> Result<Vec<u8>> {
    let mut buf = vec![0u8; len];
    backend.read_at(start, &mut buf, Access::Sequential)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::StorageDir;

    fn store_with(name: &str, data: &[u8]) -> (tempfile::TempDir, StorageDir) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let mut w = dir.writer(name).unwrap();
        w.write_all(data).unwrap();
        w.finish().unwrap();
        (tmp, dir)
    }

    #[test]
    fn writer_tracks_on_finish_only() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let mut w = dir.writer("f.bin").unwrap();
        w.write_all(&[0; 100]).unwrap();
        assert_eq!(dir.tracker().snapshot().write_bytes, 0);
        assert_eq!(w.position(), 100);
        let n = w.finish().unwrap();
        assert_eq!(n, 100);
        assert_eq!(dir.tracker().snapshot().write_bytes, 100);
    }

    #[test]
    fn pod_writes_roundtrip() {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("s")).unwrap();
        let mut w = dir.writer("v.bin").unwrap();
        w.write_pod_slice(&[1u32, 2, 3]).unwrap();
        w.write_pod(&99u32).unwrap();
        w.finish().unwrap();
        let r = dir.reader("v.bin").unwrap();
        let v: Vec<u32> = crate::read_pod_vec(&*r, 0, 4, Access::Sequential).unwrap();
        assert_eq!(v, vec![1, 2, 3, 99]);
    }

    #[test]
    fn block_stream_covers_range_in_chunks() {
        let data: Vec<u8> = (0..100u8).collect();
        let (_t, dir) = store_with("d.bin", &data);
        let r = dir.reader("d.bin").unwrap();
        let mut s = BlockStream::new(&*r, 10, 90, 32);
        let mut collected = Vec::new();
        let mut chunks = 0;
        while let Some(c) = s.next().unwrap() {
            collected.extend_from_slice(c);
            chunks += 1;
        }
        assert_eq!(collected, &data[10..90]);
        assert_eq!(chunks, 3); // 32 + 32 + 16
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn block_stream_empty_range() {
        let (_t, dir) = store_with("d.bin", &[0u8; 8]);
        let r = dir.reader("d.bin").unwrap();
        let mut s = BlockStream::over(&*r, 4, 4);
        assert!(s.next().unwrap().is_none());
    }

    #[test]
    fn stream_bills_sequential() {
        let (_t, dir) = store_with("d.bin", &[0u8; 64]);
        dir.tracker().reset();
        let r = dir.reader("d.bin").unwrap();
        let mut s = BlockStream::new(&*r, 0, 64, 16);
        while s.next().unwrap().is_some() {}
        let snap = dir.tracker().snapshot();
        assert_eq!(snap.seq_read_bytes, 64);
        assert_eq!(snap.rand_read_bytes, 0);
        assert_eq!(snap.seq_read_ops, 4);
    }

    #[test]
    fn read_range_helper() {
        let (_t, dir) = store_with("d.bin", b"hello world");
        let r = dir.reader("d.bin").unwrap();
        assert_eq!(read_range(&*r, 6, 5).unwrap(), b"world");
    }
}
