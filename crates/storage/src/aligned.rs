//! 4 KiB-aligned I/O buffers and a reusing free-list pool.
//!
//! `O_DIRECT` reads bypass the OS page cache and therefore require the
//! destination buffer address, the file offset and the transfer length to
//! all be aligned to the device's logical block size. We align to 4096
//! bytes — a multiple of every logical block size in practice — so one
//! buffer shape serves every device. Allocating page-aligned memory per
//! read would dominate small-read latency, so [`BufPool`] keeps returned
//! buffers on a free list for reuse.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::sync::Mutex;

/// Alignment (bytes) required for `O_DIRECT` transfers: buffer address,
/// file offset and length must all be multiples of this.
pub const DIRECT_ALIGN: usize = 4096;

/// Round `n` up to the next multiple of [`DIRECT_ALIGN`].
pub fn align_up(n: u64) -> u64 {
    n.div_ceil(DIRECT_ALIGN as u64) * DIRECT_ALIGN as u64
}

/// Round `n` down to the previous multiple of [`DIRECT_ALIGN`].
pub fn align_down(n: u64) -> u64 {
    n - n % DIRECT_ALIGN as u64
}

/// A heap buffer whose address and length are both multiples of
/// [`DIRECT_ALIGN`], suitable as an `O_DIRECT` transfer target.
///
/// Dereferences to `[u8]` over the full aligned capacity.
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: the buffer exclusively owns its allocation; the raw pointer is
// never aliased outside `&self`/`&mut self` borrows.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocate a zeroed buffer of at least `min_len` bytes, rounded up to
    /// the alignment quantum. `min_len` of zero still allocates one block
    /// so the pointer stays valid.
    pub fn zeroed(min_len: usize) -> AlignedBuf {
        let len = (align_up(min_len.max(1) as u64)) as usize;
        let layout = Layout::from_size_align(len, DIRECT_ALIGN).expect("aligned layout");
        // SAFETY: `len` is non-zero and the layout is valid by construction.
        let raw = unsafe { alloc_zeroed(layout) };
        let ptr = NonNull::new(raw).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        AlignedBuf { ptr, len }
    }

    /// Aligned capacity in bytes (a multiple of [`DIRECT_ALIGN`]).
    pub fn capacity(&self) -> usize {
        self.len
    }
}

impl Deref for AlignedBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` initialized bytes we own.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: `ptr` points at `len` initialized bytes we own exclusively.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, DIRECT_ALIGN).expect("aligned layout");
        // SAFETY: allocated in `zeroed` with exactly this layout.
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
    }
}

/// A free list of [`AlignedBuf`]s reused across reads.
///
/// [`take`](BufPool::take) hands out a buffer of at least the requested
/// capacity (reusing a pooled one when large enough, allocating
/// otherwise); [`give`](BufPool::give) returns it. The pool keeps at most
/// `max_pooled` buffers and drops the smallest first when over budget, so
/// a burst of large readahead buffers does not pin memory forever.
pub struct BufPool {
    free: Mutex<Vec<AlignedBuf>>,
    max_pooled: usize,
}

impl BufPool {
    /// Create a pool retaining at most `max_pooled` idle buffers.
    pub fn new(max_pooled: usize) -> BufPool {
        BufPool { free: Mutex::new(Vec::new()), max_pooled }
    }

    /// Obtain a buffer with capacity ≥ `min_len` (aligned up).
    pub fn take(&self, min_len: usize) -> AlignedBuf {
        let mut free = self.free.lock().unwrap();
        if let Some(i) = free.iter().position(|b| b.capacity() >= min_len) {
            return free.swap_remove(i);
        }
        drop(free);
        AlignedBuf::zeroed(min_len)
    }

    /// Return a buffer to the free list for reuse.
    pub fn give(&self, buf: AlignedBuf) {
        let mut free = self.free.lock().unwrap();
        free.push(buf);
        if free.len() > self.max_pooled {
            // Drop the smallest buffer: large ones are the expensive
            // allocations worth keeping.
            if let Some((i, _)) = free.iter().enumerate().min_by_key(|(_, b)| b.capacity()) {
                free.swap_remove(i);
            }
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_aligned_and_rounded() {
        for want in [0usize, 1, 4095, 4096, 4097, 100_000] {
            let b = AlignedBuf::zeroed(want);
            assert_eq!(b.as_ptr() as usize % DIRECT_ALIGN, 0);
            assert!(b.capacity() >= want.max(1));
            assert_eq!(b.capacity() % DIRECT_ALIGN, 0);
            assert!(b.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn align_helpers() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 4096);
        assert_eq!(align_up(4096), 4096);
        assert_eq!(align_up(4097), 8192);
        assert_eq!(align_down(4095), 0);
        assert_eq!(align_down(4096), 4096);
        assert_eq!(align_down(8191), 4096);
    }

    #[test]
    fn pool_reuses_and_caps() {
        let pool = BufPool::new(2);
        let a = pool.take(4096);
        let a_ptr = a.as_ptr() as usize;
        pool.give(a);
        let b = pool.take(100);
        assert_eq!(b.as_ptr() as usize, a_ptr, "pooled buffer should be reused");
        pool.give(b);
        pool.give(AlignedBuf::zeroed(8192));
        pool.give(AlignedBuf::zeroed(16384));
        assert_eq!(pool.idle(), 2, "pool keeps at most max_pooled buffers");
        // The two largest survive the eviction of the smallest.
        let big = pool.take(16384);
        assert!(big.capacity() >= 16384);
    }

    #[test]
    fn writes_round_trip() {
        let mut b = AlignedBuf::zeroed(4096);
        b[0] = 7;
        b[4095] = 9;
        assert_eq!((b[0], b[4095]), (7, 9));
    }
}
