//! Durability primitives for crash-consistent writes.
//!
//! Two small facilities shared by the builders, the checkpoint module
//! and the staging-commit machinery in [`crate::dir`]:
//!
//! * **fsync helpers** — [`sync_file`] / [`sync_dir`] flush a file's (or
//!   directory entry's) bytes to stable storage, honoring the
//!   `HUS_NO_FSYNC=1` escape hatch that test suites use to trade
//!   durability for speed.
//! * **crash points** — [`crash_point`] lets the recovery test harness
//!   kill the process at a *named* staged-write point
//!   (`HUS_CRASH_AT=<name>` or `<name>:<n>` for the n-th hit). The
//!   process exits abruptly via [`std::process::exit`], so buffered
//!   writes that were never flushed are genuinely lost — the surviving
//!   on-disk state is exactly what a power cut at that point would
//!   leave behind. Production runs never set the variable and the hook
//!   compiles down to one relaxed atomic load.
//!
//! See DESIGN.md §10 for the write-ordering contract these primitives
//! implement.

use crate::error::{Result, StorageError};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process exit code used by a triggered [`crash_point`], chosen to be
/// distinguishable from panics (101) and ordinary failures (1) so the
/// recovery harness can assert the crash actually fired.
pub const CRASH_EXIT_CODE: i32 = 86;

/// Whether fsync calls are live (`true` unless `HUS_NO_FSYNC` is set to
/// a truthy value). Cached on first use: the knob is a process-level
/// test accommodation, not a runtime toggle.
pub fn fsync_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("HUS_NO_FSYNC") {
        Ok(v) => v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"),
        Err(_) => true,
    })
}

/// Flush a regular file's data and metadata to stable storage
/// (no-op under `HUS_NO_FSYNC=1`).
pub fn sync_file(path: &Path) -> Result<()> {
    if !fsync_enabled() {
        return Ok(());
    }
    let f = std::fs::File::open(path).map_err(|e| StorageError::io_at(path, e))?;
    f.sync_all().map_err(|e| StorageError::io_at(path, e))
}

/// Flush a directory's entry list to stable storage, making renames and
/// file creations inside it durable (no-op under `HUS_NO_FSYNC=1`).
pub fn sync_dir(path: &Path) -> Result<()> {
    if !fsync_enabled() {
        return Ok(());
    }
    // On Linux a directory opened read-only can be fsync'd like a file.
    let f = std::fs::File::open(path).map_err(|e| StorageError::io_at(path, e))?;
    f.sync_all().map_err(|e| StorageError::io_at(path, e))
}

/// Flush the parent directory of `path` (see [`sync_dir`]); no-op for
/// paths without a named parent.
pub fn sync_parent_dir(path: &Path) -> Result<()> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => sync_dir(parent),
        _ => Ok(()),
    }
}

/// The parsed `HUS_CRASH_AT` spec: crash at the `nth` (1-based) hit of
/// the point called `name`.
struct CrashSpec {
    name: String,
    nth: u64,
}

fn crash_spec() -> Option<&'static CrashSpec> {
    static SPEC: OnceLock<Option<CrashSpec>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let raw = std::env::var("HUS_CRASH_AT").ok()?;
        if raw.is_empty() {
            return None;
        }
        match raw.rsplit_once(':') {
            Some((name, n)) => {
                let nth = n.parse().ok()?;
                Some(CrashSpec { name: name.to_string(), nth })
            }
            None => Some(CrashSpec { name: raw, nth: 1 }),
        }
    })
    .as_ref()
}

/// Number of times the armed crash point has been passed.
static HITS: AtomicU64 = AtomicU64::new(0);

/// Simulated-crash hook for the recovery harness.
///
/// If `HUS_CRASH_AT` names this point (optionally `name:n` for the n-th
/// hit), the process exits immediately with [`CRASH_EXIT_CODE`] —
/// without unwinding, flushing buffered writers or running `Drop`
/// cleanup, so the on-disk state is what a real crash would leave.
/// Otherwise this is (nearly) free and always returns.
pub fn crash_point(name: &str) {
    let Some(spec) = crash_spec() else { return };
    if spec.name != name {
        return;
    }
    let hit = HITS.fetch_add(1, Ordering::Relaxed) + 1;
    if hit >= spec.nth {
        eprintln!("HUS_CRASH_AT: simulated crash at point `{name}` (hit {hit})");
        std::process::exit(CRASH_EXIT_CODE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_helpers_accept_real_paths() {
        let tmp = tempfile::tempdir().unwrap();
        let f = tmp.path().join("x.bin");
        std::fs::write(&f, b"abc").unwrap();
        sync_file(&f).unwrap();
        sync_dir(tmp.path()).unwrap();
        sync_parent_dir(&f).unwrap();
    }

    #[test]
    fn sync_file_reports_missing_path() {
        if !fsync_enabled() {
            return; // under HUS_NO_FSYNC the helper never touches the path
        }
        let tmp = tempfile::tempdir().unwrap();
        let err = sync_file(&tmp.path().join("absent.bin")).unwrap_err();
        assert!(err.to_string().contains("absent.bin"), "{err}");
    }

    #[test]
    fn unarmed_crash_point_is_inert() {
        // The test process does not set HUS_CRASH_AT (the recovery
        // harness only sets it on spawned children), so this must
        // return.
        crash_point("test.never_armed");
        crash_point("test.never_armed");
    }
}
