//! Standard fixed-iteration PageRank.
//!
//! The paper's representative "sparse matrix multiplication" workload:
//! every vertex is active in every iteration (footnote 1), so the hybrid
//! engine's α gate always selects COP — the same behavior as the paper's
//! Table 3 / Figure 9 PageRank rows. Run for a fixed number of
//! iterations (`max_iterations` in the run config; the paper uses 5).
//!
//! Dangling vertices (out-degree 0) simply leak their rank mass, the
//! usual simplification in out-of-core system papers; ranks remain
//! comparable across engines because all use the same rule.

use hus_core::{EdgeCtx, VertexId, VertexProgram};

/// Fixed-iteration PageRank.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Number of vertices (needed for the teleport term).
    pub num_vertices: u32,
    /// Damping factor (0.85 conventionally).
    pub damping: f32,
}

impl PageRank {
    /// PageRank with damping 0.85.
    pub fn new(num_vertices: u32) -> Self {
        PageRank { num_vertices, damping: 0.85 }
    }

    /// The teleport term `(1 - d) / |V|` every vertex resets to each
    /// iteration.
    pub fn base_rank(&self) -> f32 {
        (1.0 - self.damping) / self.num_vertices as f32
    }
}

impl VertexProgram for PageRank {
    type Value = f32;

    fn init(&self, _v: VertexId) -> f32 {
        1.0 / self.num_vertices as f32
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn always_active(&self) -> bool {
        true
    }

    fn needs_reset(&self) -> bool {
        true
    }

    fn reset(&self, _v: VertexId, _prev: &f32) -> f32 {
        self.base_rank()
    }

    fn scatter(&self, src_val: &f32, ctx: &EdgeCtx) -> Option<f32> {
        debug_assert!(ctx.src_out_degree > 0, "scatter only fires along existing out-edges");
        Some(self.damping * src_val / ctx.src_out_degree as f32)
    }

    fn combine(&self, dst_val: &mut f32, msg: f32) -> bool {
        *dst_val += msg;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::{classic, Csr, EdgeList};
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, iters: usize, mode: UpdateMode, p: u32) -> Vec<f32> {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, max_iterations: iters, ..Default::default() };
        Engine::new(&g, &PageRank::new(el.num_vertices), cfg).run().unwrap().0
    }

    fn assert_close(got: &[f32], want: &[f32], tol: f32, label: &str) {
        assert_eq!(got.len(), want.len());
        for (v, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() <= tol * w.abs().max(1e-6), "{label} vertex {v}: {g} vs {w}");
        }
    }

    #[test]
    fn cycle_ranks_are_uniform() {
        // On a directed cycle every vertex has in/out degree 1: ranks stay
        // uniform at 1/n.
        let el = classic::cycle(10);
        let ranks = run(&el, 5, UpdateMode::Hybrid, 2);
        assert_close(&ranks, &[0.1; 10], 1e-5, "cycle");
    }

    #[test]
    fn hub_of_star_outranks_leaves() {
        let el = classic::star(20);
        let ranks = run(&el, 10, UpdateMode::Hybrid, 2);
        for leaf in 1..20 {
            assert!(ranks[0] > ranks[leaf], "hub {} vs leaf {}", ranks[0], ranks[leaf]);
        }
    }

    #[test]
    fn matches_reference_pagerank() {
        let el = hus_gen::rmat(150, 1200, 41, hus_gen::RmatConfig::default());
        let csr = Csr::from_edge_list(&el);
        let want = reference::pagerank(&csr, 0.85, 5);
        for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop, UpdateMode::Hybrid] {
            let got = run(&el, 5, mode, 4);
            assert_close(&got, &want, 1e-3, &format!("{mode:?}"));
        }
    }

    #[test]
    fn hybrid_selects_cop_for_pagerank() {
        // All vertices active ⇒ the α gate forces COP, as in the paper.
        let el = hus_gen::rmat(100, 800, 51, hus_gen::RmatConfig::default());
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p(2)).unwrap();
        let cfg = RunConfig { max_iterations: 3, ..Default::default() };
        let (_, stats) = Engine::new(&g, &PageRank::new(100), cfg).run().unwrap();
        for it in &stats.iterations {
            assert_eq!(it.model, hus_core::UpdateModel::Cop);
            assert!(it.gated);
        }
    }

    #[test]
    fn total_rank_bounded_by_one() {
        let el = hus_gen::rmat(120, 900, 61, hus_gen::RmatConfig::default());
        let ranks = run(&el, 5, UpdateMode::Hybrid, 3);
        let total: f32 = ranks.iter().sum();
        // Dangling mass leaks, so the total is in (0, 1].
        assert!(total > 0.1 && total <= 1.0 + 1e-4, "total {total}");
    }
}
