//! In-memory reference implementations.
//!
//! Textbook algorithms on the in-memory CSR, used as ground truth by the
//! out-of-core engines' test suites (HUS-Graph, GraphChi-style and
//! GridGraph-style baselines must all agree with these).

use crate::UNREACHED;
use hus_gen::{Csr, VertexId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// BFS levels from `source` (`UNREACHED` when not reachable).
pub fn bfs_levels(csr: &Csr, source: VertexId) -> Vec<u32> {
    let mut levels = vec![UNREACHED; csr.num_vertices as usize];
    levels[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let next = levels[v as usize] + 1;
        for &w in csr.out_neighbors(v) {
            if levels[w as usize] == UNREACHED {
                levels[w as usize] = next;
                queue.push_back(w);
            }
        }
    }
    levels
}

/// Dijkstra distances from `source` over non-negative weights
/// (`f32::INFINITY` when unreachable; weight 1.0 where unweighted).
pub fn sssp_distances(csr: &Csr, source: VertexId) -> Vec<f32> {
    let mut dist = vec![f32::INFINITY; csr.num_vertices as usize];
    dist[source as usize] = 0.0;
    // (ordered bits of distance, vertex) — f32 bit tricks avoid Ord
    // wrappers; distances are non-negative so the bit pattern orders.
    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f32::from_bits(dbits);
        if d > dist[v as usize] {
            continue;
        }
        let ws = csr.out_edge_weights(v);
        for (k, &w) in csr.out_neighbors(v).iter().enumerate() {
            let weight = if ws.is_empty() { 1.0 } else { ws[k] };
            debug_assert!(weight >= 0.0, "Dijkstra requires non-negative weights");
            let nd = d + weight;
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd.to_bits(), w)));
            }
        }
    }
    dist
}

/// Weakly connected component labels via union-find: each vertex is
/// labeled with the smallest vertex id of its component (matching the
/// fixpoint of min-label propagation on a symmetrized graph).
pub fn wcc_labels(csr: &Csr) -> Vec<u32> {
    let n = csr.num_vertices as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for v in 0..csr.num_vertices {
        for &w in csr.out_neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, w));
            if a != b {
                // Union by minimum id so the root IS the component label.
                let (lo, hi) = (a.min(b), a.max(b));
                parent[hi as usize] = lo;
            }
        }
    }
    (0..csr.num_vertices).map(|v| find(&mut parent, v)).collect()
}

/// Fixed-iteration pull PageRank matching the engines' update rule
/// (dangling mass leaks).
pub fn pagerank(csr: &Csr, damping: f32, iterations: usize) -> Vec<f32> {
    let n = csr.num_vertices as usize;
    let base = (1.0 - damping) / n as f32;
    let mut ranks = vec![1.0 / n as f32; n];
    for _ in 0..iterations {
        let mut next = vec![base; n];
        for v in 0..csr.num_vertices {
            let mut acc = 0.0f32;
            for &src in csr.in_neighbors(v) {
                acc += damping * ranks[src as usize] / csr.out_degree(src) as f32;
            }
            next[v as usize] += acc;
        }
        ranks = next;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_gen::{classic, Csr, EdgeList};

    #[test]
    fn bfs_on_path() {
        let csr = Csr::from_edge_list(&classic::path(4));
        assert_eq!(bfs_levels(&csr, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_levels(&csr, 2), vec![UNREACHED, UNREACHED, 0, 1]);
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        let mut el = EdgeList::from_pairs([(0, 1), (0, 2), (2, 1)]);
        el.weights = Some(vec![5.0, 1.0, 1.0]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(sssp_distances(&csr, 0), vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn dijkstra_unweighted_equals_bfs() {
        let el = hus_gen::rmat(100, 600, 5, hus_gen::RmatConfig::default());
        let csr = Csr::from_edge_list(&el);
        let levels = bfs_levels(&csr, 0);
        let dist = sssp_distances(&csr, 0);
        for v in 0..100 {
            if levels[v] == UNREACHED {
                assert!(dist[v].is_infinite());
            } else {
                assert_eq!(dist[v], levels[v] as f32);
            }
        }
    }

    #[test]
    fn wcc_labels_are_component_minima() {
        // Components: {0,1,2}, {3,4}, {5}.
        let el = EdgeList::from_pairs([(1, 0), (1, 2), (4, 3)]).symmetrize();
        let mut el = el;
        el.num_vertices = 6;
        let csr = Csr::from_edge_list(&el);
        assert_eq!(wcc_labels(&csr), vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn pagerank_sums_leak_only_via_dangling() {
        let csr = Csr::from_edge_list(&classic::cycle(4));
        let pr = pagerank(&csr, 0.85, 20);
        let total: f32 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "no dangling vertices ⇒ total 1, got {total}");
    }
}
