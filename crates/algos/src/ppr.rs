//! Personalized PageRank (fixed-iteration, single source).
//!
//! The random walk restarts at one *personalization vertex* instead of
//! teleporting uniformly: rank mass `(1 - d)` re-enters at the source
//! every iteration and diffuses along out-edges with damping `d`. The
//! result scores every vertex by its proximity to the source — the
//! serving layer's "related vertices" query — while reusing the exact
//! scatter/combine machinery of [`crate::PageRank`], so the hybrid
//! engine treats it as the same always-active COP-leaning workload.
//!
//! As with PageRank, dangling vertices leak their mass; ranks are
//! comparable across engines because all use the same rule.

use hus_core::{EdgeCtx, VertexId, VertexProgram};

/// Fixed-iteration personalized PageRank from one source vertex.
#[derive(Debug, Clone, Copy)]
pub struct PersonalizedPageRank {
    /// The personalization (restart) vertex.
    pub source: VertexId,
    /// Damping factor (0.85 conventionally).
    pub damping: f32,
}

impl PersonalizedPageRank {
    /// PPR from `source` with damping 0.85.
    pub fn new(source: VertexId) -> Self {
        PersonalizedPageRank { source, damping: 0.85 }
    }
}

impl VertexProgram for PersonalizedPageRank {
    type Value = f32;

    fn init(&self, v: VertexId) -> f32 {
        // All walk mass starts at the source.
        if v == self.source {
            1.0
        } else {
            0.0
        }
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn always_active(&self) -> bool {
        true
    }

    fn needs_reset(&self) -> bool {
        true
    }

    fn reset(&self, v: VertexId, _prev: &f32) -> f32 {
        // Restart mass re-enters at the source only.
        if v == self.source {
            1.0 - self.damping
        } else {
            0.0
        }
    }

    fn scatter(&self, src_val: &f32, ctx: &EdgeCtx) -> Option<f32> {
        debug_assert!(ctx.src_out_degree > 0, "scatter only fires along existing out-edges");
        Some(self.damping * src_val / ctx.src_out_degree as f32)
    }

    fn combine(&self, dst_val: &mut f32, msg: f32) -> bool {
        *dst_val += msg;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::{Csr, EdgeList};
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, source: u32, iters: usize, mode: UpdateMode, p: u32) -> Vec<f32> {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, max_iterations: iters, ..Default::default() };
        Engine::new(&g, &PersonalizedPageRank::new(source), cfg).run().unwrap().0
    }

    /// In-memory reference: the same fixed-iteration recurrence over a
    /// CSR, `rank' = (1-d)·e_src + d·Aᵀ(rank/deg)`.
    fn reference_ppr(csr: &Csr, source: u32, damping: f32, iters: usize) -> Vec<f32> {
        let n = csr.num_vertices as usize;
        let mut rank = vec![0.0f32; n];
        rank[source as usize] = 1.0;
        for _ in 0..iters {
            let mut next = vec![0.0f32; n];
            next[source as usize] = 1.0 - damping;
            for (v, r) in rank.iter().enumerate() {
                let nbrs = csr.out_neighbors(v as u32);
                if nbrs.is_empty() {
                    continue;
                }
                let share = damping * r / nbrs.len() as f32;
                for &w in nbrs {
                    next[w as usize] += share;
                }
            }
            rank = next;
        }
        rank
    }

    #[test]
    fn matches_reference_across_modes() {
        let el = hus_gen::rmat(150, 1200, 43, hus_gen::RmatConfig::default());
        let csr = Csr::from_edge_list(&el);
        let want = reference_ppr(&csr, 3, 0.85, 5);
        for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop, UpdateMode::Hybrid] {
            let got = run(&el, 3, 5, mode, 4);
            assert_eq!(got.len(), want.len());
            for (v, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-3 * w.abs().max(1e-6),
                    "{mode:?} vertex {v}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn mass_concentrates_near_the_source() {
        // On a star with the hub as source, the hub keeps the restart
        // mass and leaves only ever receive diffusion from it.
        let el = hus_gen::classic::star(12);
        let ranks = run(&el, 0, 10, UpdateMode::Hybrid, 2);
        for leaf in 1..12 {
            assert!(ranks[0] > ranks[leaf], "hub {} vs leaf {}", ranks[0], ranks[leaf]);
        }
        // A vertex unrelated to the source gets zero: source with no
        // path to it.
        let el2 = hus_gen::classic::path(6);
        let ranks2 = run(&el2, 3, 8, UpdateMode::Hybrid, 2);
        assert_eq!(ranks2[0], 0.0, "upstream vertex is unreachable from the source");
        assert!(ranks2[4] > 0.0, "downstream vertex receives mass");
    }
}
