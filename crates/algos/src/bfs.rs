//! Breadth-first search as a vertex program.
//!
//! Values are BFS levels (`u32`, [`crate::UNREACHED`] when not yet
//! visited). Only the source starts active; a vertex activates when its
//! level first improves, so the frontier is exactly the classic BFS
//! frontier — the workload whose active-edge curve (paper Figure 1)
//! motivates the hybrid strategy.

use crate::UNREACHED;
use hus_core::{EdgeCtx, VertexId, VertexProgram};

/// BFS from a single source.
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    /// Source vertex.
    pub source: VertexId,
}

impl Bfs {
    /// BFS rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }
}

impl VertexProgram for Bfs {
    type Value = u32;

    fn init(&self, v: VertexId) -> u32 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn scatter(&self, src_val: &u32, _ctx: &EdgeCtx) -> Option<u32> {
        if *src_val == UNREACHED {
            // An active vertex always has a level, but pull-style engines
            // consult every in-neighbor in the frontier bitmap; guard
            // against propagating "unreached".
            None
        } else {
            Some(src_val + 1)
        }
    }

    fn combine(&self, dst_val: &mut u32, msg: u32) -> bool {
        if msg < *dst_val {
            *dst_val = msg;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::{classic, Csr, EdgeList};
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, source: u32, mode: UpdateMode, p: u32) -> Vec<u32> {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, ..Default::default() };
        Engine::new(&g, &Bfs::new(source), cfg).run().unwrap().0
    }

    #[test]
    fn levels_on_path() {
        let el = classic::path(6);
        let levels = run(&el, 0, UpdateMode::Hybrid, 2);
        assert_eq!(levels, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn unreachable_marked() {
        // 0 -> 1; 2 isolated.
        let mut el = EdgeList::from_pairs([(0, 1)]);
        el.num_vertices = 3;
        let levels = run(&el, 0, UpdateMode::Hybrid, 1);
        assert_eq!(levels, vec![0, 1, UNREACHED]);
    }

    #[test]
    fn source_in_middle_of_graph() {
        let el = classic::cycle(8);
        let levels = run(&el, 5, UpdateMode::Hybrid, 3);
        // Directed cycle: level of v is (v - 5) mod 8.
        let want: Vec<u32> = (0..8).map(|v| (v + 8 - 5) % 8).collect();
        assert_eq!(levels, want);
    }

    #[test]
    fn all_modes_match_reference_on_random_graph() {
        let el = hus_gen::rmat(300, 2500, 11, hus_gen::RmatConfig::default());
        let csr = Csr::from_edge_list(&el);
        let want = reference::bfs_levels(&csr, 0);
        for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop, UpdateMode::Hybrid] {
            assert_eq!(run(&el, 0, mode, 4), want, "{mode:?}");
        }
    }

    #[test]
    fn grid_levels_are_manhattan_distance() {
        let el = classic::grid2d(4, 5);
        let levels = run(&el, 0, UpdateMode::Hybrid, 2);
        for r in 0..4u32 {
            for c in 0..5u32 {
                assert_eq!(levels[(r * 5 + c) as usize], r + c, "({r},{c})");
            }
        }
    }
}
