//! # hus-algos — the paper's benchmark algorithms
//!
//! The evaluation (paper §4.1) uses three traversal/propagation
//! algorithms — BFS, Weakly Connected Components, Single-Source Shortest
//! Paths — and PageRank as the representative all-active sparse
//! matrix-multiplication workload. This crate implements each as a
//! [`hus_core::VertexProgram`] (runnable under ROP, COP, the hybrid
//! engine, and both baseline engines), plus:
//!
//! * [`pagerank_delta`] — the footnote-1 "PageRank-Delta" variant where
//!   vertices stay active only while their rank still changes,
//! * [`spmv`] — one-shot sparse matrix-vector multiplication,
//! * [`msbfs`] — bit-parallel multi-source BFS (up to 64 concurrent
//!   roots, the neighborhood-function building block),
//! * [`bfs_tree`] — BFS with deterministic parent pointers,
//! * [`scc`] — the forward-backward SCC primitive (plus a Tarjan
//!   reference),
//! * [`diameter`] — ANF-style neighborhood-function / effective-diameter
//!   estimation on top of MS-BFS,
//! * [`mod@reference`] — simple in-memory implementations (Dijkstra,
//!   union-find, textbook PageRank) that every engine is validated
//!   against in the test suites.
//!
//! WCC treats the graph as undirected; run it on a symmetrized edge list
//! (`EdgeList::symmetrize`), as the paper's §3.1 convention does
//! ("undirected graph is supported by adding two opposite edges").

#![warn(missing_docs)]

pub mod bfs;
pub mod bfs_tree;
pub mod diameter;
pub mod msbfs;
pub mod pagerank;
pub mod pagerank_delta;
pub mod ppr;
pub mod reference;
pub mod scc;
pub mod spmv;
pub mod sssp;
pub mod wcc;

pub use bfs::Bfs;
pub use bfs_tree::BfsTree;
pub use msbfs::MsBfs;
pub use pagerank::PageRank;
pub use pagerank_delta::PageRankDelta;
pub use ppr::PersonalizedPageRank;
pub use spmv::SpMv;
pub use sssp::Sssp;
pub use wcc::Wcc;

/// Level / distance marker for unreachable vertices in BFS.
pub const UNREACHED: u32 = u32::MAX;
