//! Single-Source Shortest Paths (Bellman-Ford-style relaxation).
//!
//! Values are `f32` tentative distances (`f32::INFINITY` unreached). A
//! vertex activates whenever its distance improves, so the frontier
//! shrinks as distances settle — the long-tail workload of the paper's
//! Figure 7 where ROP dominates.

use hus_core::{EdgeCtx, VertexId, VertexProgram};

/// SSSP from a single source over non-negative edge weights.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    /// Source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type Value = f32;

    fn init(&self, v: VertexId) -> f32 {
        if v == self.source {
            0.0
        } else {
            f32::INFINITY
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn scatter(&self, src_val: &f32, ctx: &EdgeCtx) -> Option<f32> {
        if src_val.is_finite() {
            Some(src_val + ctx.weight)
        } else {
            None
        }
    }

    fn combine(&self, dst_val: &mut f32, msg: f32) -> bool {
        if msg < *dst_val {
            *dst_val = msg;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::{classic, Csr, EdgeList};
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, source: u32, mode: UpdateMode, p: u32) -> Vec<f32> {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, ..Default::default() };
        Engine::new(&g, &Sssp::new(source), cfg).run().unwrap().0
    }

    #[test]
    fn unweighted_graph_counts_hops() {
        let el = classic::path(5);
        assert_eq!(run(&el, 0, UpdateMode::Hybrid, 2), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn weighted_shortcut_beats_direct_edge() {
        // 0 -> 2 weight 10; 0 -> 1 -> 2 weights 1 + 2.
        let mut el = EdgeList::from_pairs([(0, 2), (0, 1), (1, 2)]);
        el.weights = Some(vec![10.0, 1.0, 2.0]);
        let dist = run(&el, 0, UpdateMode::Hybrid, 1);
        assert_eq!(dist, vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut el = EdgeList::from_pairs([(0, 1)]);
        el.num_vertices = 3;
        let dist = run(&el, 0, UpdateMode::Hybrid, 1);
        assert!(dist[2].is_infinite());
    }

    #[test]
    fn matches_dijkstra_on_random_weighted_graph() {
        let el = hus_gen::rmat(200, 1600, 31, hus_gen::RmatConfig::default())
            .with_hash_weights(0.1, 5.0);
        let csr = Csr::from_edge_list(&el);
        let want = reference::sssp_distances(&csr, 0);
        for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop, UpdateMode::Hybrid] {
            let got = run(&el, 0, mode, 4);
            assert_eq!(got.len(), want.len());
            for (v, (g, w)) in got.iter().zip(&want).enumerate() {
                let close = (g.is_infinite() && w.is_infinite())
                    || (g - w).abs() <= 1e-4 * w.abs().max(1.0);
                assert!(close, "{mode:?} vertex {v}: got {g}, want {w}");
            }
        }
    }
}
