//! BFS spanning tree: like BFS, but each vertex also records its parent,
//! so the result is a traversal tree rather than just levels.
//!
//! The value packs `(level, parent)` into a single `u64` ordered by
//! level-then-parent, which keeps `combine` a plain `min` — idempotent
//! and deterministic (the smallest-id parent at the smallest level wins,
//! regardless of engine, schedule, or thread interleaving).

use crate::UNREACHED;
use hus_core::{EdgeCtx, VertexId, VertexProgram};

/// Packed `(level, parent)`: level in the high 32 bits so `min` orders by
/// level first, parent id in the low 32 bits as the tiebreak.
pub fn pack(level: u32, parent: VertexId) -> u64 {
    ((level as u64) << 32) | parent as u64
}

/// Unpack a value into `(level, parent)`.
pub fn unpack(value: u64) -> (u32, VertexId) {
    ((value >> 32) as u32, value as u32)
}

/// BFS that produces levels *and* a deterministic parent tree.
#[derive(Debug, Clone, Copy)]
pub struct BfsTree {
    /// Root of the traversal.
    pub source: VertexId,
}

impl BfsTree {
    /// BFS tree rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        BfsTree { source }
    }
}

impl VertexProgram for BfsTree {
    type Value = u64;

    fn init(&self, v: VertexId) -> u64 {
        if v == self.source {
            pack(0, v) // the root is its own parent
        } else {
            pack(UNREACHED, u32::MAX)
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn scatter(&self, src_val: &u64, ctx: &EdgeCtx) -> Option<u64> {
        let (level, _) = unpack(*src_val);
        if level == UNREACHED {
            None
        } else {
            Some(pack(level + 1, ctx.src))
        }
    }

    fn combine(&self, dst_val: &mut u64, msg: u64) -> bool {
        if msg < *dst_val {
            *dst_val = msg;
            true
        } else {
            false
        }
    }
}

/// Walk the parent pointers from `v` back to the root; `None` when `v`
/// was not reached. The root appears last.
pub fn path_to_root(values: &[u64], v: VertexId) -> Option<Vec<VertexId>> {
    let (level, _) = unpack(values[v as usize]);
    if level == UNREACHED {
        return None;
    }
    let mut path = vec![v];
    let mut cur = v;
    loop {
        let (_, parent) = unpack(values[cur as usize]);
        if parent == cur {
            return Some(path); // reached the root
        }
        path.push(parent);
        cur = parent;
        if path.len() > values.len() {
            unreachable!("parent pointers must form a tree");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::{classic, Csr, EdgeList};
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, source: u32, mode: UpdateMode, p: u32) -> Vec<u64> {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, ..Default::default() };
        Engine::new(&g, &BfsTree::new(source), cfg).run().unwrap().0
    }

    #[test]
    fn levels_match_plain_bfs() {
        let el = hus_gen::rmat(250, 1800, 9, Default::default());
        let csr = Csr::from_edge_list(&el);
        let want = reference::bfs_levels(&csr, 0);
        let values = run(&el, 0, UpdateMode::Hybrid, 3);
        for (v, &val) in values.iter().enumerate() {
            assert_eq!(unpack(val).0, want[v], "vertex {v}");
        }
    }

    #[test]
    fn parents_are_one_level_shallower() {
        let el = hus_gen::rmat(200, 1400, 10, Default::default());
        let values = run(&el, 0, UpdateMode::Hybrid, 4);
        for (v, &val) in values.iter().enumerate() {
            let (level, parent) = unpack(val);
            if level == UNREACHED || v as u32 == 0 {
                continue;
            }
            let (plevel, _) = unpack(values[parent as usize]);
            assert_eq!(plevel + 1, level, "vertex {v} parent {parent}");
        }
    }

    #[test]
    fn paths_walk_back_to_root() {
        let el = classic::grid2d(4, 4);
        let values = run(&el, 0, UpdateMode::Hybrid, 2);
        let path = path_to_root(&values, 15).unwrap();
        assert_eq!(*path.first().unwrap(), 15);
        assert_eq!(*path.last().unwrap(), 0);
        // Manhattan distance on the grid: 3 + 3 hops = path of 7 vertices.
        assert_eq!(path.len(), 7);
        assert!(path_to_root(&values, 0).unwrap().len() == 1);
    }

    #[test]
    fn unreached_has_no_path() {
        let mut el = EdgeList::from_pairs([(0, 1)]);
        el.num_vertices = 3;
        let values = run(&el, 0, UpdateMode::Hybrid, 1);
        assert!(path_to_root(&values, 2).is_none());
    }

    #[test]
    fn deterministic_across_modes_and_threads() {
        let el = hus_gen::rmat(150, 1000, 11, Default::default());
        let a = run(&el, 0, UpdateMode::ForceRop, 3);
        let b = run(&el, 0, UpdateMode::ForceCop, 3);
        let c = run(&el, 0, UpdateMode::Hybrid, 3);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn pack_orders_by_level_then_parent() {
        assert!(pack(1, 99) < pack(2, 0));
        assert!(pack(3, 4) < pack(3, 5));
        assert_eq!(unpack(pack(7, 42)), (7, 42));
    }
}
