//! One-shot sparse matrix-vector multiplication.
//!
//! Computes `y = A^T · x` where `A` is the (weighted) adjacency matrix:
//! `y[dst] = Σ_{(src,dst) ∈ E} w(src,dst) · x[src]`. A single all-active
//! iteration — the degenerate end of the workload spectrum the paper's
//! PageRank represents (§4.1 calls PageRank "a representative sparse
//! matrix multiplication algorithm").

use hus_core::{EdgeCtx, VertexId, VertexProgram};
use std::sync::Arc;

/// One multiplication `y = A^T x`. Run with `max_iterations = 1`.
#[derive(Debug, Clone)]
pub struct SpMv {
    /// The input vector `x`, indexed by vertex id.
    pub x: Arc<Vec<f32>>,
}

impl SpMv {
    /// Multiply against the given input vector.
    pub fn new(x: Vec<f32>) -> Self {
        SpMv { x: Arc::new(x) }
    }
}

impl VertexProgram for SpMv {
    type Value = f32;

    fn init(&self, v: VertexId) -> f32 {
        // The stored value doubles as the scatter source: start with x.
        self.x[v as usize]
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn always_active(&self) -> bool {
        true
    }

    fn needs_reset(&self) -> bool {
        true
    }

    fn reset(&self, _v: VertexId, _prev: &f32) -> f32 {
        0.0
    }

    fn scatter(&self, src_val: &f32, ctx: &EdgeCtx) -> Option<f32> {
        Some(src_val * ctx.weight)
    }

    fn combine(&self, dst_val: &mut f32, msg: f32) -> bool {
        *dst_val += msg;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::{Csr, EdgeList};
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, x: Vec<f32>, mode: UpdateMode, p: u32) -> Vec<f32> {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, max_iterations: 1, ..Default::default() };
        Engine::new(&g, &SpMv::new(x), cfg).run().unwrap().0
    }

    fn dense_reference(el: &EdgeList, x: &[f32]) -> Vec<f32> {
        let csr = Csr::from_edge_list(el);
        let mut y = vec![0.0f32; el.num_vertices as usize];
        for v in 0..el.num_vertices {
            let ws = csr.in_edge_weights(v);
            for (k, &src) in csr.in_neighbors(v).iter().enumerate() {
                let w = if ws.is_empty() { 1.0 } else { ws[k] };
                y[v as usize] += w * x[src as usize];
            }
        }
        y
    }

    #[test]
    fn unweighted_multiply_counts_in_neighbors() {
        // With x = 1, y[v] = in-degree(v).
        let el = EdgeList::from_pairs([(0, 2), (1, 2), (2, 0)]);
        let y = run(&el, vec![1.0; 3], UpdateMode::Hybrid, 1);
        assert_eq!(y, vec![1.0, 0.0, 2.0]);
    }

    #[test]
    fn weighted_multiply_matches_dense_reference() {
        let el =
            hus_gen::rmat(80, 500, 13, hus_gen::RmatConfig::default()).with_hash_weights(0.5, 2.0);
        let x: Vec<f32> = (0..80).map(|v| (v as f32 * 0.37).sin()).collect();
        let want = dense_reference(&el, &x);
        for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop] {
            let got = run(&el, x.clone(), mode, 3);
            for (v, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() <= 1e-3 * w.abs().max(1.0), "{mode:?} v{v}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn single_iteration_only() {
        let el = EdgeList::from_pairs([(0, 1), (1, 0)]);
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p(1)).unwrap();
        let cfg = RunConfig { max_iterations: 1, ..Default::default() };
        let (_, stats) = Engine::new(&g, &SpMv::new(vec![1.0, 2.0]), cfg).run().unwrap();
        assert_eq!(stats.num_iterations(), 1);
    }
}
