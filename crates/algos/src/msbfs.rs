//! Multi-source BFS with bit-parallel frontiers.
//!
//! Runs up to 64 BFS traversals simultaneously: each vertex's value is a
//! bitmask of the sources that have reached it, and an edge ORs the
//! source's mask into the destination. OR is idempotent, commutative and
//! associative, so MS-BFS runs under every engine and schedule in this
//! workspace. It is the classic building block for neighborhood-function
//! and effective-diameter estimation (ANF/HyperANF-style), and its
//! frontier profile — dense early, sparse late — exercises the hybrid
//! strategy from the opposite direction of single-source BFS.

use hus_core::{EdgeCtx, VertexId, VertexProgram};

/// Up-to-64-source concurrent BFS; values are reachability bitmasks.
#[derive(Debug, Clone)]
pub struct MsBfs {
    sources: Vec<VertexId>,
}

impl MsBfs {
    /// A multi-source BFS from the given sources (at most 64).
    pub fn new(sources: Vec<VertexId>) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        assert!(sources.len() <= 64, "at most 64 concurrent sources");
        MsBfs { sources }
    }

    /// The bit assigned to `sources[k]`.
    pub fn bit(&self, k: usize) -> u64 {
        1u64 << k
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }
}

impl VertexProgram for MsBfs {
    type Value = u64;

    fn init(&self, v: VertexId) -> u64 {
        self.sources
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == v)
            .fold(0u64, |acc, (k, _)| acc | (1 << k))
    }

    fn initially_active(&self, v: VertexId) -> bool {
        self.sources.contains(&v)
    }

    fn scatter(&self, src_val: &u64, _ctx: &EdgeCtx) -> Option<u64> {
        if *src_val == 0 {
            None
        } else {
            Some(*src_val)
        }
    }

    fn combine(&self, dst_val: &mut u64, msg: u64) -> bool {
        let new = *dst_val | msg;
        if new != *dst_val {
            *dst_val = new;
            true
        } else {
            false
        }
    }
}

/// Count, for each source index, how many vertices it reached.
pub fn reached_per_source(program: &MsBfs, masks: &[u64]) -> Vec<u64> {
    (0..program.num_sources())
        .map(|k| masks.iter().filter(|&&m| m & program.bit(k) != 0).count() as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::{classic, Csr, EdgeList};
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, sources: Vec<u32>, mode: UpdateMode, p: u32) -> Vec<u64> {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, ..Default::default() };
        Engine::new(&g, &MsBfs::new(sources), cfg).run().unwrap().0
    }

    #[test]
    fn single_source_matches_bfs_reachability() {
        let el = hus_gen::rmat(200, 1200, 3, Default::default());
        let csr = Csr::from_edge_list(&el);
        let levels = reference::bfs_levels(&csr, 0);
        let masks = run(&el, vec![0], UpdateMode::Hybrid, 3);
        for (v, &mask) in masks.iter().enumerate() {
            assert_eq!(mask != 0, levels[v] != crate::UNREACHED, "vertex {v}");
        }
    }

    #[test]
    fn each_bit_tracks_its_own_source() {
        let el = hus_gen::rmat(150, 900, 5, Default::default());
        let csr = Csr::from_edge_list(&el);
        let sources = vec![0u32, 7, 33];
        let program = MsBfs::new(sources.clone());
        let masks = run(&el, sources.clone(), UpdateMode::Hybrid, 2);
        for (k, &s) in sources.iter().enumerate() {
            let levels = reference::bfs_levels(&csr, s);
            for (v, &mask) in masks.iter().enumerate() {
                assert_eq!(
                    mask & program.bit(k) != 0,
                    levels[v] != crate::UNREACHED,
                    "source {s} vertex {v}"
                );
            }
        }
    }

    #[test]
    fn rop_and_cop_agree() {
        let el = hus_gen::rmat(120, 800, 7, Default::default());
        let a = run(&el, vec![1, 2, 3], UpdateMode::ForceRop, 3);
        let b = run(&el, vec![1, 2, 3], UpdateMode::ForceCop, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn reached_per_source_counts() {
        let el = classic::path(5); // 0 -> 1 -> 2 -> 3 -> 4
        let program = MsBfs::new(vec![0, 3]);
        let masks = run(&el, vec![0, 3], UpdateMode::Hybrid, 2);
        let counts = reached_per_source(&program, &masks);
        assert_eq!(counts, vec![5, 2]); // 0 reaches all, 3 reaches {3,4}
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn rejects_too_many_sources() {
        MsBfs::new((0..65).collect());
    }
}
