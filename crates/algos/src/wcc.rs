//! Weakly Connected Components via min-label propagation.
//!
//! Every vertex starts labeled with its own id and active; labels
//! propagate along edges and each vertex keeps the minimum it has seen.
//! On a symmetrized graph this converges to one label per weakly
//! connected component (the minimum vertex id of the component). This is
//! the algorithm whose early iterations are dense — where COP wins — and
//! whose tail is sparse — where ROP wins (paper Figure 8b).

use hus_core::{EdgeCtx, VertexId, VertexProgram};

/// Min-label propagation WCC. Run on a symmetrized edge list.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wcc;

impl VertexProgram for Wcc {
    type Value = u32;

    fn init(&self, v: VertexId) -> u32 {
        v
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn scatter(&self, src_val: &u32, _ctx: &EdgeCtx) -> Option<u32> {
        Some(*src_val)
    }

    fn combine(&self, dst_val: &mut u32, msg: u32) -> bool {
        if msg < *dst_val {
            *dst_val = msg;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::{classic, Csr, EdgeList};
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, mode: UpdateMode, p: u32) -> Vec<u32> {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, ..Default::default() };
        Engine::new(&g, &Wcc, cfg).run().unwrap().0
    }

    #[test]
    fn single_component_grid() {
        let el = classic::grid2d(3, 3);
        assert_eq!(run(&el, UpdateMode::Hybrid, 2), vec![0; 9]);
    }

    #[test]
    fn two_components() {
        let el = EdgeList::from_pairs([(0, 1), (2, 3)]).symmetrize();
        assert_eq!(run(&el, UpdateMode::Hybrid, 2), vec![0, 0, 2, 2]);
    }

    #[test]
    fn matches_union_find_reference() {
        let el = hus_gen::rmat(250, 600, 21, hus_gen::RmatConfig::default()).symmetrize();
        let csr = Csr::from_edge_list(&el);
        let want = reference::wcc_labels(&csr);
        for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop, UpdateMode::Hybrid] {
            assert_eq!(run(&el, mode, 4), want, "{mode:?}");
        }
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let mut el = EdgeList::from_pairs([(0, 1)]).symmetrize();
        el.num_vertices = 4;
        assert_eq!(run(&el, UpdateMode::Hybrid, 2), vec![0, 0, 2, 3]);
    }
}
