//! Effective-diameter and neighborhood-function estimation via sampled
//! multi-source BFS (ANF-style).
//!
//! The neighborhood function `N(h)` counts (source, vertex) pairs within
//! distance `h`. Sampling up to 64 sources and running one bit-parallel
//! [`crate::MsBfs`] gives an unbiased estimate in a single out-of-core
//! traversal; the effective diameter is the smallest `h` where `N(h)`
//! reaches 90% of its final value. This is the standard way the
//! literature characterizes the "larger diameters" the paper attributes
//! to its web graphs (§4.1).

use crate::MsBfs;
use hus_core::{Engine, HusGraph, RunConfig};
use hus_gen::types::splitmix64;
use hus_storage::Result;

/// Result of a neighborhood-function estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborhoodFunction {
    /// `counts[h]` = number of (sampled source, vertex) pairs within
    /// distance `h` (cumulative).
    pub counts: Vec<u64>,
    /// Number of sampled sources.
    pub sources: usize,
}

impl NeighborhoodFunction {
    /// Smallest depth reaching `fraction` (e.g. 0.9) of the final count.
    pub fn effective_diameter(&self, fraction: f64) -> u32 {
        let total = *self.counts.last().unwrap_or(&0);
        let threshold = (total as f64 * fraction).ceil() as u64;
        self.counts.iter().position(|&c| c >= threshold).unwrap_or(0) as u32
    }

    /// Exact maximum sampled depth.
    pub fn max_depth(&self) -> u32 {
        self.counts.len().saturating_sub(1) as u32
    }
}

/// Estimate the neighborhood function of `graph` from up to
/// `num_sources` (≤ 64) pseudo-randomly sampled sources.
///
/// Runs one MS-BFS; per iteration the engine's frontier statistics
/// don't expose per-depth reach, so the traversal is re-read from the
/// final masks by running with increasing `max_iterations` — instead we
/// simply run depth-capped sweeps. To keep it to a single pass, the
/// per-depth counts are reconstructed by re-running the in-memory
/// reference on the *sampled* sources when the graph is small, or by
/// depth-capped engine runs otherwise. Here: depth-capped runs, one per
/// depth doubling, which stays `O(log D)` passes.
pub fn estimate(
    graph: &HusGraph,
    num_sources: usize,
    seed: u64,
    config: RunConfig,
) -> Result<NeighborhoodFunction> {
    let n = graph.meta().num_vertices;
    let k = num_sources.clamp(1, 64.min(n as usize));
    // Distinct pseudo-random sources.
    let mut sources = Vec::with_capacity(k);
    let mut state = seed;
    while sources.len() < k {
        state = splitmix64(state);
        let v = (state % n as u64) as u32;
        if !sources.contains(&v) {
            sources.push(v);
        }
    }
    let program = MsBfs::new(sources);

    // Depth-capped runs at 1, 2, 4, ... until the reach stops growing:
    // O(log D) passes yielding exact milestones (depth, reached-pairs).
    let mut milestones: Vec<(usize, u64)> = vec![(0, k as u64)];
    let mut depth = 1usize;
    let mut last_total = 0u64;
    loop {
        let cfg = RunConfig { max_iterations: depth, ..config.clone() };
        let (masks, stats) = Engine::new(graph, &program, cfg).run()?;
        let total: u64 = masks.iter().map(|m| m.count_ones() as u64).sum();
        milestones.push((depth, total));
        if stats.converged || total == last_total {
            break;
        }
        last_total = total;
        depth *= 2;
        if depth > 4 * n as usize {
            break; // safety net
        }
    }
    // Between milestones the cumulative function is unknown; fill each
    // depth with the last *measured* value at or below it (a lower bound,
    // so effective_diameter never under-reports).
    let max_depth = milestones.last().expect("at least depth 0").0;
    let mut counts = vec![0u64; max_depth + 1];
    let mut m = 0usize;
    for (d, slot) in counts.iter_mut().enumerate() {
        if m + 1 < milestones.len() && milestones[m + 1].0 <= d {
            m += 1;
        }
        *slot = milestones[m].1;
    }
    Ok(NeighborhoodFunction { counts, sources: k })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_core::BuildConfig;
    use hus_gen::classic;
    use hus_storage::StorageDir;

    fn graph(el: &hus_gen::EdgeList, p: u32) -> (tempfile::TempDir, HusGraph) {
        let tmp = tempfile::tempdir().unwrap();
        let g = HusGraph::build_into(
            el,
            &StorageDir::create(tmp.path().join("g")).unwrap(),
            &BuildConfig::with_p(p),
        )
        .unwrap();
        (tmp, g)
    }

    #[test]
    fn counts_are_monotone_and_bounded() {
        let el = hus_gen::rmat(300, 2400, 5, Default::default());
        let (_t, g) = graph(&el, 3);
        let nf = estimate(&g, 16, 42, RunConfig::default()).unwrap();
        assert!(nf.counts.windows(2).all(|w| w[0] <= w[1]), "{:?}", nf.counts);
        assert!(*nf.counts.last().unwrap() <= 16 * 300);
        assert_eq!(nf.counts[0], 16);
    }

    #[test]
    fn ring_has_linear_diameter() {
        let el = classic::cycle(64);
        let (_t, g) = graph(&el, 2);
        let nf = estimate(&g, 4, 1, RunConfig::default()).unwrap();
        // A directed 64-cycle: full reach takes 63 hops.
        assert!(nf.max_depth() >= 63, "max depth {}", nf.max_depth());
        assert_eq!(*nf.counts.last().unwrap(), 4 * 64);
        assert!(nf.effective_diameter(0.9) >= 50);
    }

    #[test]
    fn hub_graph_has_tiny_diameter() {
        let el = classic::star(200);
        let (_t, g) = graph(&el, 2);
        let nf = estimate(&g, 8, 2, RunConfig::default()).unwrap();
        assert!(nf.effective_diameter(0.9) <= 2, "{}", nf.effective_diameter(0.9));
    }

    #[test]
    fn small_world_beta_controls_measured_diameter() {
        let local = hus_gen::watts_strogatz(400, 2, 0.0, 3);
        let shortcutty = hus_gen::watts_strogatz(400, 2, 0.3, 3);
        let (_t1, g1) = graph(&local, 2);
        let (_t2, g2) = graph(&shortcutty, 2);
        let d1 = estimate(&g1, 8, 4, RunConfig::default()).unwrap().effective_diameter(0.9);
        let d2 = estimate(&g2, 8, 4, RunConfig::default()).unwrap().effective_diameter(0.9);
        assert!(d1 > 2 * d2, "local {d1} vs shortcut {d2}");
    }
}
