//! Strongly connected component extraction (the forward-backward step).
//!
//! The FW-BW algorithm's core primitive: the SCC containing a pivot `v`
//! is exactly `reach⁺(v) ∩ reach⁻(v)` — the vertices reachable *from*
//! `v` and from which `v` is reachable. Both sides run as out-of-core
//! BFS traversals; the backward side runs over the transposed graph,
//! which the caller builds once from [`transpose`] (the dual-block
//! format stores both edge directions, but the engines' frontier
//! semantics propagate along out-edges, so the clean way to traverse
//! backwards is a reversed build).
//!
//! This is the standard building block of out-of-core SCC systems
//! (e.g. FlashGraph's SCC), exercised here as a two-run orchestration on
//! top of the engine.

use crate::Bfs;
use hus_core::{Engine, HusGraph, RunConfig};
use hus_gen::EdgeList;
use hus_storage::Result;

/// Reverse every edge (weights follow their edge).
pub fn transpose(el: &EdgeList) -> EdgeList {
    EdgeList {
        num_vertices: el.num_vertices,
        edges: el.edges.iter().map(|e| e.reversed()).collect(),
        weights: el.weights.clone(),
    }
}

/// Compute the strongly connected component of `pivot` as a membership
/// vector, given the graph and its transpose (both already built).
pub fn scc_of_pivot(
    graph: &HusGraph,
    transposed: &HusGraph,
    pivot: u32,
    config: RunConfig,
) -> Result<Vec<bool>> {
    let (fwd, _) = Engine::new(graph, &Bfs::new(pivot), config.clone()).run()?;
    let (bwd, _) = Engine::new(transposed, &Bfs::new(pivot), config).run()?;
    Ok(fwd.iter().zip(&bwd).map(|(&f, &b)| f != u32::MAX && b != u32::MAX).collect())
}

/// In-memory reference: Tarjan's SCC algorithm (iterative), returning a
/// component id per vertex.
pub fn tarjan_scc(csr: &hus_gen::Csr) -> Vec<u32> {
    let n = csr.num_vertices as usize;
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // Explicit DFS state machine: (vertex, next-neighbor position).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            let neighbors = csr.out_neighbors(v);
            if *pos < neighbors.len() {
                let w = neighbors[*pos];
                *pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v roots an SCC: pop it off the stack.
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_core::BuildConfig;
    use hus_gen::{classic, Csr};
    use hus_storage::StorageDir;

    fn build_pair(el: &EdgeList, p: u32) -> (tempfile::TempDir, HusGraph, HusGraph) {
        let tmp = tempfile::tempdir().unwrap();
        let g = HusGraph::build_into(
            el,
            &StorageDir::create(tmp.path().join("g")).unwrap(),
            &BuildConfig::with_p(p),
        )
        .unwrap();
        let t = HusGraph::build_into(
            &transpose(el),
            &StorageDir::create(tmp.path().join("t")).unwrap(),
            &BuildConfig::with_p(p),
        )
        .unwrap();
        (tmp, g, t)
    }

    #[test]
    fn cycle_is_one_component() {
        let el = classic::cycle(12);
        let (_t, g, t) = build_pair(&el, 3);
        let members = scc_of_pivot(&g, &t, 4, RunConfig::default()).unwrap();
        assert!(members.iter().all(|&m| m));
    }

    #[test]
    fn path_components_are_singletons() {
        let el = classic::path(6);
        let (_t, g, t) = build_pair(&el, 2);
        let members = scc_of_pivot(&g, &t, 3, RunConfig::default()).unwrap();
        let want: Vec<bool> = (0..6).map(|v| v == 3).collect();
        assert_eq!(members, want);
    }

    #[test]
    fn matches_tarjan_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let el = hus_gen::rmat(150, 900, seed, Default::default());
            let csr = Csr::from_edge_list(&el);
            let comp = tarjan_scc(&csr);
            let (_t, g, t) = build_pair(&el, 3);
            // Pivot on the vertex in the largest component.
            let mut counts = std::collections::HashMap::new();
            for &c in &comp {
                *counts.entry(c).or_insert(0usize) += 1;
            }
            let (&big, _) = counts.iter().max_by_key(|(_, &n)| n).unwrap();
            let pivot = comp.iter().position(|&c| c == big).unwrap() as u32;
            let members = scc_of_pivot(&g, &t, pivot, RunConfig::default()).unwrap();
            for (v, &m) in members.iter().enumerate() {
                assert_eq!(m, comp[v] == big, "seed {seed} vertex {v}");
            }
        }
    }

    #[test]
    fn tarjan_handles_self_loops_and_dags() {
        // 0 -> 1 -> 2, and 3 with a self-loop.
        let el = EdgeList::from_pairs([(0, 1), (1, 2), (3, 3)]);
        let comp = tarjan_scc(&Csr::from_edge_list(&el));
        // All distinct components (self-loop still a singleton SCC id).
        assert_eq!(comp.iter().collect::<std::collections::HashSet<_>>().len(), 4);
        // DAG order: components are numbered in reverse topological order.
        assert!(comp[2] < comp[1] && comp[1] < comp[0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let el = hus_gen::rmat(80, 400, 7, Default::default()).with_hash_weights(1.0, 2.0);
        let back = transpose(&transpose(&el));
        assert_eq!(el, back);
    }
}
