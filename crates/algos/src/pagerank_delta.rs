//! PageRank-Delta: the paper's footnote-1 variant where "vertices are
//! active in an iteration only if they have accumulated enough change in
//! their PR value".
//!
//! Each vertex carries `(rank, delta)`; active vertices scatter the
//! damped share of last iteration's delta, destinations fold incoming
//! deltas into both fields, and a destination re-activates only when its
//! accumulated delta crosses a tolerance. Unlike standard PageRank the
//! frontier *shrinks* over time, which makes PageRank-Delta a hybrid-
//! friendly workload (it eventually crosses from COP into ROP territory).

use hus_core::{EdgeCtx, VertexId, VertexProgram};
use hus_storage::pod::Pod;

/// `(rank, delta)` pair stored per vertex.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankDelta {
    /// Converging PageRank value.
    pub rank: f32,
    /// Rank change accumulated in the current iteration.
    pub delta: f32,
}

// SAFETY: #[repr(C)] pair of f32: no padding, all bit patterns valid.
unsafe impl Pod for RankDelta {}

/// Delta-based PageRank with an activation tolerance.
#[derive(Debug, Clone, Copy)]
pub struct PageRankDelta {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Damping factor.
    pub damping: f32,
    /// A destination re-activates when its accumulated delta exceeds
    /// this.
    pub tolerance: f32,
}

impl PageRankDelta {
    /// Conventional parameters: damping 0.85, tolerance scaled to the
    /// uniform rank (`0.001 / |V|`). Deactivated deltas are dropped from
    /// further propagation, so the converged ranks carry an error of
    /// roughly `tolerance · in-degree / (1 - damping)`.
    pub fn new(num_vertices: u32) -> Self {
        PageRankDelta { num_vertices, damping: 0.85, tolerance: 0.001 / num_vertices as f32 }
    }
}

impl VertexProgram for PageRankDelta {
    type Value = RankDelta;

    fn init(&self, _v: VertexId) -> RankDelta {
        let base = (1.0 - self.damping) / self.num_vertices as f32;
        RankDelta { rank: base, delta: base }
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn reset(&self, _v: VertexId, prev: &RankDelta) -> RankDelta {
        // Keep the rank; start accumulating a fresh delta.
        RankDelta { rank: prev.rank, delta: 0.0 }
    }

    fn needs_reset(&self) -> bool {
        // A stale delta must not be re-scattered if the vertex is
        // reactivated in a later iteration.
        true
    }

    fn scatter(&self, src_val: &RankDelta, ctx: &EdgeCtx) -> Option<RankDelta> {
        let share = self.damping * src_val.delta / ctx.src_out_degree as f32;
        if share == 0.0 {
            return None;
        }
        Some(RankDelta { rank: 0.0, delta: share })
    }

    fn combine(&self, dst_val: &mut RankDelta, msg: RankDelta) -> bool {
        dst_val.rank += msg.delta;
        dst_val.delta += msg.delta;
        dst_val.delta.abs() > self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, UpdateMode};
    use hus_gen::EdgeList;
    use hus_storage::StorageDir;

    fn run(el: &EdgeList, mode: UpdateMode, p: u32) -> (Vec<RankDelta>, hus_core::RunStats) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        let cfg = RunConfig { mode, threads: 2, max_iterations: 200, ..Default::default() };
        Engine::new(&g, &PageRankDelta::new(el.num_vertices), cfg).run().unwrap()
    }

    #[test]
    fn converges_near_power_iteration_fixpoint() {
        let el = hus_gen::rmat(120, 900, 71, hus_gen::RmatConfig::default());
        let csr = hus_gen::Csr::from_edge_list(&el);
        // Long power iteration = near-exact fixpoint.
        let want = reference::pagerank(&csr, 0.85, 60);
        let (got, stats) = run(&el, UpdateMode::Hybrid, 3);
        assert!(stats.converged, "delta PR should drain its frontier");
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g.rank - w).abs() <= 0.02 * w.max(1e-6), "vertex {v}: {} vs {w}", g.rank);
        }
    }

    #[test]
    fn frontier_shrinks_over_time() {
        let el = hus_gen::rmat(300, 2500, 81, hus_gen::RmatConfig::default());
        let (_, stats) = run(&el, UpdateMode::Hybrid, 4);
        let first = stats.iterations.first().unwrap().active_vertices;
        let last = stats.iterations.last().unwrap().active_vertices;
        assert!(last < first / 2, "frontier {first} -> {last} did not shrink");
    }

    #[test]
    fn rop_and_cop_agree_within_tolerance() {
        let el = hus_gen::rmat(100, 700, 91, hus_gen::RmatConfig::default());
        let (rop, _) = run(&el, UpdateMode::ForceRop, 2);
        let (cop, _) = run(&el, UpdateMode::ForceCop, 2);
        for (v, (a, b)) in rop.iter().zip(&cop).enumerate() {
            assert!(
                (a.rank - b.rank).abs() <= 0.02 * b.rank.max(1e-6),
                "vertex {v}: {} vs {}",
                a.rank,
                b.rank
            );
        }
    }
}
