//! Dependency-free OpenMetrics/Prometheus text exporter.
//!
//! A plain `std::net::TcpListener` thread (no HTTP framework) serves
//! two endpoints from the global [`Registry`]:
//!
//! * `GET /metrics` — OpenMetrics text exposition: every counter
//!   (`_total`), gauge, and histogram (cumulative `le` buckets from the
//!   log₂ layout plus `_sum`/`_count`, and p50/p99/p999 quantile
//!   gauges), ending with the mandatory `# EOF` terminator. While the
//!   heatmap is on, the hottest blocks are exported as labelled gauges.
//! * `GET /healthz` — liveness probe (`ok`).
//!
//! Enabled by the `HUS_METRICS_ADDR` env knob (e.g. `127.0.0.1:9464`);
//! setting it also turns metric collection on, so a serving process
//! always has something to scrape. Metric names are sanitized for the
//! exposition format (`io.read_bytes.seq` → `hus_io_read_bytes_seq`).

use crate::metrics::{Histogram, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Env knob naming the exporter's listen address.
pub const METRICS_ADDR_ENV: &str = "HUS_METRICS_ADDR";

/// Content type of the `/metrics` response.
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// How many hottest blocks `/metrics` exports as labelled gauges when
/// the heatmap is enabled (the full grid would blow up cardinality).
pub const EXPORTED_HOT_BLOCKS: usize = 32;

/// Map a registry metric name onto the exposition charset
/// (`[a-zA-Z0-9_:]`, leading `hus_` namespace; dots become
/// underscores).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("hus_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    // Cumulative le-buckets from the log₂ layout. Emitting all 64 per
    // histogram would be noise; stop at the highest non-empty bucket
    // (the +Inf bucket then carries the total).
    let last = snap.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    let mut cum = 0u64;
    for (i, &c) in snap.buckets.iter().take(last.min(HISTOGRAM_BUCKETS - 1)).enumerate() {
        cum += c;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cum}\n",
            Histogram::bucket_upper_bound(i)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
    out.push_str(&format!("{name}_sum {}\n", snap.sum));
    out.push_str(&format!("{name}_count {}\n", snap.count));
    out.push_str(&format!("# TYPE {name}_quantile gauge\n"));
    for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
        out.push_str(&format!("{name}_quantile{{q=\"{label}\"}} {}\n", snap.quantile(q)));
    }
}

/// Render the registry (plus, when the heatmap is on, the hottest
/// blocks) as an OpenMetrics text exposition ending in `# EOF`.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    out.push_str("# TYPE hus_build_info gauge\n");
    out.push_str(&format!("hus_build_info{{version=\"{}\"}} 1\n", env!("CARGO_PKG_VERSION")));
    for (name, value) in registry.counter_values() {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name}_total {value}\n"));
    }
    for (name, value) in registry.gauge_values() {
        let name = sanitize_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, snap) in registry.histogram_snapshots() {
        push_histogram(&mut out, &sanitize_name(name), &snap);
    }
    if crate::attr::heatmap_enabled() {
        let hot = crate::attr::top_k(EXPORTED_HOT_BLOCKS);
        if !hot.is_empty() {
            out.push_str("# TYPE hus_block_raw_bytes gauge\n");
            for b in &hot {
                out.push_str(&format!(
                    "hus_block_raw_bytes{{i=\"{}\",j=\"{}\"}} {}\n",
                    b.i, b.j, b.raw_bytes
                ));
            }
            out.push_str("# TYPE hus_block_cache_hit_rate_pct gauge\n");
            for b in &hot {
                out.push_str(&format!(
                    "hus_block_cache_hit_rate_pct{{i=\"{}\",j=\"{}\"}} {}\n",
                    b.i,
                    b.j,
                    (b.hit_rate() * 100.0).round() as u64
                ));
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

fn http_response(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // Read just enough for the request line; scrapers send tiny GETs.
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(0) | Err(_) => return,
        Ok(n) => n,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request.split_whitespace().nth(1).unwrap_or("/");
    let response = match path {
        "/metrics" => {
            http_response("200 OK", OPENMETRICS_CONTENT_TYPE, &render(crate::metrics::global()))
        }
        "/healthz" => http_response("200 OK", "text/plain; charset=utf-8", "ok\n"),
        _ => http_response("404 Not Found", "text/plain; charset=utf-8", "not found\n"),
    };
    let _ = stream.write_all(&response);
}

/// Handle to a running exporter thread; dropping it shuts the
/// listener down (used by tests — the process-global exporter started
/// by [`crate::init_from_env`] lives for the process).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_thread();
        }
    }
}

/// Bind `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and serve
/// `/metrics` + `/healthz` from a background thread.
pub fn serve(addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new().name("hus-metrics".into()).spawn(move || {
        for conn in listener.incoming() {
            if stop_flag.load(Ordering::Relaxed) {
                break;
            }
            if let Ok(stream) = conn {
                handle_connection(stream);
            }
        }
    })?;
    Ok(MetricsServer { addr: bound, stop, thread: Some(thread) })
}

/// The process-global exporter started by [`init_exporter_from_env`],
/// held so [`shutdown_exporter`] can drain it instead of leaking the
/// thread at exit.
static EXPORTER: std::sync::Mutex<Option<MetricsServer>> = std::sync::Mutex::new(None);
/// Guards the one-time env read so repeated `init_from_env` calls
/// don't rebind after an explicit shutdown.
static EXPORTER_INIT: OnceLock<()> = OnceLock::new();

/// Start the process-global exporter if `HUS_METRICS_ADDR` is set,
/// enabling metric collection alongside. Idempotent; bind failures are
/// reported to stderr, never fatal (a bad knob must not kill a run).
pub(crate) fn init_exporter_from_env() {
    EXPORTER_INIT.get_or_init(|| {
        let Some(addr) = std::env::var(METRICS_ADDR_ENV).ok().filter(|a| !a.is_empty()) else {
            return;
        };
        match serve(&addr) {
            Ok(server) => {
                crate::set_enabled(true);
                *EXPORTER.lock().unwrap() = Some(server);
            }
            Err(e) => {
                eprintln!("warning: {METRICS_ADDR_ENV}={addr}: {e}");
            }
        }
    });
}

/// Stop and join the process-global exporter thread, if one is
/// running. Part of the graceful-shutdown path shared with `hus serve`
/// (the daemon drains queries, then drains the exporter); safe to call
/// when no exporter was started, and idempotent.
pub fn shutdown_exporter() {
    if let Some(server) = EXPORTER.lock().unwrap().take() {
        server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    /// Minimal line-level OpenMetrics checker shared by the round-trip
    /// tests: every line is `# TYPE`/`# HELP`/`# EOF` or
    /// `name[{labels}] value`, names are exposition-safe, the text ends
    /// with exactly one `# EOF`, and every sample's family was typed.
    pub(crate) fn check_exposition(text: &str) -> Result<(), String> {
        let mut typed: Vec<String> = Vec::new();
        let mut saw_eof = false;
        for (ln, line) in text.lines().enumerate() {
            let ctx = |msg: &str| format!("line {}: {msg}: {line:?}", ln + 1);
            if saw_eof {
                return Err(ctx("content after # EOF"));
            }
            if let Some(rest) = line.strip_prefix("# ") {
                if rest == "EOF" {
                    saw_eof = true;
                } else if let Some(decl) = rest.strip_prefix("TYPE ") {
                    let mut parts = decl.split(' ');
                    let name = parts.next().unwrap_or("");
                    let kind = parts.next().unwrap_or("");
                    if !["counter", "gauge", "histogram", "summary"].contains(&kind) {
                        return Err(ctx("bad metric type"));
                    }
                    typed.push(name.to_string());
                } else if !rest.starts_with("HELP ") {
                    return Err(ctx("unknown comment"));
                }
                continue;
            }
            let name_end = line.find(['{', ' ']).ok_or_else(|| ctx("sample line without space"))?;
            let name = &line[..name_end];
            if name.is_empty()
                || name.starts_with(|c: char| c.is_ascii_digit())
                || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            {
                return Err(ctx("bad metric name"));
            }
            let rest = &line[name_end..];
            let value = if let Some(r) = rest.strip_prefix('{') {
                let close = r.find('}').ok_or_else(|| ctx("unterminated labels"))?;
                for label in r[..close].split(',') {
                    let (k, v) = label.split_once('=').ok_or_else(|| ctx("label without ="))?;
                    if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') {
                        return Err(ctx("bad label"));
                    }
                }
                r[close + 1..].trim()
            } else {
                rest.trim()
            };
            value.parse::<f64>().map_err(|_| ctx("non-numeric sample value"))?;
            if !typed.iter().any(|t| {
                name == t
                    || ["_total", "_bucket", "_sum", "_count"]
                        .iter()
                        .any(|s| name.strip_suffix(s) == Some(t))
            }) {
                return Err(ctx("sample for undeclared metric family"));
            }
        }
        if !saw_eof {
            return Err("missing # EOF terminator".into());
        }
        Ok(())
    }

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("storage.retries").add(3);
        r.gauge("engine.iteration").set(7);
        let h = r.histogram("io.read_bytes.seq");
        for v in [0, 1, 5, 1000, 1000, 64 << 10] {
            h.record(v);
        }
        r
    }

    #[test]
    fn render_is_valid_openmetrics() {
        let text = render(&sample_registry());
        check_exposition(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert!(text.contains("hus_storage_retries_total 3"));
        assert!(text.contains("hus_engine_iteration 7"));
        assert!(text.contains("hus_io_read_bytes_seq_count 6"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_quantiled() {
        let text = render(&sample_registry());
        // 0 → bucket le="0"; 1 → le="1"; 5 → le="7"; two 1000s → le="1023".
        assert!(text.contains("hus_io_read_bytes_seq_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("hus_io_read_bytes_seq_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("hus_io_read_bytes_seq_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("hus_io_read_bytes_seq_bucket{le=\"1023\"} 5\n"));
        assert!(text.contains("hus_io_read_bytes_seq_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("hus_io_read_bytes_seq_quantile{q=\"0.5\"} 7\n"));
        // 64 KiB = 2^16 lands in bucket 17, upper bound 2^17 − 1.
        assert!(text.contains("hus_io_read_bytes_seq_quantile{q=\"0.999\"} 131071\n"));
    }

    #[test]
    fn empty_registry_renders_build_info_and_eof() {
        let text = render(&Registry::new());
        check_exposition(&text).unwrap();
        assert!(text.contains("hus_build_info"));
    }

    #[test]
    fn sanitizer_maps_dots_to_underscores() {
        assert_eq!(sanitize_name("io.read_bytes.seq"), "hus_io_read_bytes_seq");
        assert_eq!(sanitize_name("weird metric!"), "hus_weird_metric_");
    }

    #[test]
    fn checker_rejects_malformed_expositions() {
        assert!(check_exposition("no eof 1\n").is_err());
        assert!(check_exposition("# TYPE x counter\nx_total nan_but_worse\n# EOF\n").is_err());
        assert!(check_exposition("# TYPE x counter\ny_total 1\n# EOF\n").is_err());
        assert!(check_exposition("# EOF\ntrailing 1\n").is_err());
        assert!(check_exposition("# TYPE x gauge\nx 1\n# EOF\n").is_ok());
    }

    #[test]
    fn server_round_trip_serves_metrics_and_health() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.addr();
        let get = |path: &str| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.ends_with("ok\n"));
        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"));
        assert!(metrics.contains("application/openmetrics-text"));
        let body = metrics.split("\r\n\r\n").nth(1).unwrap();
        check_exposition(body).unwrap_or_else(|e| panic!("{e}\n---\n{body}"));
        let missing = get("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        server.shutdown();
    }
}
