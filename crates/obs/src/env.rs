//! Central registry of the workspace's `HUS_*` environment knobs.
//!
//! Every crate that reads an environment variable registers it here, so
//! there is exactly one place that knows the full set, its defaults and
//! its semantics. The README's "Environment knobs" table is generated
//! from this registry by [`markdown_table`] and kept in sync by the
//! `docs_sync` integration test — edit this file, then paste the
//! regenerated table between the README's `env-table` markers (the test
//! prints the expected text on mismatch).

/// One documented environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvKnob {
    /// Variable name, e.g. `HUS_TRACE`.
    pub name: &'static str,
    /// Rendered default (`unset` when absence is meaningful).
    pub default: &'static str,
    /// One-line effect description (markdown allowed).
    pub effect: &'static str,
}

/// Every `HUS_*` environment variable the workspace reads, sorted by
/// name. The `docs_sync` integration test greps the source tree and
/// fails if a variable is read but not registered here (or vice versa).
pub const KNOBS: &[EnvKnob] = &[
    EnvKnob {
        name: "HUS_BACKEND",
        default: "`file`",
        effect: "storage read backend for graphs opened without an explicit choice: \
                 `file` (buffered `pread`), `mmap` (shared map copy-out) or `direct` \
                 (`O_DIRECT` + io_uring when available, pooled aligned buffers; \
                 degrades to `file` on filesystems that refuse `O_DIRECT`, e.g. \
                 tmpfs — see `DESIGN.md` §3.5)",
    },
    EnvKnob {
        name: "HUS_CKPT",
        default: "`0`",
        effect: "checkpoint the full iteration state (vertex values + frontier) into \
                 the run's scratch directory every this many iterations; a rerun with \
                 the same scratch resumes bit-identically (`0` disables; see \
                 `DESIGN.md` §10)",
    },
    EnvKnob {
        name: "HUS_CODEC",
        default: "`raw`",
        effect: "per-block edge codec for `hus build` and the builder APIs: `raw` \
                 (bit-compatible with pre-codec graphs) or `delta-varint` \
                 (delta + LEB128 varint of the non-indexed endpoint; see \
                 `docs/FORMAT.md`). Readers auto-detect from `meta.json`",
    },
    EnvKnob {
        name: "HUS_CODEC_CACHE",
        default: "`16777216`",
        effect: "decoded-block cache budget in bytes per compressed shard file \
                 (partial reads decode whole blocks once and serve later touches \
                 from the cache; `0` disables)",
    },
    EnvKnob {
        name: "HUS_COMPACT_TRIGGER",
        default: "`0`",
        effect: "auto-compact a dynamic graph once this many delta runs accumulate \
                 (each spill checks the count; compaction folds memtable + runs into \
                 a new base build). `0` leaves compaction manual (`hus compact`; see \
                 `DESIGN.md` §11)",
    },
    EnvKnob {
        name: "HUS_CRASH_AT",
        default: "unset",
        effect: "recovery-test hook: `<point>` (or `<point>:<n>` for the n-th hit) \
                 kills the process with exit code 86 at that named staged-write \
                 point, simulating a power cut (see `DESIGN.md` §10; never set in \
                 production)",
    },
    EnvKnob {
        name: "HUS_FAULT",
        default: "unset",
        effect: "storage fault injection for resilience testing, e.g. \
                 `seed=7,eio=0.01,short=0.005,flip=0.001,delay=0.01,delay_ms=2` \
                 (probabilities per read op) plus the write-path kinds \
                 `enospc`, `shortw`, `torn` and `fsync_fail` (probabilities per \
                 durable write; a fired write fault rolls the store back to the \
                 prior generation and enters degraded mode — see `docs/FORMAT.md` \
                 and `DESIGN.md` §9)",
    },
    EnvKnob {
        name: "HUS_HEATMAP",
        default: "unset",
        effect: "`1` enables per-block I/O attribution: raw/encoded/decoded bytes, \
                 cache hits/misses, decode time, retries and degradations per \
                 `(i, j)` edge block, rendered by `hus audit`, `hus top`, \
                 `debug_profile` and the `/metrics` exporter (see \
                 `docs/OBSERVABILITY.md`)",
    },
    EnvKnob {
        name: "HUS_MEMTABLE_BYTES",
        default: "`67108864`",
        effect: "byte budget of the dynamic-graph write buffer; crossing it spills \
                 the buffered edge updates to an on-disk delta run \
                 (`delta_<seq>.run`, listed in `MANIFEST`; see `docs/FORMAT.md` and \
                 `DESIGN.md` §11)",
    },
    EnvKnob {
        name: "HUS_MERGE_SLACK",
        default: "`4096`",
        effect: "max byte gap between selective ROP ranges merged into one batched read \
                 (active only when the device's batched rate beats its random rate)",
    },
    EnvKnob {
        name: "HUS_METRICS_ADDR",
        default: "unset",
        effect: "`host:port` (e.g. `127.0.0.1:9464`) starts the dependency-free \
                 OpenMetrics/Prometheus exporter serving `/metrics` and `/healthz` \
                 from the live registry; setting it also enables metric collection \
                 (see `docs/OBSERVABILITY.md`)",
    },
    EnvKnob {
        name: "HUS_NO_FSYNC",
        default: "unset",
        effect: "`1` disables every fsync in the builders, staging commits and \
                 checkpoint writer — trades crash durability for speed (test \
                 suites); the write *ordering* is unchanged",
    },
    EnvKnob {
        name: "HUS_P",
        default: "`8`",
        effect: "partition/interval count for all systems (experiment binaries)",
    },
    EnvKnob {
        name: "HUS_PARALLEL_ROWS",
        default: "`1`",
        effect: "`0` disables row-parallel ROP (independent rows processed concurrently \
                 under the run's thread pool; see `DESIGN.md` §6)",
    },
    EnvKnob {
        name: "HUS_PROBE",
        default: "unset",
        effect: "`1` measures the host's real `T_sequential`/`T_random` once with the \
                 built-in fio-style probe (same measurement as `hus probe`) and feeds \
                 them to the hybrid predictor instead of the device preset",
    },
    EnvKnob {
        name: "HUS_QUERY_BYTE_BUDGET",
        default: "`0`",
        effect: "per-query I/O byte budget of `hus serve`: point lookups are metered \
                 per fetch and full analytics are charged a pre-flight whole-scan \
                 estimate; crossing the budget rejects the query with a typed \
                 `budget` error (`0` = unlimited; see `DESIGN.md` §12)",
    },
    EnvKnob {
        name: "HUS_QUERY_DEADLINE_MS",
        default: "`0`",
        effect: "per-query wall-clock deadline of `hus serve` in milliseconds, \
                 enforced cooperatively at block boundaries in the COP/ROP loops; \
                 a crossed deadline aborts the query with a typed `deadline` error \
                 (`0` = unlimited; CLI override `--deadline-ms`; see `DESIGN.md` \
                 §12)",
    },
    EnvKnob {
        name: "HUS_QUEUE_DEPTH",
        default: "`8`",
        effect: "I/O queue depth: concurrent producer fetches per COP column walk and \
                 the io_uring submission-queue size of the `direct` backend (see \
                 `DESIGN.md` §3.5)",
    },
    EnvKnob {
        name: "HUS_READAHEAD",
        default: "`0`",
        effect: "COP readahead window in blocks; `0` auto-sizes from the thread budget \
                 (threads clamped to 2..=8)",
    },
    EnvKnob {
        name: "HUS_RETRIES",
        default: "`4`",
        effect: "max read attempts per storage operation for transient errors \
                 (exponential backoff with deterministic jitter; `1` disables retries)",
    },
    EnvKnob {
        name: "HUS_SCALE",
        default: "`1000`",
        effect: "divides the paper's dataset sizes (smaller = bigger graphs)",
    },
    EnvKnob {
        name: "HUS_SERVE_ADDR",
        default: "`127.0.0.1:7464`",
        effect: "listen address of the `hus serve` query daemon (`host:port`; port \
                 `0` binds an ephemeral port, printed on startup)",
    },
    EnvKnob {
        name: "HUS_SERVE_IDLE_MS",
        default: "`30000`",
        effect: "reap a `hus serve` connection that has been idle (no complete \
                 request line) for this many milliseconds so a stalled or silent \
                 client can never hold a worker indefinitely (`0` = never; CLI \
                 override `--idle-ms`)",
    },
    EnvKnob {
        name: "HUS_SERVE_MAX_INFLIGHT",
        default: "`8`",
        effect: "max concurrently executing queries in `hus serve`; excess requests \
                 are rejected immediately with a `busy` error (the HTTP-429 \
                 analogue) instead of queueing unbounded latency (see `DESIGN.md` \
                 §12)",
    },
    EnvKnob {
        name: "HUS_THREADS",
        default: "`16`",
        effect: "worker threads (the paper machine's core count; experiment binaries)",
    },
    EnvKnob {
        name: "HUS_TRACE",
        default: "unset",
        effect: "`path.jsonl` enables observability and streams span/iteration/run \
                 records there (see `DESIGN.md` §8)",
    },
    EnvKnob {
        name: "HUS_VERIFY",
        default: "unset",
        effect: "`1` verifies per-block CRC-32C checksums on every full-block read, \
                 surfacing on-disk corruption as a typed error naming the exact block \
                 (see `docs/FORMAT.md`)",
    },
];

/// Look up a knob by variable name.
pub fn knob(name: &str) -> Option<&'static EnvKnob> {
    KNOBS.iter().find(|k| k.name == name)
}

/// Render the registry as the README's markdown table (header + one row
/// per knob, sorted by name).
pub fn markdown_table() -> String {
    let mut out = String::from("| variable | default | effect |\n|---|---|---|\n");
    for k in KNOBS {
        out.push_str(&format!("| `{}` | {} | {} |\n", k.name, k.default, k.effect));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_are_sorted_and_unique() {
        for pair in KNOBS.windows(2) {
            assert!(pair[0].name < pair[1].name, "{} vs {}", pair[0].name, pair[1].name);
        }
    }

    #[test]
    fn every_knob_is_namespaced() {
        for k in KNOBS {
            assert!(k.name.starts_with("HUS_"), "{}", k.name);
            assert!(!k.effect.is_empty());
            assert!(!k.default.is_empty());
        }
    }

    #[test]
    fn lookup_finds_registered_names() {
        assert!(knob("HUS_TRACE").is_some());
        assert!(knob("NOT_A_REGISTERED_KNOB").is_none());
    }

    #[test]
    fn table_has_one_row_per_knob() {
        let t = markdown_table();
        assert_eq!(t.lines().count(), 2 + KNOBS.len());
        for k in KNOBS {
            assert!(t.contains(&format!("| `{}` |", k.name)));
        }
    }
}
