//! Plain-text table rendering — the human-readable sink.
//!
//! Moved here from the bench crate's report module so engines and the
//! profiler can render per-iteration phase tables without depending on
//! the experiment harness; `hus-bench` re-exports these names.

/// A simple aligned text table (markdown-flavored) printed to stdout.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as a markdown table string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", cell, width = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print the table with a title.
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        print!("{}", self.render());
    }
}

/// Format seconds compactly (`1.23 s`, `45.6 ms`).
pub fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        "-".to_string()
    } else if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

/// Format a byte count as decimal GB/MB.
pub fn fmt_gb(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else {
        format!("{:.1} MB", b / 1e6)
    }
}

/// Format a speedup factor (`3.2x`).
pub fn fmt_speedup(factor: f64) -> String {
    format!("{factor:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(&["sys", "time"]);
        t.row(vec!["HUS-Graph".into(), "1.2 s".into()]);
        t.row(vec!["GraphChi".into(), "12 s".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| sys"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("HUS-Graph"));
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(3.456), "3.46 s");
        assert_eq!(fmt_secs(250.0), "250 s");
        assert_eq!(fmt_secs(f64::NAN), "-");
        assert_eq!(fmt_gb(1_500_000), "1.5 MB");
        assert_eq!(fmt_gb(2_340_000_000), "2.34 GB");
        assert_eq!(fmt_speedup(3.24), "3.2x");
    }
}
