//! RAII span timers.
//!
//! A span is opened with [`crate::span!`] and measures wall time until
//! its guard drops. Spans nest: each guard records the depth at which
//! it opened, children close before their parent, so the drained event
//! stream lists children before the enclosing parent span.
//!
//! Closed spans buffer in a thread-local vector; when a depth-0 span
//! closes, the thread's buffer is flushed into the global collector.
//! The engine drains the collector once per iteration with [`drain`]
//! and aggregates depth-0 events into [`crate::PhaseStat`]s.

use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// One closed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Static dotted name; the first segment is the phase
    /// (`"rop.row"` → phase `rop`).
    pub name: &'static str,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall duration, nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open (0 = top level on its thread).
    pub depth: u16,
    /// Optional structured field, e.g. `("interval", 3)`.
    pub field: Option<(&'static str, u64)>,
}

impl SpanEvent {
    /// The phase this span belongs to: the dotted name's first segment.
    pub fn phase(&self) -> &'static str {
        self.name.split('.').next().unwrap_or(self.name)
    }
}

static COLLECTOR: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

thread_local! {
    static DEPTH: Cell<u16> = const { Cell::new(0) };
    static LOCAL: RefCell<Vec<SpanEvent>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Open a span; prefer the [`crate::span!`] macro. Returns an inert
/// guard (no allocation, no clock read) when collection is disabled.
pub fn enter(name: &'static str, field: Option<(&'static str, u64)>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    let depth = DEPTH.with(|d| {
        let cur = d.get();
        d.set(cur + 1);
        cur
    });
    SpanGuard { live: Some(LiveSpan { name, field, depth, start: Instant::now() }) }
}

/// Take every span flushed since the last drain, in flush order.
pub fn drain() -> Vec<SpanEvent> {
    std::mem::take(&mut *COLLECTOR.lock())
}

/// Flush the calling thread's buffered spans to the global collector
/// even if no depth-0 span closed (used by tests and at run end).
pub fn flush_thread() {
    LOCAL.with(|l| {
        let mut local = l.borrow_mut();
        if !local.is_empty() {
            COLLECTOR.lock().append(&mut local);
        }
    });
}

struct LiveSpan {
    name: &'static str,
    field: Option<(&'static str, u64)>,
    depth: u16,
    start: Instant,
}

/// RAII guard measuring one span; records on drop.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.live.take() else { return };
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        let start_ns = span.start.duration_since(epoch()).as_nanos() as u64;
        DEPTH.with(|d| d.set(span.depth));
        let event =
            SpanEvent { name: span.name, start_ns, dur_ns, depth: span.depth, field: span.field };
        LOCAL.with(|l| l.borrow_mut().push(event));
        if span.depth == 0 {
            flush_thread();
        }
    }
}

/// Open an RAII span timer: `span!("rop.row")` or
/// `span!("rop.row", interval = i)`. Bind the result
/// (`let _s = span!(..)`) so the span covers the intended scope.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::enter($name, ::core::option::Option::None)
    };
    ($name:literal, $key:ident = $value:expr) => {
        $crate::span::enter(
            $name,
            ::core::option::Option::Some((stringify!($key), ($value) as u64)),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_clean_collector<R>(f: impl FnOnce() -> R) -> R {
        // Span tests share the process-global collector, so they
        // serialize on the crate gate and drain before releasing it.
        let _g = crate::TEST_GATE.lock();
        crate::set_enabled(true);
        drain();
        let r = f();
        crate::set_enabled(false);
        drain();
        r
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::TEST_GATE.lock();
        crate::set_enabled(false);
        drain();
        {
            let _s = crate::span!("predict");
        }
        flush_thread();
        assert!(drain().is_empty());
    }

    #[test]
    fn nesting_depths_and_drain_order() {
        let events = with_clean_collector(|| {
            {
                let _outer = crate::span!("rop.row", interval = 3);
                {
                    let _inner = crate::span!("rop.push");
                    let _deeper = crate::span!("rop.fetch");
                }
                let _sibling = crate::span!("rop.writeback");
            }
            drain()
        });
        // Children close (and thus appear) before their parent; the
        // parent's depth-0 close flushes the whole thread buffer.
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["rop.fetch", "rop.push", "rop.writeback", "rop.row"]);
        let depths: Vec<u16> = events.iter().map(|e| e.depth).collect();
        assert_eq!(depths, [2, 1, 1, 0]);
        assert_eq!(events[3].field, Some(("interval", 3)));
        assert!(events.iter().all(|e| e.phase() == "rop"));
        // The parent span contains its children in time.
        let parent = &events[3];
        for child in &events[..3] {
            assert!(child.start_ns >= parent.start_ns);
            assert!(child.start_ns + child.dur_ns <= parent.start_ns + parent.dur_ns + 1_000);
        }
    }

    #[test]
    fn sequential_top_level_spans_flush_each() {
        let events = with_clean_collector(|| {
            {
                let _a = crate::span!("predict");
            }
            {
                let _b = crate::span!("sync");
            }
            drain()
        });
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "predict");
        assert_eq!(events[1].name, "sync");
        assert!(events[0].depth == 0 && events[1].depth == 0);
        // Wall-clock ordering across separate top-level spans.
        assert!(events[1].start_ns >= events[0].start_ns + events[0].dur_ns);
    }
}
