//! JSONL event sink.
//!
//! One serialized record per line, flushed per write so a trace is
//! readable even if the process aborts mid-run. The process-wide trace
//! sink is installed by [`crate::init_from_env`] from `HUS_TRACE`, or
//! explicitly via [`install_trace`].

use crate::span::SpanEvent;
use parking_lot::Mutex;
use serde::Serialize;
use serde_json::Value;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::OnceLock;

/// Line-oriented JSON writer.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) the sink file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)) })
    }

    /// Write one record as one line. I/O errors are reported once to
    /// stderr and otherwise swallowed — tracing must never fail a run.
    pub fn emit<T: Serialize>(&self, record: &T) {
        let line = match serde_json::to_string(record) {
            Ok(l) => l,
            Err(e) => {
                warn_once(&format!("trace serialize failed: {e}"));
                return;
            }
        };
        let mut w = self.writer.lock();
        if writeln!(w, "{line}").and_then(|_| w.flush()).is_err() {
            warn_once("trace write failed; further records may be lost");
        }
    }

    /// Emit a span as a `{"type":"span",...}` record, tagged with the
    /// engine that produced it and the iteration it was drained in.
    pub fn emit_span(&self, engine: &str, iteration: usize, e: &SpanEvent) {
        let mut fields = vec![
            ("type".to_string(), Value::Str("span".to_string())),
            ("engine".to_string(), Value::Str(engine.to_string())),
            ("iteration".to_string(), Value::U64(iteration as u64)),
            ("name".to_string(), Value::Str(e.name.to_string())),
            ("start_ns".to_string(), Value::U64(e.start_ns)),
            ("dur_ns".to_string(), Value::U64(e.dur_ns)),
            ("depth".to_string(), Value::U64(e.depth as u64)),
        ];
        if let Some((k, v)) = e.field {
            fields.push((k.to_string(), Value::U64(v)));
        }
        self.emit(&Value::Object(fields));
    }

    /// Emit `record` flattened into a `{"type": tag, "engine": ...}`
    /// object (non-object serializations land under a `"value"` key).
    pub fn emit_tagged<T: Serialize>(&self, tag: &str, engine: &str, record: &T) {
        let mut fields = vec![
            ("type".to_string(), Value::Str(tag.to_string())),
            ("engine".to_string(), Value::Str(engine.to_string())),
        ];
        match record.to_value() {
            Value::Object(obj) => fields.extend(obj),
            other => fields.push(("value".to_string(), other)),
        }
        self.emit(&Value::Object(fields));
    }

    /// Emit one `{"type":"iteration",...}` record (an `IterationStats`
    /// or anything else serializing to an object).
    pub fn emit_iteration<T: Serialize>(&self, engine: &str, stats: &T) {
        self.emit_tagged("iteration", engine, stats);
    }

    /// Emit one `{"type":"run",...}` record at the end of a run.
    pub fn emit_run<T: Serialize>(&self, engine: &str, stats: &T) {
        self.emit_tagged("run", engine, stats);
    }
}

fn warn_once(msg: &str) {
    static WARNED: OnceLock<()> = OnceLock::new();
    let mut first = false;
    WARNED.get_or_init(|| {
        first = true;
    });
    if first {
        eprintln!("warning: {msg}");
    }
}

static TRACE: OnceLock<JsonlSink> = OnceLock::new();

/// Install the process-wide trace sink (first install wins).
pub fn install_trace(sink: JsonlSink) {
    let _ = TRACE.set(sink);
}

/// The installed trace sink, if any.
pub fn trace() -> Option<&'static JsonlSink> {
    TRACE.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Rec {
        iteration: usize,
        wall_seconds: f64,
        model: String,
    }

    #[test]
    fn jsonl_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("t.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let records = vec![
            Rec { iteration: 0, wall_seconds: 0.5, model: "Rop".into() },
            Rec { iteration: 1, wall_seconds: 0.25, model: "Cop".into() },
        ];
        for r in &records {
            sink.emit(r);
        }
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<Rec> = text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn span_records_carry_fields() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("s.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        let e = SpanEvent {
            name: "rop.row",
            start_ns: 10,
            dur_ns: 250,
            depth: 0,
            field: Some(("interval", 4)),
        };
        sink.emit_span("hus", 7, &e);
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(v.get("type"), Some(&Value::Str("span".into())));
        assert_eq!(v.get("engine"), Some(&Value::Str("hus".into())));
        assert_eq!(v.get("iteration"), Some(&Value::U64(7)));
        assert_eq!(v.get("name"), Some(&Value::Str("rop.row".into())));
        assert_eq!(v.get("dur_ns"), Some(&Value::U64(250)));
        assert_eq!(v.get("interval"), Some(&Value::U64(4)));
    }

    #[test]
    fn tagged_records_flatten_objects() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("r.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit_iteration(
            "graphchi",
            &Rec { iteration: 2, wall_seconds: 0.75, model: "Cop".into() },
        );
        sink.emit_run("graphchi", &3u64);
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<Value> = text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(lines[0].get("type"), Some(&Value::Str("iteration".into())));
        assert_eq!(lines[0].get("engine"), Some(&Value::Str("graphchi".into())));
        assert_eq!(lines[0].get("iteration"), Some(&Value::U64(2)));
        assert_eq!(lines[0].get("model"), Some(&Value::Str("Cop".into())));
        // Non-object payloads nest under "value".
        assert_eq!(lines[1].get("type"), Some(&Value::Str("run".into())));
        assert_eq!(lines[1].get("value"), Some(&Value::U64(3)));
    }
}
