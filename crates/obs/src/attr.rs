//! Per-block I/O attribution — the telemetry "heatmap".
//!
//! The grid layout (P×P edge blocks, paper §3.1) makes *which block*
//! burned the bytes the natural unit of attribution: a skewed graph
//! concentrates traffic in a few hub blocks, and the hybrid's ROP/COP
//! choice changes which blocks are touched at all. This module keeps a
//! sharded map from block `(i, j)` to a bundle of relaxed atomic
//! counters (raw/encoded/decoded bytes, cache hits/misses, decode
//! nanoseconds, retries, degradations) that the storage and engine
//! layers feed.
//!
//! Attribution is gated by its own flag (env knob `HUS_HEATMAP`),
//! independent of the main metrics switch: when disabled every
//! instrumentation site is one relaxed load and a branch — measured in
//! the `telemetry_overhead` bench to keep the disabled path free.
//!
//! Layers that know their block (the per-block readers in
//! `hus-core::graph`, the codec backend's spans) record directly with
//! [`record_at`]. Layers that see only file offsets (the page cache,
//! the retry wrapper, the byte tracker) attribute to the *current
//! block*: a thread-local set by [`with_block`] around each per-block
//! operation, so a cache hit deep inside the backend stack still lands
//! on the right cell of the heatmap.

use serde::Serialize;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Env knob enabling per-block attribution (`1` turns the heatmap on).
pub const HEATMAP_ENV: &str = "HUS_HEATMAP";

/// Shard count for the block map (power of two; blocks hash by
/// `i * 31 + j` low bits so neighbouring blocks spread out).
const ATTR_SHARDS: usize = 16;

static HEATMAP: AtomicBool = AtomicBool::new(false);

/// Whether per-block attribution is collecting. The disabled fast path
/// is one relaxed load + branch per site.
#[inline(always)]
pub fn heatmap_enabled() -> bool {
    HEATMAP.load(Ordering::Relaxed)
}

/// Turn per-block attribution on or off globally.
pub fn set_heatmap_enabled(on: bool) {
    HEATMAP.store(on, Ordering::Relaxed);
}

/// What a per-block sample measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStat {
    /// Bytes billed to the device (reads that reached a backend).
    RawBytes,
    /// Encoded (on-disk, post-codec) bytes fetched for this block.
    EncodedBytes,
    /// Decoded bytes produced for this block.
    DecodedBytes,
    /// Reads served from a cache (page cache or decoded-block cache).
    CacheHits,
    /// Reads that missed every cache and went to the device.
    CacheMisses,
    /// Nanoseconds spent decoding this block's shard payload.
    DecodeNs,
    /// Read retries (transient I/O errors and checksum re-verifies).
    Retries,
    /// Degraded paths taken (ranged→per-range, readahead→sync, mmap→file).
    Degradations,
}

/// One block's counters (relaxed atomics; cheap to share via `Arc`).
#[derive(Debug, Default)]
struct BlockCounters {
    raw_bytes: AtomicU64,
    encoded_bytes: AtomicU64,
    decoded_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    decode_ns: AtomicU64,
    retries: AtomicU64,
    degradations: AtomicU64,
}

impl BlockCounters {
    fn add(&self, stat: BlockStat, n: u64) {
        let cell = match stat {
            BlockStat::RawBytes => &self.raw_bytes,
            BlockStat::EncodedBytes => &self.encoded_bytes,
            BlockStat::DecodedBytes => &self.decoded_bytes,
            BlockStat::CacheHits => &self.cache_hits,
            BlockStat::CacheMisses => &self.cache_misses,
            BlockStat::DecodeNs => &self.decode_ns,
            BlockStat::Retries => &self.retries,
            BlockStat::Degradations => &self.degradations,
        };
        cell.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self, i: u32, j: u32) -> BlockIo {
        BlockIo {
            i,
            j,
            raw_bytes: self.raw_bytes.load(Ordering::Relaxed),
            encoded_bytes: self.encoded_bytes.load(Ordering::Relaxed),
            decoded_bytes: self.decoded_bytes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degradations: self.degradations.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one block's attribution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct BlockIo {
    /// Source interval (grid row).
    pub i: u32,
    /// Destination interval (grid column).
    pub j: u32,
    /// Bytes billed to the device for this block.
    pub raw_bytes: u64,
    /// Encoded (post-codec) bytes fetched.
    pub encoded_bytes: u64,
    /// Decoded bytes produced.
    pub decoded_bytes: u64,
    /// Cache-served reads.
    pub cache_hits: u64,
    /// Cache-missing reads.
    pub cache_misses: u64,
    /// Nanoseconds spent decoding.
    pub decode_ns: u64,
    /// Read retries.
    pub retries: u64,
    /// Degraded-path events.
    pub degradations: u64,
}

impl BlockIo {
    /// Fraction of cache touches served from cache (0.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One shard of the block map, keyed by `(i, j)`.
type AttrShard = RwLock<HashMap<(u32, u32), Arc<BlockCounters>>>;

/// Sharded block → counters map.
struct BlockAttr {
    shards: Vec<AttrShard>,
}

impl BlockAttr {
    fn new() -> Self {
        BlockAttr { shards: (0..ATTR_SHARDS).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    fn shard(&self, i: u32, j: u32) -> &AttrShard {
        &self.shards[(i as usize).wrapping_mul(31).wrapping_add(j as usize) & (ATTR_SHARDS - 1)]
    }

    fn block(&self, i: u32, j: u32) -> Arc<BlockCounters> {
        let shard = self.shard(i, j);
        if let Some(b) = shard.read().unwrap().get(&(i, j)) {
            return Arc::clone(b);
        }
        Arc::clone(shard.write().unwrap().entry((i, j)).or_default())
    }
}

fn global() -> &'static BlockAttr {
    static GLOBAL: OnceLock<BlockAttr> = OnceLock::new();
    GLOBAL.get_or_init(BlockAttr::new)
}

thread_local! {
    static CURRENT_BLOCK: Cell<Option<(u32, u32)>> = const { Cell::new(None) };
}

/// Restores the previous thread-local block on drop (panic-safe).
struct BlockScope(Option<(u32, u32)>);

impl Drop for BlockScope {
    fn drop(&mut self) {
        CURRENT_BLOCK.with(|c| c.set(self.0));
    }
}

/// Run `f` with `(i, j)` as the thread's current block: storage layers
/// below that only see file offsets ([`record`] callers) attribute to
/// it. Scopes nest; the previous block is restored on exit, including
/// on unwind. When the heatmap is disabled this is one relaxed load
/// and a direct call.
#[inline]
pub fn with_block<R>(i: u32, j: u32, f: impl FnOnce() -> R) -> R {
    if !heatmap_enabled() {
        return f();
    }
    let _scope = BlockScope(CURRENT_BLOCK.with(|c| c.replace(Some((i, j)))));
    f()
}

/// The thread's current attribution block, if inside a [`with_block`]
/// scope (always `None` while the heatmap is disabled).
pub fn current_block() -> Option<(u32, u32)> {
    if !heatmap_enabled() {
        return None;
    }
    CURRENT_BLOCK.with(|c| c.get())
}

/// Attribute `n` units of `stat` to the thread's current block (no-op
/// outside a [`with_block`] scope or while the heatmap is disabled).
#[inline]
pub fn record(stat: BlockStat, n: u64) {
    if !heatmap_enabled() {
        return;
    }
    if let Some((i, j)) = CURRENT_BLOCK.with(|c| c.get()) {
        global().block(i, j).add(stat, n);
    }
}

/// Attribute `n` units of `stat` to block `(i, j)` directly (layers
/// that know their block, e.g. codec spans).
#[inline]
pub fn record_at(i: u32, j: u32, stat: BlockStat, n: u64) {
    if !heatmap_enabled() {
        return;
    }
    global().block(i, j).add(stat, n);
}

/// Snapshot every attributed block, sorted by `(i, j)`.
pub fn snapshot() -> Vec<BlockIo> {
    let mut out = Vec::new();
    for shard in &global().shards {
        for (&(i, j), c) in shard.read().unwrap().iter() {
            out.push(c.snapshot(i, j));
        }
    }
    out.sort_by_key(|b| (b.i, b.j));
    out
}

/// The `k` hottest blocks by raw (device-billed) bytes, descending;
/// ties broken by `(i, j)` so the order is deterministic.
pub fn top_k(k: usize) -> Vec<BlockIo> {
    let mut all = snapshot();
    all.sort_by(|a, b| b.raw_bytes.cmp(&a.raw_bytes).then(a.i.cmp(&b.i)).then(a.j.cmp(&b.j)));
    all.truncate(k);
    all
}

/// Drop every block's counters (tests and `hus top` between runs).
pub fn reset() {
    for shard in &global().shards {
        shard.write().unwrap().clear();
    }
}

/// Render the attributed blocks as a compact ASCII heatmap: one grid
/// cell per block, shaded by raw bytes relative to the hottest block
/// (` .:-=+*#%@`), rows = source interval `i`, columns = destination
/// interval `j`. Returns an empty string when nothing was attributed.
pub fn render_heatmap(blocks: &[BlockIo]) -> String {
    if blocks.is_empty() {
        return String::new();
    }
    let p = blocks.iter().map(|b| b.i.max(b.j) as usize + 1).max().unwrap_or(0);
    let max = blocks.iter().map(|b| b.raw_bytes).max().unwrap_or(0);
    let mut grid = vec![vec![0u64; p]; p];
    for b in blocks {
        grid[b.i as usize][b.j as usize] = b.raw_bytes;
    }
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    out.push_str("      j→ ");
    for j in 0..p {
        out.push_str(&format!("{:>2}", j % 100));
    }
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        out.push_str(&format!("  i={i:>3} [ "));
        for &v in row {
            let shade = if max == 0 || v == 0 {
                SHADES[0]
            } else {
                // Hottest block gets the densest shade; everything else
                // scales linearly into the remaining ramp.
                let idx = 1 + (v * (SHADES.len() as u64 - 2) / max) as usize;
                SHADES[idx.min(SHADES.len() - 1)]
            };
            out.push(shade as char);
            out.push(' ');
        }
        out.push_str("]\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-global heatmap flag.
    static HEATMAP_GATE: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = HEATMAP_GATE.lock();
        set_heatmap_enabled(false);
        reset();
        record_at(1, 1, BlockStat::RawBytes, 100);
        with_block(2, 2, || record(BlockStat::CacheHits, 1));
        assert!(current_block().is_none());
        assert!(snapshot().is_empty());
    }

    #[test]
    fn records_and_snapshots_per_block() {
        let _g = HEATMAP_GATE.lock();
        set_heatmap_enabled(true);
        reset();
        record_at(0, 1, BlockStat::RawBytes, 64);
        record_at(0, 1, BlockStat::RawBytes, 36);
        record_at(0, 1, BlockStat::DecodeNs, 500);
        record_at(2, 0, BlockStat::EncodedBytes, 10);
        let snap = snapshot();
        set_heatmap_enabled(false);
        assert_eq!(snap.len(), 2);
        assert_eq!((snap[0].i, snap[0].j, snap[0].raw_bytes, snap[0].decode_ns), (0, 1, 100, 500));
        assert_eq!((snap[1].i, snap[1].j, snap[1].encoded_bytes), (2, 0, 10));
    }

    #[test]
    fn with_block_scopes_nest_and_restore() {
        let _g = HEATMAP_GATE.lock();
        set_heatmap_enabled(true);
        reset();
        with_block(3, 4, || {
            assert_eq!(current_block(), Some((3, 4)));
            record(BlockStat::CacheMisses, 1);
            with_block(5, 6, || {
                assert_eq!(current_block(), Some((5, 6)));
                record(BlockStat::CacheHits, 2);
            });
            assert_eq!(current_block(), Some((3, 4)));
            record(BlockStat::Retries, 1);
        });
        assert_eq!(current_block(), None);
        // Outside any scope the sample is dropped, not misattributed.
        record(BlockStat::Degradations, 9);
        let snap = snapshot();
        set_heatmap_enabled(false);
        assert_eq!(snap.len(), 2);
        let outer = snap.iter().find(|b| (b.i, b.j) == (3, 4)).unwrap();
        let inner = snap.iter().find(|b| (b.i, b.j) == (5, 6)).unwrap();
        assert_eq!((outer.cache_misses, outer.retries, outer.degradations), (1, 1, 0));
        assert_eq!(inner.cache_hits, 2);
    }

    #[test]
    fn top_k_orders_by_raw_bytes() {
        let _g = HEATMAP_GATE.lock();
        set_heatmap_enabled(true);
        reset();
        record_at(0, 0, BlockStat::RawBytes, 10);
        record_at(1, 1, BlockStat::RawBytes, 1000);
        record_at(2, 2, BlockStat::RawBytes, 100);
        let top = top_k(2);
        set_heatmap_enabled(false);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].i, top[0].raw_bytes), (1, 1000));
        assert_eq!((top[1].i, top[1].raw_bytes), (2, 100));
    }

    #[test]
    fn heatmap_render_shades_by_intensity() {
        let blocks = [
            BlockIo { i: 0, j: 0, raw_bytes: 1000, ..Default::default() },
            BlockIo { i: 1, j: 1, raw_bytes: 1, ..Default::default() },
        ];
        let art = render_heatmap(&blocks);
        assert!(art.contains('@'), "hottest block gets densest shade:\n{art}");
        assert!(art.contains("i=  0"));
        assert_eq!(art.lines().count(), 3, "header + 2 rows:\n{art}");
        assert_eq!(render_heatmap(&[]), "");
    }

    #[test]
    fn hit_rate_is_nan_free() {
        assert_eq!(BlockIo::default().hit_rate(), 0.0);
        let b = BlockIo { cache_hits: 3, cache_misses: 1, ..Default::default() };
        assert_eq!(b.hit_rate(), 0.75);
    }
}
