//! Metric registry: named counters, gauges, and log₂-bucketed
//! histograms.
//!
//! Handles are `Arc`s served by a global [`Registry`]; instrumentation
//! sites look a metric up once (at construction / first touch) and then
//! update it with relaxed atomics, so steady-state cost is an atomic
//! add — cheap enough for per-I/O latency recording.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket absorbs the tail.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lock-free histogram over `u64` samples with power-of-two buckets.
///
/// Designed for nanosecond latencies: 64 buckets cover the full `u64`
/// range, recording is a branch-free index computation plus three
/// relaxed atomic adds.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 63 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps only after ~584 years of nanoseconds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of the current state (buckets are read
    /// relaxed; concurrent recording may skew counts by a few samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).field("sum", &self.sum()).finish()
    }
}

/// Owned copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the `q`-th ranked sample. Resolution is the
    /// power-of-two bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper_bound(i);
            }
        }
        Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// Name-keyed store of metrics. `get`-style methods create on first
/// use and hand back `Arc` handles to cache at the call site.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// Fresh, empty registry (tests; production uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle for `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name).or_default())
    }

    /// Gauge handle for `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().entry(name).or_default())
    }

    /// Histogram handle for `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().entry(name).or_default())
    }

    /// Snapshot every histogram, name-sorted.
    pub fn histogram_snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.histograms.lock().iter().map(|(n, h)| (*n, h.snapshot())).collect()
    }

    /// Read every counter, name-sorted.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        self.counters.lock().iter().map(|(n, c)| (*n, c.get())).collect()
    }

    /// Read every gauge, name-sorted.
    pub fn gauge_values(&self) -> Vec<(&'static str, u64)> {
        self.gauges.lock().iter().map(|(n, g)| (*n, g.get())).collect()
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A `static`-declarable counter that binds to the [`global`] registry
/// on first *enabled* use. While collection is disabled every call is
/// one relaxed load and a branch; nothing is registered.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declare a counter by name (registered lazily).
    pub const fn new(name: &'static str) -> Self {
        LazyCounter { name, cell: OnceLock::new() }
    }

    /// Add `n` if collection is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell.get_or_init(|| global().counter(self.name)).add(n);
    }

    /// Add one if collection is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A `static`-declarable gauge; see [`LazyCounter`].
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Declare a gauge by name (registered lazily).
    pub const fn new(name: &'static str) -> Self {
        LazyGauge { name, cell: OnceLock::new() }
    }

    /// Overwrite the value if collection is enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell.get_or_init(|| global().gauge(self.name)).set(v);
    }
}

/// A `static`-declarable histogram; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declare a histogram by name (registered lazily).
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram { name, cell: OnceLock::new() }
    }

    /// Record a sample if collection is enabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cell.get_or_init(|| global().histogram(self.name)).record(value);
    }

    /// Record the nanoseconds elapsed since a [`latency_timer`] start
    /// (no-op when the timer was not armed).
    #[inline]
    pub fn record_elapsed(&self, start: Option<std::time::Instant>) {
        if let Some(t0) = start {
            self.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Start a latency timer — `Some(now)` only while collection is
/// enabled, so the disabled path never reads the clock. Pair with
/// [`LazyHistogram::record_elapsed`].
#[inline]
pub fn latency_timer() -> Option<std::time::Instant> {
    if crate::enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges() {
        // Bucket 0 is exactly {0}; bucket i≥1 is [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        for i in 1..63 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "upper edge of bucket {i}");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(3), 7);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0, 1, 1, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1007);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 2); // 1, 1
        assert_eq!(s.buckets[3], 1); // 5
        assert_eq!(s.buckets[10], 1); // 1000 ∈ [512, 1024)
        assert!((s.mean() - 201.4).abs() < 1e-9);
        // Median sample is 1 → bucket 1 upper bound.
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(1.0), 1023);
    }

    #[test]
    fn quantile_of_empty_snapshot_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        for q in [0.0, 0.5, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 0);
        }
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantile_of_single_sample_is_its_bucket_bound_at_every_q() {
        let h = Histogram::default();
        h.record(300); // bucket 9: [256, 512)
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 511, "q={q}");
        }
        // A zero sample reports the exact zero bucket.
        let z = Histogram::default();
        z.record(0);
        assert_eq!(z.snapshot().quantile(0.5), 0);
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        // Ten samples split 5/5 across buckets 1 ({1}) and 2 ({2,3}):
        // the rank-5 sample is the last of bucket 1, rank 6 the first
        // of bucket 2 — q on either side of 0.5 must straddle them.
        let h = Histogram::default();
        for _ in 0..5 {
            h.record(1);
        }
        for _ in 0..5 {
            h.record(2);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1, "rank ceil(0.5·10)=5 stays in bucket 1");
        assert_eq!(s.quantile(0.51), 3, "rank 6 crosses into bucket 2");
        assert_eq!(s.quantile(1.0), 3);
        // q is clamped; out-of-range requests stay well-defined.
        assert_eq!(s.quantile(-1.0), 1, "clamped to q=0 → rank 1");
        assert_eq!(s.quantile(2.0), 3, "clamped to q=1");
    }

    #[test]
    fn quantile_rank_rounds_up_not_down() {
        // 3 samples: q=1/3 must pick rank ceil(1)=1 (the first), while
        // q just above 1/3 picks rank 2.
        let h = Histogram::default();
        for v in [1, 100, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(1.0 / 3.0), 1);
        assert_eq!(s.quantile(0.34), 127, "100 ∈ [64, 128)");
        assert_eq!(s.quantile(0.67), 16_383, "10000 ∈ [8192, 16384)");
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("io.reads");
        let b = r.counter("io.reads");
        a.add(3);
        b.incr();
        assert_eq!(r.counter("io.reads").get(), 4);
        assert_eq!(r.counter_values(), vec![("io.reads", 4)]);

        let g = r.gauge("cache.pages");
        g.set(17);
        assert_eq!(r.gauge("cache.pages").get(), 17);

        let h = r.histogram("lat");
        h.record(9);
        assert_eq!(r.histogram_snapshots()[0].1.count, 1);
    }

    #[test]
    fn lazy_handles_gate_on_enabled() {
        static C: LazyCounter = LazyCounter::new("test.lazy.counter");
        static H: LazyHistogram = LazyHistogram::new("test.lazy.hist");
        let _g = crate::TEST_GATE.lock();
        crate::set_enabled(false);
        C.add(100);
        H.record(1);
        assert!(latency_timer().is_none());
        // Disabled updates register nothing and count nothing.
        assert!(!global().counter_values().iter().any(|(n, _)| *n == "test.lazy.counter"));
        crate::set_enabled(true);
        C.incr();
        C.incr();
        let t = latency_timer();
        assert!(t.is_some());
        H.record_elapsed(t);
        crate::set_enabled(false);
        assert_eq!(global().counter("test.lazy.counter").get(), 2);
        assert_eq!(global().histogram("test.lazy.hist").count(), 1);
    }
}
