//! Aggregation of drained spans into per-phase wall-time totals.
//!
//! The engine's iteration loop opens depth-0 spans whose dotted names
//! start with the phase (`predict`, `rop.row`, `cop.column`, `gather`,
//! `sync`, …). [`aggregate`] sums only depth-0 spans so nested detail
//! spans never double-count, and keeps phases in first-appearance
//! order, which matches execution order within an iteration.
//!
//! Wall time comes from spans; bytes come from the caller: engines that
//! also meter I/O lap an [`PhaseIo`] accumulator at phase boundaries
//! (diffing their `IoTracker` snapshots) and merge the byte totals into
//! the aggregated stats.

use crate::span::SpanEvent;
use serde::{Deserialize, Serialize};

/// Wall time and I/O attributed to one phase of one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Phase name (first segment of the span names rolled up here).
    pub name: String,
    /// Total wall seconds across this phase's depth-0 spans.
    pub wall_seconds: f64,
    /// Number of depth-0 spans rolled up (e.g. ROP rows processed).
    pub count: u64,
    /// Bytes of tracked I/O attributed to the phase (0 when the engine
    /// does not meter I/O per phase).
    pub io_bytes: u64,
}

/// Roll depth-0 spans up into per-phase totals, first-appearance order.
pub fn aggregate(events: &[SpanEvent]) -> Vec<PhaseStat> {
    let mut phases: Vec<PhaseStat> = Vec::new();
    for e in events {
        if e.depth != 0 {
            continue;
        }
        let name = e.phase();
        let wall = e.dur_ns as f64 * 1e-9;
        match phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.wall_seconds += wall;
                p.count += 1;
            }
            None => phases.push(PhaseStat {
                name: name.to_string(),
                wall_seconds: wall,
                count: 1,
                io_bytes: 0,
            }),
        }
    }
    phases
}

/// Sum of phase wall times (for consistency checks against the
/// iteration's own wall clock).
pub fn total_wall_seconds(phases: &[PhaseStat]) -> f64 {
    phases.iter().map(|p| p.wall_seconds).sum()
}

/// Per-phase byte accumulator, lapped by the engine at phase
/// boundaries and merged into the span-derived [`PhaseStat`]s.
#[derive(Debug, Default)]
pub struct PhaseIo {
    entries: Vec<(&'static str, u64)>,
}

impl PhaseIo {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attribute `bytes` to `phase` (summing across laps).
    pub fn add(&mut self, phase: &'static str, bytes: u64) {
        match self.entries.iter_mut().find(|(n, _)| *n == phase) {
            Some((_, b)) => *b += bytes,
            None => self.entries.push((phase, bytes)),
        }
    }

    /// Fold the accumulated bytes into matching phases (by name).
    /// Bytes for a phase with no span are dropped — spans and laps are
    /// expected to bracket the same regions.
    pub fn merge_into(&self, phases: &mut [PhaseStat]) {
        for (name, bytes) in &self.entries {
            if let Some(p) = phases.iter_mut().find(|p| p.name == *name) {
                p.io_bytes += bytes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;

    fn ev(name: &'static str, depth: u16, dur_ns: u64) -> SpanEvent {
        SpanEvent { name, start_ns: 0, dur_ns, depth, field: None }
    }

    #[test]
    fn aggregates_depth_zero_only_in_first_appearance_order() {
        let events = vec![
            ev("predict", 0, 1_000),
            ev("rop.push", 1, 400), // nested: ignored
            ev("rop.row", 0, 2_000),
            ev("rop.row", 0, 3_000),
            ev("sync", 0, 500),
        ];
        let phases = aggregate(&events);
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[0].name, "predict");
        assert!((phases[0].wall_seconds - 1e-6).abs() < 1e-12);
        assert_eq!(phases[0].count, 1);
        assert_eq!(phases[1].name, "rop");
        assert!((phases[1].wall_seconds - 5e-6).abs() < 1e-12);
        assert_eq!(phases[1].count, 2);
        assert_eq!(phases[2].name, "sync");
        assert!((total_wall_seconds(&phases) - 6.5e-6).abs() < 1e-12);
    }

    #[test]
    fn phase_io_merges_by_name_and_sums_laps() {
        let mut phases = aggregate(&[ev("rop.row", 0, 1_000), ev("sync", 0, 100)]);
        let mut io = PhaseIo::new();
        io.add("rop", 4096);
        io.add("rop", 1024);
        io.add("sync", 64);
        io.add("ghost", 7); // no matching phase: dropped
        io.merge_into(&mut phases);
        assert_eq!(phases[0].io_bytes, 5120);
        assert_eq!(phases[1].io_bytes, 64);
    }

    #[test]
    fn phase_stat_serde_roundtrip() {
        let p = PhaseStat { name: "cop".into(), wall_seconds: 0.125, count: 7, io_bytes: 512 };
        let json = serde_json::to_string(&p).unwrap();
        let back: PhaseStat = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
