//! Observability substrate for the HUS-Graph reproduction.
//!
//! Three cooperating pieces:
//!
//! * **Span timers** ([`span!`], [`span::SpanGuard`]) — RAII phase
//!   timers decomposing an engine iteration into predict / rop / cop /
//!   gather / sync. Spans nest, buffer in thread-local storage, and are
//!   drained by the engine once per iteration ([`span::drain`]) into
//!   per-phase aggregates ([`phase::aggregate`]).
//! * **Metric registry** ([`metrics::Registry`]) — named counters,
//!   gauges, and log₂-bucketed histograms backed by atomics, cheap
//!   enough to live on the storage fast path (per-access latency
//!   classes).
//! * **Sinks** — a human-readable aligned table ([`table::Table`], the
//!   renderer the experiment binaries already used) and a JSONL event
//!   stream ([`sink::JsonlSink`]) activated by `HUS_TRACE=path.jsonl`.
//!
//! The whole subsystem is gated on one global flag: when disabled
//! (default), every instrumentation site costs a single relaxed atomic
//! load and branch. [`init_from_env`] flips it on when `HUS_TRACE` is
//! set; engines may also force it per run.
//!
//! Two further telemetry surfaces build on the registry:
//!
//! * **Per-block attribution** ([`attr`]) — a heatmap of raw/encoded/
//!   decoded bytes, cache hits/misses, decode time, retries, and
//!   degradations keyed by edge block `(i, j)`, gated separately by
//!   `HUS_HEATMAP`.
//! * **OpenMetrics export** ([`export`]) — a dependency-free
//!   `/metrics` + `/healthz` HTTP endpoint over the registry, enabled
//!   by `HUS_METRICS_ADDR`.

#![warn(missing_docs)]

pub mod attr;
pub mod env;
pub mod export;
pub mod metrics;
pub mod phase;
pub mod sink;
pub mod span;
pub mod table;

pub use attr::{heatmap_enabled, set_heatmap_enabled, BlockIo, BlockStat};
pub use env::{knob, EnvKnob, KNOBS};
pub use export::MetricsServer;
pub use metrics::{
    latency_timer, Counter, Gauge, Histogram, HistogramSnapshot, LazyCounter, LazyGauge,
    LazyHistogram, Registry,
};
pub use phase::{PhaseIo, PhaseStat};
pub use sink::JsonlSink;
pub use span::SpanEvent;
pub use table::{fmt_gb, fmt_secs, fmt_speedup, Table};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Env var naming the JSONL trace output file.
pub const TRACE_ENV: &str = "HUS_TRACE";

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: OnceLock<()> = OnceLock::new();

/// Whether instrumentation is collecting. The disabled fast path is one
/// relaxed load + branch per site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One-time environment wiring: if `HUS_TRACE` names a file, install a
/// JSONL sink writing there and enable collection; if
/// `HUS_METRICS_ADDR` is set, start the OpenMetrics exporter (which
/// also enables collection); if `HUS_HEATMAP=1`, enable per-block
/// attribution. Idempotent and cheap to call at every engine run.
pub fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        if let Ok(path) = std::env::var(TRACE_ENV) {
            if !path.is_empty() {
                match sink::JsonlSink::create(&path) {
                    Ok(s) => {
                        sink::install_trace(s);
                        set_enabled(true);
                    }
                    Err(e) => eprintln!("warning: {TRACE_ENV}={path}: {e}"),
                }
            }
        }
        if std::env::var(attr::HEATMAP_ENV).is_ok_and(|v| v == "1") {
            attr::set_heatmap_enabled(true);
        }
    });
    export::init_exporter_from_env();
}

/// End-of-iteration hook for engines: drain the spans recorded since
/// the last call, roll depth-0 spans into per-phase wall times, and
/// forward every raw span event to the trace sink (when installed).
/// Returns an empty vector (no drain, no lock) while collection is
/// disabled.
pub fn finish_iteration(engine: &str, iteration: usize) -> Vec<PhaseStat> {
    if !enabled() {
        return Vec::new();
    }
    span::flush_thread();
    let events = span::drain();
    let phases = phase::aggregate(&events);
    if let Some(sink) = sink::trace() {
        for e in &events {
            sink.emit_span(engine, iteration, e);
        }
    }
    phases
}

/// Crate-internal lock serializing tests that touch the process-global
/// enabled flag, span collector, or registry.
#[cfg(test)]
pub(crate) static TEST_GATE: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
