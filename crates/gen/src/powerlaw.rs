//! Chung–Lu expected-degree power-law generator.
//!
//! Draws each vertex an expected degree `w_v ∝ (v+1)^(-1/(γ-1))` and
//! samples edges with probability proportional to `w_u · w_v`, giving a
//! controllable power-law exponent γ. Complements R-MAT: here the target
//! degree sequence is explicit, which the statistics tests use to verify
//! skew claims quantitatively.

use crate::types::{Edge, EdgeList};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate a directed Chung–Lu graph with power-law exponent `gamma`
/// (typically 2.0–3.0; smaller ⇒ more skew) and approximately `num_edges`
/// edges.
pub fn chung_lu(num_vertices: u32, num_edges: usize, gamma: f64, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2);
    assert!(gamma > 1.0, "gamma must exceed 1");
    let n = num_vertices as usize;
    let alpha = 1.0 / (gamma - 1.0);

    // Expected-degree weights w_v = (v+1)^-alpha, and their prefix sums
    // for inverse-CDF sampling.
    let mut cdf = Vec::with_capacity(n + 1);
    cdf.push(0.0f64);
    let mut total = 0.0f64;
    for v in 0..n {
        total += ((v + 1) as f64).powf(-alpha);
        cdf.push(total);
    }

    let sample = |rng: &mut StdRng| -> u32 {
        let r = rng.random::<f64>() * total;
        // binary search for the first cdf[i+1] > r
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cdf[mid + 1] > r {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo as u32
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let src = sample(&mut rng);
        let dst = sample(&mut rng);
        if src != dst {
            edges.push(Edge::new(src, dst));
        }
    }
    EdgeList { num_vertices, edges, weights: None }.dedup()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_graph() {
        let el = chung_lu(500, 3000, 2.2, 4);
        el.validate().unwrap();
        assert!(el.num_edges() > 1000);
        assert!(el.edges.iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn lower_gamma_means_more_skew() {
        let skewed = chung_lu(2000, 30_000, 2.0, 5);
        let flatter = chung_lu(2000, 30_000, 3.5, 5);
        let max_of = |el: &EdgeList| *el.out_degrees().iter().max().unwrap();
        assert!(
            max_of(&skewed) > max_of(&flatter),
            "gamma=2.0 max {} <= gamma=3.5 max {}",
            max_of(&skewed),
            max_of(&flatter)
        );
    }

    #[test]
    fn low_ids_are_hubs() {
        let el = chung_lu(1000, 20_000, 2.1, 6);
        let d = el.out_degrees();
        let head: u64 = d[..10].iter().map(|&x| x as u64).sum();
        let tail: u64 = d[990..].iter().map(|&x| x as u64).sum();
        assert!(head > 5 * tail.max(1), "head {head} tail {tail}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(chung_lu(100, 500, 2.5, 1).edges, chung_lu(100, 500, 2.5, 1).edges);
    }
}
