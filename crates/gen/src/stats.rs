//! Degree statistics and distribution summaries.
//!
//! Used by the Table 2 regenerator to document the synthetic datasets and
//! by tests that assert the generators actually produce the skew the
//! paper's hybrid strategy depends on.

use crate::types::EdgeList;
use serde::{Deserialize, Serialize};

/// Summary statistics of a directed graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: u32,
    /// Edge count.
    pub num_edges: u64,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Largest out-degree.
    pub max_out_degree: u32,
    /// Largest in-degree.
    pub max_in_degree: u32,
    /// Fraction of edges owned by the top 1% of vertices by out-degree.
    pub top1pct_edge_share: f64,
    /// Gini coefficient of the out-degree distribution (0 = uniform,
    /// → 1 = maximally skewed).
    pub degree_gini: f64,
    /// log2-bucketed out-degree histogram: `histogram[k]` counts vertices
    /// with out-degree in `[2^k, 2^(k+1))`; bucket 0 also counts degree-0.
    pub degree_histogram: Vec<u64>,
}

impl GraphStats {
    /// Compute statistics for an edge list.
    pub fn compute(el: &EdgeList) -> Self {
        let out = el.out_degrees();
        let inn = el.in_degrees();
        let n = el.num_vertices.max(1) as f64;
        let m = el.num_edges() as u64;

        let max_out_degree = out.iter().copied().max().unwrap_or(0);
        let max_in_degree = inn.iter().copied().max().unwrap_or(0);

        let mut sorted: Vec<u32> = out.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_k = ((el.num_vertices as usize).div_ceil(100)).max(1);
        let top_sum: u64 = sorted.iter().take(top_k).map(|&d| d as u64).sum();
        let top1pct_edge_share = if m == 0 { 0.0 } else { top_sum as f64 / m as f64 };

        // Gini over the (ascending) degree sequence.
        let mut asc = sorted;
        asc.reverse();
        let total: f64 = asc.iter().map(|&d| d as f64).sum();
        let degree_gini = if total == 0.0 {
            0.0
        } else {
            let weighted: f64 =
                asc.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
            (2.0 * weighted) / (n * total) - (n + 1.0) / n
        };

        let mut degree_histogram = Vec::new();
        for &d in &out {
            let bucket = if d <= 1 { 0 } else { (31 - d.leading_zeros()) as usize };
            if degree_histogram.len() <= bucket {
                degree_histogram.resize(bucket + 1, 0);
            }
            degree_histogram[bucket] += 1;
        }

        GraphStats {
            num_vertices: el.num_vertices,
            num_edges: m,
            avg_degree: m as f64 / n,
            max_out_degree,
            max_in_degree,
            top1pct_edge_share,
            degree_gini,
            degree_histogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{complete, star};
    use crate::rmat::{rmat, RmatConfig};
    use crate::types::EdgeList;

    #[test]
    fn uniform_graph_has_low_gini() {
        let stats = GraphStats::compute(&complete(50));
        assert!(stats.degree_gini.abs() < 0.05, "gini {}", stats.degree_gini);
        assert_eq!(stats.max_out_degree, 49);
        assert_eq!(stats.num_edges, 50 * 49);
    }

    #[test]
    fn star_is_maximally_skewed() {
        let stats = GraphStats::compute(&star(100));
        assert_eq!(stats.max_out_degree, 99);
        assert!(stats.top1pct_edge_share >= 0.5, "{}", stats.top1pct_edge_share);
        assert!(stats.degree_gini > 0.4, "gini {}", stats.degree_gini);
    }

    #[test]
    fn rmat_more_skewed_than_uniform() {
        let r = GraphStats::compute(&rmat(2048, 30_000, 1, RmatConfig::default()));
        let u = GraphStats::compute(&crate::er::erdos_renyi(2048, 30_000, 1));
        assert!(r.degree_gini > u.degree_gini + 0.1, "rmat {} er {}", r.degree_gini, u.degree_gini);
        assert!(r.max_out_degree > u.max_out_degree);
    }

    #[test]
    fn histogram_counts_all_vertices() {
        let el = rmat(1000, 8000, 2, RmatConfig::default());
        let stats = GraphStats::compute(&el);
        let total: u64 = stats.degree_histogram.iter().sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_graph_stats() {
        let stats = GraphStats::compute(&EdgeList::empty(10));
        assert_eq!(stats.num_edges, 0);
        assert_eq!(stats.avg_degree, 0.0);
        assert_eq!(stats.degree_gini, 0.0);
    }
}
