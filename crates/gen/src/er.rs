//! Erdős–Rényi G(n, m) generator.
//!
//! Uniform random graphs have *no* degree skew, which makes them a useful
//! contrast workload: the hybrid strategy's ROP advantage shrinks when
//! active edges are spread evenly (no hot vertices to exploit).

use crate::types::{Edge, EdgeList};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate a directed G(n, m) graph: `num_edges` edges sampled uniformly
/// (self-loops excluded; duplicates excluded when `dedup`).
pub fn erdos_renyi(num_vertices: u32, num_edges: usize, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2, "need at least two vertices to avoid self-loops");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let src = rng.random_range(0..num_vertices);
        let dst = rng.random_range(0..num_vertices);
        if src != dst {
            edges.push(Edge::new(src, dst));
        }
    }
    EdgeList { num_vertices, edges, weights: None }.dedup()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_graph() {
        let el = erdos_renyi(100, 500, 1);
        el.validate().unwrap();
        assert!(el.num_edges() <= 500);
        assert!(el.num_edges() > 400, "dedup removed too many: {}", el.num_edges());
        assert!(el.edges.iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(50, 100, 9).edges, erdos_renyi(50, 100, 9).edges);
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let el = erdos_renyi(1000, 20_000, 2);
        let degrees = el.out_degrees();
        let max = *degrees.iter().max().unwrap();
        let mean = el.num_edges() as f64 / 1000.0;
        // Poisson(20): max degree should stay within a small factor of the
        // mean, unlike R-MAT.
        assert!((max as f64) < mean * 3.5, "max {max} vs mean {mean}");
    }
}
