//! Barabási–Albert preferential-attachment generator.
//!
//! Vertices arrive one at a time and attach `m` out-edges to existing
//! vertices with probability proportional to their current degree,
//! yielding a power law with exponent ≈ 3 by *growth* rather than by
//! construction (unlike Chung–Lu) — the hubs are the oldest vertices, as
//! in real citation/web graphs.

use crate::types::{Edge, EdgeList};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate a Barabási–Albert graph: `n` vertices, each newcomer
/// attaching to `m` distinct existing vertices by preferential
/// attachment (the first `m + 1` vertices form a seed clique).
pub fn barabasi_albert(n: u32, m: u32, seed: u64) -> EdgeList {
    assert!(m >= 1, "need at least one attachment per vertex");
    assert!(n > m, "need more vertices than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity((n as usize) * m as usize);
    // The repeated-endpoints trick: sampling a uniform endpoint of the
    // edge multiset IS degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * (n as usize) * m as usize);

    // Seed: a small clique over vertices 0..=m.
    for u in 0..=m {
        for v in 0..=m {
            if u != v {
                edges.push(Edge::new(u, v));
                endpoints.push(u);
                endpoints.push(v);
            }
        }
    }

    for v in m + 1..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m as usize);
        while chosen.len() < m as usize {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push(Edge::new(v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    EdgeList { num_vertices: n, edges, weights: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_is_clique_plus_growth() {
        let el = barabasi_albert(100, 3, 1);
        let clique = 4 * 3; // (m+1) * m directed edges
        let growth = (100 - 4) * 3;
        assert_eq!(el.num_edges(), clique + growth);
        el.validate().unwrap();
    }

    #[test]
    fn early_vertices_become_hubs() {
        let el = barabasi_albert(2000, 2, 2);
        let inn = el.in_degrees();
        let early: u64 = inn[..20].iter().map(|&d| d as u64).sum();
        let late: u64 = inn[1980..].iter().map(|&d| d as u64).sum();
        assert!(early > 10 * late.max(1), "early {early} vs late {late}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let el = barabasi_albert(3000, 2, 3);
        let stats = crate::stats::GraphStats::compute(&el);
        // In-degree hubs exist...
        assert!(stats.max_in_degree > 50, "max in-degree {}", stats.max_in_degree);
        // ...while out-degree is nearly constant (m per newcomer).
        assert!(stats.max_out_degree <= 6);
    }

    #[test]
    fn attachments_are_distinct_and_loop_free() {
        let el = barabasi_albert(300, 4, 4);
        assert!(el.edges.iter().all(|e| e.src != e.dst));
        // No duplicate out-edges per newcomer.
        let mut sorted = el.edges.clone();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(200, 2, 9).edges, barabasi_albert(200, 2, 9).edges);
    }
}
