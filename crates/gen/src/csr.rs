//! In-memory compressed sparse row representation.
//!
//! Used by the reference (in-memory) algorithm implementations that the
//! out-of-core engines are validated against, and by generators/statistics
//! that need fast adjacency access. The out-of-core engines never build a
//! whole-graph CSR — that is the point of the paper — but its *per-block*
//! indices follow the same layout.

use crate::types::{Edge, EdgeList, VertexId};

/// Compressed sparse row adjacency with both directions and optional
/// out-edge weights.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Number of vertices.
    pub num_vertices: u32,
    /// `out_offsets[v]..out_offsets[v+1]` indexes `out_targets` for `v`'s
    /// out-neighbors.
    pub out_offsets: Vec<u64>,
    /// Destination of every out-edge, grouped by source.
    pub out_targets: Vec<VertexId>,
    /// Weight of every out-edge, parallel to `out_targets` (empty when
    /// unweighted).
    pub out_weights: Vec<f32>,
    /// `in_offsets[v]..in_offsets[v+1]` indexes `in_sources` for `v`'s
    /// in-neighbors.
    pub in_offsets: Vec<u64>,
    /// Source of every in-edge, grouped by destination.
    pub in_sources: Vec<VertexId>,
    /// Weight of every in-edge, parallel to `in_sources` (empty when
    /// unweighted).
    pub in_weights: Vec<f32>,
}

impl Csr {
    /// Build both adjacency directions from an edge list (counting sort,
    /// O(V + E)).
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let n = el.num_vertices as usize;
        let m = el.edges.len();
        let weighted = el.is_weighted();

        let mut out_offsets = vec![0u64; n + 1];
        let mut in_offsets = vec![0u64; n + 1];
        for e in &el.edges {
            out_offsets[e.src as usize + 1] += 1;
            in_offsets[e.dst as usize + 1] += 1;
        }
        for v in 0..n {
            out_offsets[v + 1] += out_offsets[v];
            in_offsets[v + 1] += in_offsets[v];
        }

        let mut out_targets = vec![0 as VertexId; m];
        let mut in_sources = vec![0 as VertexId; m];
        let mut out_weights = if weighted { vec![0.0f32; m] } else { Vec::new() };
        let mut in_weights = if weighted { vec![0.0f32; m] } else { Vec::new() };
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for (i, e) in el.edges.iter().enumerate() {
            let oc = &mut out_cursor[e.src as usize];
            out_targets[*oc as usize] = e.dst;
            if weighted {
                out_weights[*oc as usize] = el.weights.as_ref().unwrap()[i];
            }
            *oc += 1;
            let ic = &mut in_cursor[e.dst as usize];
            in_sources[*ic as usize] = e.src;
            if weighted {
                in_weights[*ic as usize] = el.weights.as_ref().unwrap()[i];
            }
            *ic += 1;
        }

        Csr {
            num_vertices: el.num_vertices,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Whether edges carry weights.
    pub fn is_weighted(&self) -> bool {
        !self.out_weights.is_empty()
    }

    /// Out-neighbors of `v`.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let s = self.out_offsets[v as usize] as usize;
        let e = self.out_offsets[v as usize + 1] as usize;
        &self.out_targets[s..e]
    }

    /// Out-edge weights of `v` (empty slice when unweighted).
    pub fn out_edge_weights(&self, v: VertexId) -> &[f32] {
        if !self.is_weighted() {
            return &[];
        }
        let s = self.out_offsets[v as usize] as usize;
        let e = self.out_offsets[v as usize + 1] as usize;
        &self.out_weights[s..e]
    }

    /// In-neighbors of `v`.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let s = self.in_offsets[v as usize] as usize;
        let e = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[s..e]
    }

    /// In-edge weights of `v` (empty slice when unweighted).
    pub fn in_edge_weights(&self, v: VertexId) -> &[f32] {
        if !self.is_weighted() {
            return &[];
        }
        let s = self.in_offsets[v as usize] as usize;
        let e = self.in_offsets[v as usize + 1] as usize;
        &self.in_weights[s..e]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as u32
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> u32 {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as u32
    }

    /// Reconstruct the edge list (out-direction order).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.num_edges());
        let mut weights = self.is_weighted().then(|| Vec::with_capacity(self.num_edges()));
        for v in 0..self.num_vertices {
            for (i, &d) in self.out_neighbors(v).iter().enumerate() {
                edges.push(Edge::new(v, d));
                if let Some(w) = &mut weights {
                    w.push(self.out_edge_weights(v)[i]);
                }
            }
        }
        EdgeList { num_vertices: self.num_vertices, edges, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> EdgeList {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        EdgeList::from_pairs([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn builds_both_directions() {
        let csr = Csr::from_edge_list(&diamond());
        assert_eq!(csr.out_neighbors(0), &[1, 2]);
        assert_eq!(csr.out_neighbors(3), &[] as &[u32]);
        assert_eq!(csr.in_neighbors(3), &[1, 2]);
        assert_eq!(csr.in_neighbors(0), &[] as &[u32]);
        assert_eq!(csr.out_degree(0), 2);
        assert_eq!(csr.in_degree(3), 2);
        assert_eq!(csr.num_edges(), 4);
    }

    #[test]
    fn weighted_roundtrip() {
        let el = diamond().with_hash_weights(1.0, 9.0);
        let csr = Csr::from_edge_list(&el);
        assert!(csr.is_weighted());
        let back = csr.to_edge_list();
        // Same multiset of (edge, weight) pairs.
        let mut a: Vec<(Edge, u32)> = el
            .edges
            .iter()
            .zip(el.weights.as_ref().unwrap())
            .map(|(e, w)| (*e, w.to_bits()))
            .collect();
        let mut b: Vec<(Edge, u32)> = back
            .edges
            .iter()
            .zip(back.weights.as_ref().unwrap())
            .map(|(e, w)| (*e, w.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edge_list(&EdgeList::empty(5));
        assert_eq!(csr.num_edges(), 0);
        for v in 0..5 {
            assert_eq!(csr.out_degree(v), 0);
            assert_eq!(csr.in_degree(v), 0);
        }
    }

    #[test]
    fn unweighted_weight_slices_empty() {
        let csr = Csr::from_edge_list(&diamond());
        assert!(!csr.is_weighted());
        assert!(csr.out_edge_weights(0).is_empty());
        assert!(csr.in_edge_weights(3).is_empty());
    }

    #[test]
    fn edge_order_within_vertex_preserved() {
        let el = EdgeList::from_pairs([(0, 5), (0, 2), (0, 9)]);
        let csr = Csr::from_edge_list(&el);
        assert_eq!(csr.out_neighbors(0), &[5, 2, 9]);
    }
}
