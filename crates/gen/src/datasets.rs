//! Dataset presets mirroring Table 2 of the paper.
//!
//! | Paper dataset | Vertices | Edges | Type |
//! |---|---|---|---|
//! | LiveJournal | 4.8 M | 69 M | social |
//! | Twitter2010 | 42 M | 1.5 B | social |
//! | SK2005 | 51 M | 1.9 B | social |
//! | UK2007 | 106 M | 3.7 B | web |
//! | UKunion | 133 M | 5.5 B | web |
//!
//! Each preset generates an R-MAT graph with the same vertex:edge ratio,
//! scaled down by a configurable divisor (default 1000, env `HUS_SCALE`).
//! Social presets use the Graph500 parameter mix; web presets use a
//! higher-locality mix that yields larger diameters, matching the paper's
//! observation about UK2007/UKunion (§4.1).

use crate::rmat::{rmat, RmatConfig};
use crate::types::EdgeList;
use serde::{Deserialize, Serialize};

/// The five evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// LiveJournal social network (4.8M / 69M).
    LiveJournal,
    /// Twitter follower graph, 2010 crawl (42M / 1.5B).
    Twitter2010,
    /// SK 2005 host-level web/social graph (51M / 1.9B).
    Sk2005,
    /// UK 2007 web crawl (106M / 3.7B).
    Uk2007,
    /// Union of UK crawls 2006–2007 (133M / 5.5B).
    UkUnion,
}

impl Dataset {
    /// All presets, in the paper's Table 2 order.
    pub const ALL: [Dataset; 5] = [
        Dataset::LiveJournal,
        Dataset::Twitter2010,
        Dataset::Sk2005,
        Dataset::Uk2007,
        Dataset::UkUnion,
    ];

    /// The preset's generation spec.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::LiveJournal => DatasetSpec {
                name: "LiveJournal",
                base_vertices: 4_800_000,
                base_edges: 69_000_000,
                web_like: false,
                seed: 0x11,
            },
            Dataset::Twitter2010 => DatasetSpec {
                name: "Twitter2010",
                base_vertices: 42_000_000,
                base_edges: 1_500_000_000,
                web_like: false,
                seed: 0x22,
            },
            Dataset::Sk2005 => DatasetSpec {
                name: "SK2005",
                base_vertices: 51_000_000,
                base_edges: 1_900_000_000,
                web_like: false,
                seed: 0x33,
            },
            Dataset::Uk2007 => DatasetSpec {
                name: "UK2007",
                base_vertices: 106_000_000,
                base_edges: 3_700_000_000,
                web_like: true,
                seed: 0x44,
            },
            Dataset::UkUnion => DatasetSpec {
                name: "UKunion",
                base_vertices: 133_000_000,
                base_edges: 5_500_000_000,
                web_like: true,
                seed: 0x55,
            },
        }
    }

    /// Generate the preset at the scale from `HUS_SCALE` (default 1000).
    pub fn generate(self) -> EdgeList {
        self.spec().generate(env_scale())
    }

    /// Generate the preset with an explicit scale divisor.
    pub fn generate_at_scale(self, scale: f64) -> EdgeList {
        self.spec().generate(scale)
    }

    /// Preset name as in the paper.
    pub fn name(self) -> &'static str {
        self.spec().name
    }
}

/// Scale divisor from the `HUS_SCALE` env var (default 1000.0).
pub fn env_scale() -> f64 {
    std::env::var("HUS_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s >= 1.0)
        .unwrap_or(1000.0)
}

/// Generation spec for one dataset preset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Paper name of the dataset.
    pub name: &'static str,
    /// Paper vertex count.
    pub base_vertices: u64,
    /// Paper edge count.
    pub base_edges: u64,
    /// Use web-graph R-MAT parameters (larger diameter).
    pub web_like: bool,
    /// Generation seed (per-dataset, so presets differ).
    pub seed: u64,
}

impl DatasetSpec {
    /// Vertex count after dividing by `scale`.
    pub fn scaled_vertices(&self, scale: f64) -> u32 {
        ((self.base_vertices as f64 / scale).ceil() as u64).clamp(16, u32::MAX as u64) as u32
    }

    /// Edge count after dividing by `scale`.
    pub fn scaled_edges(&self, scale: f64) -> usize {
        ((self.base_edges as f64 / scale).ceil() as usize).max(32)
    }

    /// Generate the R-MAT graph at the given scale divisor.
    pub fn generate(&self, scale: f64) -> EdgeList {
        let config = if self.web_like { RmatConfig::web() } else { RmatConfig::default() };
        rmat(self.scaled_vertices(scale), self.scaled_edges(scale), self.seed, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_paper() {
        for d in Dataset::ALL {
            let s = d.spec();
            let paper_ratio = s.base_edges as f64 / s.base_vertices as f64;
            let scaled_ratio = s.scaled_edges(1000.0) as f64 / s.scaled_vertices(1000.0) as f64;
            assert!(
                (paper_ratio - scaled_ratio).abs() / paper_ratio < 0.01,
                "{}: paper {paper_ratio:.1} vs scaled {scaled_ratio:.1}",
                s.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let a = Dataset::LiveJournal.generate_at_scale(10_000.0);
        let b = Dataset::LiveJournal.generate_at_scale(10_000.0);
        assert_eq!(a.edges, b.edges);
        a.validate().unwrap();
        assert!(a.num_edges() > 1000);
    }

    #[test]
    fn presets_differ() {
        let lj = Dataset::LiveJournal.generate_at_scale(50_000.0);
        let tw = Dataset::Twitter2010.generate_at_scale(50_000.0);
        assert_ne!(lj.edges, tw.edges);
    }

    #[test]
    fn ordering_matches_paper_sizes() {
        // UKunion is the largest, LiveJournal the smallest, at any scale.
        let sizes: Vec<u64> = Dataset::ALL.iter().map(|d| d.spec().base_edges).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn scale_floor_prevents_degenerate_graphs() {
        let s = Dataset::LiveJournal.spec();
        assert!(s.scaled_vertices(1e12) >= 16);
        assert!(s.scaled_edges(1e12) >= 32);
    }
}
