//! Watts–Strogatz small-world generator.
//!
//! A ring lattice (each vertex connected to its `k` nearest neighbors)
//! with every edge rewired to a random endpoint with probability `beta`.
//! Low `beta` gives high-diameter, high-locality graphs — mesh/road-like
//! workloads where frontiers stay narrow for hundreds of iterations, the
//! regime that maximally favors selective (ROP) access.

use crate::types::{Edge, EdgeList};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate a directed Watts–Strogatz graph: `n` vertices around a ring,
/// each with edges to its `k` clockwise neighbors, each edge rewired
/// with probability `beta` to a uniform random target.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> EdgeList {
    assert!(n >= 4, "ring needs at least 4 vertices");
    assert!(k >= 1 && k < n / 2, "k must be in [1, n/2)");
    assert!((0.0..=1.0).contains(&beta), "beta is a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity((n * k) as usize);
    for v in 0..n {
        for hop in 1..=k {
            let neighbor = (v + hop) % n;
            let dst = if rng.random::<f64>() < beta {
                // Rewire: any vertex except v itself.
                let mut t = rng.random_range(0..n - 1);
                if t >= v {
                    t += 1;
                }
                t
            } else {
                neighbor
            };
            edges.push(Edge::new(v, dst));
        }
    }
    EdgeList { num_vertices: n, edges, weights: None }.dedup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn zero_beta_is_a_pure_ring_lattice() {
        let el = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(el.num_edges(), 40);
        let csr = Csr::from_edge_list(&el);
        for v in 0..20u32 {
            let mut want = vec![(v + 1) % 20, (v + 2) % 20];
            let mut got = csr.out_neighbors(v).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "vertex {v}");
        }
    }

    #[test]
    fn full_rewiring_destroys_the_lattice() {
        let el = watts_strogatz(500, 3, 1.0, 2);
        let lattice_edges = el
            .edges
            .iter()
            .filter(|e| {
                let d = (e.dst + 500 - e.src) % 500;
                (1..=3).contains(&d)
            })
            .count();
        // At beta=1 only ~3/500 of targets land on lattice positions by
        // chance.
        assert!(lattice_edges < el.num_edges() / 10, "{lattice_edges} lattice edges remain");
    }

    #[test]
    fn low_beta_keeps_high_diameter() {
        use crate::types::EdgeList;
        fn depth(el: &EdgeList) -> u32 {
            // simple BFS depth from 0
            let csr = Csr::from_edge_list(el);
            let mut level = vec![u32::MAX; el.num_vertices as usize];
            level[0] = 0;
            let mut q = std::collections::VecDeque::from([0u32]);
            let mut max = 0;
            while let Some(v) = q.pop_front() {
                for &w in csr.out_neighbors(v) {
                    if level[w as usize] == u32::MAX {
                        level[w as usize] = level[v as usize] + 1;
                        max = max.max(level[w as usize]);
                        q.push_back(w);
                    }
                }
            }
            max
        }
        let local = depth(&watts_strogatz(600, 2, 0.01, 3));
        let shortcut = depth(&watts_strogatz(600, 2, 0.5, 3));
        assert!(local > 2 * shortcut, "local {local} vs shortcut {shortcut}");
    }

    #[test]
    fn deterministic_and_loop_free() {
        let a = watts_strogatz(100, 3, 0.2, 7);
        let b = watts_strogatz(100, 3, 0.2, 7);
        assert_eq!(a.edges, b.edges);
        assert!(a.edges.iter().all(|e| e.src != e.dst));
        a.validate().unwrap();
    }
}
