//! R-MAT (recursive matrix) graph generator.
//!
//! R-MAT produces the skewed, power-law-ish degree distributions of social
//! and web graphs — the property HUS-Graph's hybrid strategy exploits
//! (a handful of hot vertices account for most active edges). The paper's
//! five datasets are all such graphs; see `datasets` for the presets that
//! stand in for them.

use crate::types::{Edge, EdgeList};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// R-MAT generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// Quadrant probability a (top-left). Larger `a` ⇒ stronger skew.
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// Per-level probability noise, which prevents exact self-similarity
    /// artifacts (as in Graph500's generator).
    pub noise: f64,
    /// Remove self-loops and duplicate edges after generation.
    pub dedup: bool,
}

impl Default for RmatConfig {
    fn default() -> Self {
        // Graph500 / social-network standard parameters.
        RmatConfig { a: 0.57, b: 0.19, c: 0.19, noise: 0.1, dedup: true }
    }
}

impl RmatConfig {
    /// Parameters tuned toward web-graph structure: stronger diagonal
    /// locality, producing larger effective diameters (the paper notes
    /// UK2007/UKunion have "larger diameters than social graphs", §4.1).
    pub fn web() -> Self {
        RmatConfig { a: 0.65, b: 0.15, c: 0.15, noise: 0.05, dedup: true }
    }

    /// Quadrant probability d (bottom-right), derived.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate a directed R-MAT graph with `num_vertices` vertices (rounded
/// up to a power of two internally, then clipped) and approximately
/// `num_edges` edges.
///
/// ```
/// let el = hus_gen::rmat(1_000, 5_000, 42, Default::default());
/// assert_eq!(el.num_vertices, 1_000);
/// assert!(el.num_edges() > 3_000); // dedup removes some duplicates
/// el.validate().unwrap();
/// ```
pub fn rmat(num_vertices: u32, num_edges: usize, seed: u64, config: RmatConfig) -> EdgeList {
    assert!(num_vertices > 0, "need at least one vertex");
    assert!(config.d() >= -1e-9, "quadrant probabilities exceed 1: {config:?}");
    let levels = 32 - (num_vertices - 1).leading_zeros().min(31);
    let levels = levels.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let (src, dst) = sample_cell(&mut rng, levels, &config);
        // Clip to the requested vertex count (keeps skew, avoids padding
        // the id space to a power of two).
        if src < num_vertices && dst < num_vertices {
            edges.push(Edge::new(src, dst));
        }
    }
    let el = EdgeList { num_vertices, edges, weights: None };
    if config.dedup {
        el.dedup()
    } else {
        el
    }
}

fn sample_cell(rng: &mut StdRng, levels: u32, config: &RmatConfig) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..levels {
        src <<= 1;
        dst <<= 1;
        // Jitter the quadrant probabilities per level.
        let mut jitter = |p: f64| {
            let f = 1.0 + config.noise * (rng.random::<f64>() - 0.5);
            p * f
        };
        let a = jitter(config.a);
        let b = jitter(config.b);
        let c = jitter(config.c);
        let d = jitter(config.d().max(0.0));
        let total = a + b + c + d;
        let r = rng.random::<f64>() * total;
        if r < a {
            // top-left: neither bit set
        } else if r < a + b {
            dst |= 1;
        } else if r < a + b + c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let el = rmat(1000, 5000, 42, RmatConfig { dedup: false, ..Default::default() });
        assert_eq!(el.num_vertices, 1000);
        assert_eq!(el.num_edges(), 5000);
        el.validate().unwrap();
    }

    #[test]
    fn deterministic_for_seed() {
        let a = rmat(500, 2000, 7, RmatConfig::default());
        let b = rmat(500, 2000, 7, RmatConfig::default());
        assert_eq!(a.edges, b.edges);
        let c = rmat(500, 2000, 8, RmatConfig::default());
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn dedup_removes_loops() {
        let el = rmat(256, 4000, 1, RmatConfig::default());
        assert!(el.edges.iter().all(|e| e.src != e.dst));
        let mut sorted = el.edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), el.edges.len(), "duplicates survived dedup");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Power-law-ish: the top 1% of vertices should own far more than
        // 1% of the edges.
        let el = rmat(4096, 60_000, 3, RmatConfig { dedup: false, ..Default::default() });
        let mut degrees = el.out_degrees();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = degrees.iter().take(41).map(|&d| d as u64).sum::<u64>();
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();
        assert!(
            top as f64 > 0.10 * total as f64,
            "top-1% vertices own only {top}/{total} edges — not skewed"
        );
    }

    #[test]
    fn non_power_of_two_vertex_counts() {
        let el = rmat(1000, 3000, 11, RmatConfig::default());
        assert!(el.edges.iter().all(|e| e.src < 1000 && e.dst < 1000));
    }

    #[test]
    fn single_vertex_graph() {
        // Only possible edges are self-loops; dedup leaves nothing, so use
        // dedup=false and verify clipping works.
        let el = rmat(1, 10, 5, RmatConfig { dedup: false, ..Default::default() });
        assert!(el.edges.iter().all(|e| e.src == 0 && e.dst == 0));
    }
}
