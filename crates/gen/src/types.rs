//! Core graph data model shared by all engines.

use hus_storage::pod::Pod;
use serde::{Deserialize, Serialize};

/// Vertex identifier. 32 bits covers the paper's largest graph (UKunion,
/// 133M vertices) with room to spare, and keeps edge records at 8 bytes —
/// the `M` of the paper's cost model.
pub type VertexId = u32;

/// A directed edge `src -> dst`.
///
/// `#[repr(C)]` with two `u32` fields: no padding, so it is [`Pod`] and is
/// stored on disk as 8 raw little-endian bytes.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

// SAFETY: #[repr(C)] struct of two u32: size 8 = 4+4 (no padding), any bit
// pattern valid, no pointers.
unsafe impl Pod for Edge {}

impl Edge {
    /// Construct an edge.
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// The same edge with endpoints swapped.
    pub fn reversed(&self) -> Self {
        Edge { src: self.dst, dst: self.src }
    }
}

/// An in-memory edge list with optional per-edge weights.
///
/// This is the interchange format between generators, file I/O, and the
/// on-disk representation builders. `weights`, when present, is parallel
/// to `edges` (same length, same order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeList {
    /// Number of vertices; all edge endpoints are `< num_vertices`.
    pub num_vertices: u32,
    /// The directed edges.
    pub edges: Vec<Edge>,
    /// Optional weights parallel to `edges`.
    pub weights: Option<Vec<f32>>,
}

impl EdgeList {
    /// An edge list over `num_vertices` vertices with no edges.
    pub fn empty(num_vertices: u32) -> Self {
        EdgeList { num_vertices, edges: Vec::new(), weights: None }
    }

    /// Build from raw `(src, dst)` pairs, inferring `num_vertices` as
    /// `max endpoint + 1`.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let edges: Vec<Edge> = pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect();
        let num_vertices = edges.iter().map(|e| e.src.max(e.dst) + 1).max().unwrap_or(0);
        EdgeList { num_vertices, edges, weights: None }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list carries weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Attach deterministic pseudo-random weights in `[min, max)` derived
    /// from each edge's endpoints (stable across runs and platforms).
    pub fn with_hash_weights(mut self, min: f32, max: f32) -> Self {
        assert!(max > min, "weight range must be non-empty");
        let span = max - min;
        let weights = self
            .edges
            .iter()
            .map(|e| {
                let h = splitmix64(((e.src as u64) << 32) | e.dst as u64);
                // take 24 bits for a uniform float in [0,1)
                let unit = (h >> 40) as f32 / (1u64 << 24) as f32;
                min + unit * span
            })
            .collect();
        self.weights = Some(weights);
        self
    }

    /// Make the graph undirected by adding the reverse of every edge
    /// (the paper's convention: "undirected graph is supported by adding
    /// two opposite edges", §3.1). Weights are duplicated.
    pub fn symmetrize(mut self) -> Self {
        let n = self.edges.len();
        self.edges.reserve(n);
        for i in 0..n {
            let rev = self.edges[i].reversed();
            self.edges.push(rev);
        }
        if let Some(w) = &mut self.weights {
            w.extend_from_within(0..n);
        }
        self
    }

    /// Remove self-loops and duplicate edges (keeping the first
    /// occurrence of each `(src,dst)` pair and its weight).
    pub fn dedup(mut self) -> Self {
        let mut order: Vec<u32> = (0..self.edges.len() as u32).collect();
        let edges = &self.edges;
        order.sort_unstable_by_key(|&i| (edges[i as usize], i));
        let mut keep = vec![false; self.edges.len()];
        let mut prev: Option<Edge> = None;
        for &i in &order {
            let e = self.edges[i as usize];
            if e.src == e.dst {
                continue;
            }
            if prev != Some(e) {
                keep[i as usize] = true;
                prev = Some(e);
            }
        }
        let mut w_iter = self.weights.take().map(|w| w.into_iter());
        let mut new_edges = Vec::new();
        let mut new_weights = w_iter.is_some().then(Vec::new);
        for (i, e) in self.edges.iter().enumerate() {
            let w = w_iter.as_mut().map(|it| it.next().expect("weights parallel to edges"));
            if keep[i] {
                new_edges.push(*e);
                if let (Some(nw), Some(w)) = (&mut new_weights, w) {
                    nw.push(w);
                }
            }
        }
        self.edges = new_edges;
        self.weights = new_weights;
        self
    }

    /// Relabel vertices with a pseudo-random permutation derived from
    /// `seed` (Fisher–Yates over [`splitmix64`] draws). The structure is
    /// unchanged; only ids move. Useful to strip accidental id-order
    /// locality from synthetic generators — real datasets are rarely
    /// labeled in traversal order.
    pub fn relabel(mut self, seed: u64) -> Self {
        let n = self.num_vertices as usize;
        let mut perm: Vec<u32> = (0..self.num_vertices).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = splitmix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        for e in &mut self.edges {
            e.src = perm[e.src as usize];
            e.dst = perm[e.dst as usize];
        }
        self
    }

    /// Panic-on-failure validation: all endpoints in range, weights
    /// parallel. Used by tests and builders in debug paths.
    pub fn validate(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.src >= self.num_vertices || e.dst >= self.num_vertices {
                return Err(format!(
                    "edge #{i} ({} -> {}) out of range for {} vertices",
                    e.src, e.dst, self.num_vertices
                ));
            }
        }
        if let Some(w) = &self.weights {
            if w.len() != self.edges.len() {
                return Err(format!(
                    "weights length {} does not match edge count {}",
                    w.len(),
                    self.edges.len()
                ));
            }
        }
        Ok(())
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            d[e.src as usize] += 1;
        }
        d
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            d[e.dst as usize] += 1;
        }
        d
    }
}

/// SplitMix64 — tiny, high-quality 64-bit mixer used for deterministic
/// hash-derived weights and sampling decisions.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_8_bytes() {
        assert_eq!(std::mem::size_of::<Edge>(), 8);
        assert_eq!(std::mem::align_of::<Edge>(), 4);
    }

    #[test]
    fn from_pairs_infers_vertex_count() {
        let el = EdgeList::from_pairs([(0, 3), (2, 1)]);
        assert_eq!(el.num_vertices, 4);
        assert_eq!(el.num_edges(), 2);
        el.validate().unwrap();
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let el = EdgeList::from_pairs([(0, 1), (1, 2)]).with_hash_weights(1.0, 2.0).symmetrize();
        assert_eq!(el.num_edges(), 4);
        assert_eq!(el.edges[2], Edge::new(1, 0));
        assert_eq!(el.edges[3], Edge::new(2, 1));
        let w = el.weights.unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], w[2]);
        assert_eq!(w[1], w[3]);
    }

    #[test]
    fn dedup_removes_loops_and_duplicates() {
        let el = EdgeList::from_pairs([(0, 1), (1, 1), (0, 1), (2, 0), (0, 1)]).dedup();
        assert_eq!(el.edges, vec![Edge::new(0, 1), Edge::new(2, 0)]);
    }

    #[test]
    fn dedup_keeps_first_weight() {
        let mut el = EdgeList::from_pairs([(0, 1), (0, 1), (1, 2)]);
        el.weights = Some(vec![10.0, 20.0, 30.0]);
        let el = el.dedup();
        assert_eq!(el.edges.len(), 2);
        assert_eq!(el.weights.unwrap(), vec![10.0, 30.0]);
    }

    #[test]
    fn degrees() {
        let el = EdgeList::from_pairs([(0, 1), (0, 2), (2, 1)]);
        assert_eq!(el.out_degrees(), vec![2, 0, 1]);
        assert_eq!(el.in_degrees(), vec![0, 2, 1]);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut el = EdgeList::from_pairs([(0, 1)]);
        el.num_vertices = 1;
        assert!(el.validate().is_err());
    }

    #[test]
    fn validate_catches_weight_mismatch() {
        let mut el = EdgeList::from_pairs([(0, 1), (1, 0)]);
        el.weights = Some(vec![1.0]);
        assert!(el.validate().is_err());
    }

    #[test]
    fn hash_weights_in_range_and_deterministic() {
        let el1 = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3)]).with_hash_weights(1.0, 5.0);
        let el2 = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3)]).with_hash_weights(1.0, 5.0);
        let w1 = el1.weights.unwrap();
        assert_eq!(w1, el2.weights.unwrap());
        assert!(w1.iter().all(|&w| (1.0..5.0).contains(&w)));
    }

    #[test]
    fn relabel_preserves_structure() {
        let el = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = el.clone().relabel(9);
        r.validate().unwrap();
        assert_eq!(r.num_edges(), el.num_edges());
        // Degree multiset is preserved.
        let mut a = el.out_degrees();
        let mut b = r.out_degrees();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // And it actually moved ids (overwhelmingly likely).
        assert_ne!(r.edges, el.edges);
        // Same permutation twice = same result.
        assert_eq!(el.clone().relabel(9).edges, r.edges);
    }

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the public-domain splitmix64 definition.
        assert_eq!(splitmix64(0), 0xE220A8397B1DCDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
