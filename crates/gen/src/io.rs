//! Edge-list file I/O: a small binary format plus a whitespace text
//! parser (the formats real datasets like SNAP's LiveJournal ship in).

use crate::types::{Edge, EdgeList};
use hus_storage::pod;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the binary edge-list format.
pub const MAGIC: [u8; 4] = *b"HUSG";
/// Current format version.
pub const VERSION: u32 = 1;

/// Write an edge list in the binary format:
/// `MAGIC, version: u32, num_vertices: u32, flags: u32 (bit0 = weighted),
/// num_edges: u64, edges: [Edge], weights: [f32]` (all little-endian).
pub fn write_binary(el: &EdgeList, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&el.num_vertices.to_le_bytes())?;
    let flags: u32 = if el.is_weighted() { 1 } else { 0 };
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&(el.edges.len() as u64).to_le_bytes())?;
    w.write_all(pod::as_bytes(&el.edges))?;
    if let Some(weights) = &el.weights {
        w.write_all(pod::as_bytes(weights))?;
    }
    w.flush()
}

/// Read an edge list written by [`write_binary`].
pub fn read_binary(path: impl AsRef<Path>) -> io::Result<EdgeList> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let num_vertices = read_u32(&mut r)?;
    let flags = read_u32(&mut r)?;
    let num_edges = read_u64(&mut r)? as usize;
    let mut edges = vec![Edge::new(0, 0); num_edges];
    r.read_exact(pod::as_bytes_mut(&mut edges))?;
    let weights = if flags & 1 != 0 {
        let mut w = vec![0.0f32; num_edges];
        r.read_exact(pod::as_bytes_mut(&mut w))?;
        Some(w)
    } else {
        None
    };
    let el = EdgeList { num_vertices, edges, weights };
    el.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(el)
}

/// Parse a whitespace-separated text edge list: one `src dst [weight]`
/// per line; lines starting with `#` or `%` are comments.
pub fn read_text(path: impl AsRef<Path>) -> io::Result<EdgeList> {
    parse_text(BufReader::new(File::open(path)?))
}

/// Parse edge-list text from any reader (see [`read_text`]).
pub fn parse_text(reader: impl BufRead) -> io::Result<EdgeList> {
    let mut edges = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    let mut any_weight = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {what}: {trimmed:?}", lineno + 1),
            )
        };
        let src: u32 =
            parts.next().ok_or_else(|| bad("missing src"))?.parse().map_err(|_| bad("bad src"))?;
        let dst: u32 =
            parts.next().ok_or_else(|| bad("missing dst"))?.parse().map_err(|_| bad("bad dst"))?;
        let w: Option<f32> = match parts.next() {
            Some(tok) => Some(tok.parse().map_err(|_| bad("bad weight"))?),
            None => None,
        };
        edges.push(Edge::new(src, dst));
        match w {
            Some(w) => {
                any_weight = true;
                weights.push(w);
            }
            None => weights.push(1.0),
        }
    }
    let num_vertices = edges.iter().map(|e| e.src.max(e.dst) + 1).max().unwrap_or(0);
    Ok(EdgeList { num_vertices, edges, weights: any_weight.then_some(weights) })
}

/// Write an edge list as text (`src dst [weight]` per line).
pub fn write_text(el: &EdgeList, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for (i, e) in el.edges.iter().enumerate() {
        match &el.weights {
            Some(weights) => writeln!(w, "{} {} {}", e.src, e.dst, weights[i])?,
            None => writeln!(w, "{} {}", e.src, e.dst)?,
        }
    }
    w.flush()
}

/// Header of a binary edge-list file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryHeader {
    /// Vertex count.
    pub num_vertices: u32,
    /// Edge count.
    pub num_edges: u64,
    /// Whether per-edge weights follow the edge array.
    pub weighted: bool,
}

/// Byte size of the fixed header.
pub const HEADER_BYTES: u64 = 24;

/// Read just the header of a binary edge-list file.
pub fn read_binary_header(path: impl AsRef<Path>) -> io::Result<BinaryHeader> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let num_vertices = read_u32(&mut r)?;
    let flags = read_u32(&mut r)?;
    let num_edges = read_u64(&mut r)?;
    Ok(BinaryHeader { num_vertices, num_edges, weighted: flags & 1 != 0 })
}

/// A buffered streaming iterator over a binary edge-list file, yielding
/// `(edge, weight)` pairs (weight 1.0 for unweighted files) without
/// loading the file into memory. Weights live after the edge array, so
/// a weighted stream maintains a second buffered cursor.
pub struct BinaryEdgeStream {
    edges: BufReader<File>,
    weights: Option<BufReader<File>>,
    remaining: u64,
}

/// Open a streaming pass over a binary edge-list file.
pub fn stream_binary(path: impl AsRef<Path>) -> io::Result<BinaryEdgeStream> {
    use std::io::Seek;
    let path = path.as_ref();
    let header = read_binary_header(path)?;
    let mut edges = BufReader::new(File::open(path)?);
    edges.seek(io::SeekFrom::Start(HEADER_BYTES))?;
    let weights = if header.weighted {
        let mut w = BufReader::new(File::open(path)?);
        w.seek(io::SeekFrom::Start(HEADER_BYTES + header.num_edges * 8))?;
        Some(w)
    } else {
        None
    };
    Ok(BinaryEdgeStream { edges, weights, remaining: header.num_edges })
}

impl Iterator for BinaryEdgeStream {
    type Item = (Edge, f32);

    fn next(&mut self) -> Option<(Edge, f32)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut rec = [0u8; 8];
        self.edges.read_exact(&mut rec).ok()?;
        let edge = Edge::new(
            u32::from_le_bytes(rec[0..4].try_into().unwrap()),
            u32::from_le_bytes(rec[4..8].try_into().unwrap()),
        );
        let weight = match &mut self.weights {
            Some(w) => {
                let mut wb = [0u8; 4];
                w.read_exact(&mut wb).ok()?;
                f32::from_le_bytes(wb)
            }
            None => 1.0,
        };
        Some((edge, weight))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::{rmat, RmatConfig};

    #[test]
    fn binary_roundtrip_unweighted() {
        let tmp = tempfile::tempdir().unwrap();
        let p = tmp.path().join("g.husg");
        let el = rmat(200, 1000, 1, RmatConfig::default());
        write_binary(&el, &p).unwrap();
        let back = read_binary(&p).unwrap();
        assert_eq!(el, back);
    }

    #[test]
    fn binary_roundtrip_weighted() {
        let tmp = tempfile::tempdir().unwrap();
        let p = tmp.path().join("g.husg");
        let el = rmat(100, 400, 2, RmatConfig::default()).with_hash_weights(0.5, 2.0);
        write_binary(&el, &p).unwrap();
        let back = read_binary(&p).unwrap();
        assert_eq!(el, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let tmp = tempfile::tempdir().unwrap();
        let p = tmp.path().join("bad.bin");
        std::fs::write(&p, b"NOPE0000000000000000000000").unwrap();
        assert!(read_binary(&p).is_err());
    }

    #[test]
    fn text_parse_with_comments_and_weights() {
        let text = "# a comment\n% another\n0 1 2.5\n1 2 0.5\n\n2 0 1.0\n";
        let el = parse_text(io::Cursor::new(text)).unwrap();
        assert_eq!(el.num_edges(), 3);
        assert_eq!(el.num_vertices, 3);
        assert_eq!(el.weights.as_ref().unwrap()[0], 2.5);
    }

    #[test]
    fn text_parse_unweighted() {
        let el = parse_text(io::Cursor::new("0 1\n1 2\n")).unwrap();
        assert!(el.weights.is_none());
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn text_parse_rejects_garbage() {
        assert!(parse_text(io::Cursor::new("0 x\n")).is_err());
        assert!(parse_text(io::Cursor::new("5\n")).is_err());
        assert!(parse_text(io::Cursor::new("0 1 notafloat\n")).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let tmp = tempfile::tempdir().unwrap();
        let p = tmp.path().join("g.txt");
        let el = rmat(50, 200, 3, RmatConfig::default()).with_hash_weights(1.0, 3.0);
        write_text(&el, &p).unwrap();
        let back = read_text(&p).unwrap();
        assert_eq!(el.edges, back.edges);
        // Text roundtrip of f32 weights is exact for values printed by
        // Rust's shortest-roundtrip float formatting.
        assert_eq!(el.weights, back.weights);
    }

    #[test]
    fn header_matches_write() {
        let tmp = tempfile::tempdir().unwrap();
        let p = tmp.path().join("g.husg");
        let el = rmat(100, 500, 8, RmatConfig::default()).with_hash_weights(1.0, 2.0);
        write_binary(&el, &p).unwrap();
        let h = read_binary_header(&p).unwrap();
        assert_eq!(h.num_vertices, 100);
        assert_eq!(h.num_edges, el.num_edges() as u64);
        assert!(h.weighted);
    }

    #[test]
    fn streaming_matches_full_read() {
        let tmp = tempfile::tempdir().unwrap();
        let p = tmp.path().join("g.husg");
        let el = rmat(120, 800, 9, RmatConfig::default()).with_hash_weights(0.5, 4.0);
        write_binary(&el, &p).unwrap();
        let streamed: Vec<(Edge, f32)> = stream_binary(&p).unwrap().collect();
        assert_eq!(streamed.len(), el.num_edges());
        for (k, (e, w)) in streamed.iter().enumerate() {
            assert_eq!(*e, el.edges[k]);
            assert_eq!(*w, el.weights.as_ref().unwrap()[k]);
        }
    }

    #[test]
    fn streaming_unweighted_yields_unit_weights() {
        let tmp = tempfile::tempdir().unwrap();
        let p = tmp.path().join("g.husg");
        let el = rmat(50, 300, 10, RmatConfig::default());
        write_binary(&el, &p).unwrap();
        let streamed: Vec<(Edge, f32)> = stream_binary(&p).unwrap().collect();
        assert!(streamed.iter().all(|(_, w)| *w == 1.0));
        assert_eq!(streamed.len(), el.num_edges());
        // size_hint is exact.
        let mut s = stream_binary(&p).unwrap();
        assert_eq!(s.size_hint(), (el.num_edges(), Some(el.num_edges())));
        s.next();
        assert_eq!(s.size_hint().0, el.num_edges() - 1);
    }

    #[test]
    fn empty_text_is_empty_graph() {
        let el = parse_text(io::Cursor::new("# nothing\n")).unwrap();
        assert_eq!(el.num_vertices, 0);
        assert_eq!(el.num_edges(), 0);
    }
}
