//! # hus-gen — graph data model, synthetic generators, and dataset presets
//!
//! The HUS-Graph paper evaluates on five real-world power-law graphs
//! (Table 2: LiveJournal, Twitter2010, SK2005, UK2007, UKunion). Those
//! datasets are not redistributable here, so this crate provides:
//!
//! * the shared **graph data model** ([`Edge`], [`EdgeList`], [`Csr`])
//!   used by every engine and builder in the workspace,
//! * **generators** with the degree skew the paper's systems are designed
//!   around — [`fn@rmat`] (Kronecker/R-MAT power-law graphs), [`chung_lu`]
//!   (expected power-law degree sequences), [`erdos_renyi`],
//!   [`barabasi_albert`] (preferential-attachment growth),
//!   [`watts_strogatz`] (tunable-diameter small worlds), and exact
//!   small topologies ([`classic`]) for tests,
//! * [`datasets`] — presets that mirror Table 2's vertex/edge ratios at a
//!   configurable scale (`HUS_SCALE`), and
//! * **edge-list I/O** ([`io`]) in a small binary format plus a
//!   whitespace text parser.

#![warn(missing_docs)]

pub mod ba;
pub mod classic;
pub mod csr;
pub mod datasets;
pub mod er;
pub mod io;
pub mod powerlaw;
pub mod rmat;
pub mod smallworld;
pub mod stats;
pub mod types;

pub use ba::barabasi_albert;
pub use classic::{complete, cycle, grid2d, path, star};
pub use csr::Csr;
pub use datasets::{Dataset, DatasetSpec};
pub use er::erdos_renyi;
pub use powerlaw::chung_lu;
pub use rmat::{rmat, RmatConfig};
pub use smallworld::watts_strogatz;
pub use types::{Edge, EdgeList, VertexId};
