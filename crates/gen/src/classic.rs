//! Exact small topologies with known properties, used throughout the test
//! suites (BFS depths, component counts, PageRank symmetry are all known
//! in closed form for these).

use crate::types::{Edge, EdgeList};

/// Directed path `0 -> 1 -> ... -> n-1`.
pub fn path(n: u32) -> EdgeList {
    let edges = (0..n.saturating_sub(1)).map(|v| Edge::new(v, v + 1)).collect();
    EdgeList { num_vertices: n, edges, weights: None }
}

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle(n: u32) -> EdgeList {
    assert!(n >= 2, "cycle needs at least 2 vertices");
    let edges = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
    EdgeList { num_vertices: n, edges, weights: None }
}

/// Star: center 0 with edges to and from each of the `n-1` leaves.
pub fn star(n: u32) -> EdgeList {
    assert!(n >= 1);
    let mut edges = Vec::with_capacity(2 * (n as usize - 1));
    for v in 1..n {
        edges.push(Edge::new(0, v));
        edges.push(Edge::new(v, 0));
    }
    EdgeList { num_vertices: n, edges, weights: None }
}

/// Complete directed graph on `n` vertices (all ordered pairs, no loops).
pub fn complete(n: u32) -> EdgeList {
    let mut edges = Vec::with_capacity((n as usize) * (n as usize - 1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push(Edge::new(u, v));
            }
        }
    }
    EdgeList { num_vertices: n, edges, weights: None }
}

/// `rows × cols` grid with bidirectional edges between 4-neighbors.
/// Vertex `(r, c)` has id `r * cols + c`.
pub fn grid2d(rows: u32, cols: u32) -> EdgeList {
    assert!(rows >= 1 && cols >= 1);
    let id = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1)));
                edges.push(Edge::new(id(r, c + 1), id(r, c)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c)));
                edges.push(Edge::new(id(r + 1, c), id(r, c)));
            }
        }
    }
    EdgeList { num_vertices: rows * cols, edges, weights: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let p = path(4);
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.edges[0], Edge::new(0, 1));
        assert_eq!(p.edges[2], Edge::new(2, 3));
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(0).num_edges(), 0);
    }

    #[test]
    fn cycle_wraps() {
        let c = cycle(3);
        assert_eq!(c.num_edges(), 3);
        assert!(c.edges.contains(&Edge::new(2, 0)));
    }

    #[test]
    fn star_degrees() {
        let s = star(5);
        let out = s.out_degrees();
        assert_eq!(out[0], 4);
        assert!(out[1..].iter().all(|&d| d == 1));
        assert_eq!(s.in_degrees()[0], 4);
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(5).num_edges(), 20);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) + cols*(rows-1) undirected neighbors, ×2 directed.
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices, 12);
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 4 * 2));
        g.validate().unwrap();
    }
}
