//! # hus-baselines — the comparison systems, re-implemented
//!
//! The paper evaluates HUS-Graph against GraphChi (OSDI'12) and GridGraph
//! (USENIX ATC'15). Both are re-implemented here **on the same tracked
//! storage substrate** as HUS-Graph, following the I/O structure their
//! papers describe, so the Figure 9 / Table 3 comparisons measure layout
//! and scheduling policy rather than implementation accidents:
//!
//! * [`graphchi`] — parallel sliding windows: one shard per destination
//!   interval sorted by source; each execution interval loads its memory
//!   shard plus a window of every other shard, reconstructs the
//!   subgraph, runs vertex-centric updates, and **writes edge values
//!   back to disk** (the intermediate-data writes the paper blames for
//!   GraphChi's I/O volume, §4.4). Asynchronous like the original:
//!   updates made earlier in an iteration are visible later in it.
//! * [`gridgraph`] — 2-level hierarchical partitioning into a `P×P`
//!   grid of edge-list blocks, processed with a streaming-apply push
//!   model in destination-major order, with **selective scheduling** that
//!   skips blocks whose source interval has no active vertices. Unlike
//!   HUS-Graph it has no pull model and no per-vertex selective loads —
//!   a block with one active source is still streamed in full.
//!
//! Two further related-work systems complete the comparison set:
//!
//! * [`xstream`] — edge-centric scatter-gather over unordered streaming
//!   partitions with on-disk update files (X-Stream, SOSP'13 — quoted in
//!   the paper's Figure 11 SSD experiment).
//! * [`semi_external`] — FlashGraph-style semi-external execution
//!   (vertex values pinned in memory, selective on-disk edge access;
//!   paper §5).
//!
//! All run the same [`hus_core::VertexProgram`]s as HUS-Graph and report
//! the same [`hus_core::RunStats`].

#![warn(missing_docs)]

pub mod common;
pub mod graphchi;
pub mod gridgraph;
pub mod semi_external;
pub mod xstream;

pub use common::BaselineConfig;
pub use graphchi::{GraphChiEngine, PswStore};
pub use gridgraph::{GridGraphEngine, GridStore};
pub use semi_external::SemiExternalEngine;
pub use xstream::{XStreamEngine, XStreamStore};
