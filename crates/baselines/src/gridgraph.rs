//! GridGraph-style baseline: 2-level hierarchical partitioning with a
//! streaming-apply push model (Zhu, Han, Chen — USENIX ATC'15).
//!
//! Edges are partitioned into a `P×P` grid of blocks keyed by
//! (source interval, destination interval) and stored as plain edge
//! lists (8–12 bytes per record — deliberately the less compact format
//! the HUS-Graph paper contrasts its dual-block records against, §4.4).
//! An iteration streams blocks in destination-major order: per
//! destination column, the destination vertex chunk is loaded once, and
//! each block with at least one active source vertex is streamed in full
//! with updates applied on the fly. **Selective scheduling operates at
//! block granularity**: a block whose source interval has *any* active
//! vertex is streamed whole — there is no per-vertex selective load,
//! which is exactly the I/O HUS-Graph's ROP saves.

use crate::common::{scratch_name, BaselineConfig};
use hus_core::active::ActiveSet;
use hus_core::predict::UpdateModel;
use hus_core::program::EdgeCtx;
use hus_core::stats::{IterationStats, RunStats};
use hus_core::vertex_store::VertexStore;
use hus_core::VertexProgram;
use hus_gen::EdgeList;
use hus_obs::span;
use hus_storage::{Access, ReadBackend, Result, StorageDir, StorageError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Grid manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridMeta {
    /// Vertex count.
    pub num_vertices: u32,
    /// Edge count.
    pub num_edges: u64,
    /// Grid dimension `P`.
    pub p: u32,
    /// Whether records carry weights.
    pub weighted: bool,
    /// Interval boundaries (`p + 1` entries).
    pub interval_starts: Vec<u32>,
    /// Record counts per block, destination-major: entry `j * p + i` is
    /// block `(i, j)`; blocks are stored contiguously in this order.
    pub block_counts: Vec<u64>,
}

impl GridMeta {
    /// Record size in bytes.
    pub fn record_bytes(&self) -> u64 {
        if self.weighted {
            12
        } else {
            8
        }
    }

    /// Record count of block `(i, j)`.
    pub fn block_count(&self, i: usize, j: usize) -> u64 {
        self.block_counts[j * self.p as usize + i]
    }

    /// Byte offset of block `(i, j)` in the grid file (destination-major
    /// storage order — the streaming order).
    pub fn block_offset(&self, i: usize, j: usize) -> u64 {
        let idx = j * self.p as usize + i;
        self.block_counts[..idx].iter().sum::<u64>() * self.record_bytes()
    }
}

const GRID_META: &str = "grid_meta.json";
const GRID_EDGES: &str = "grid.edges";

/// A built GridGraph-style representation.
pub struct GridStore {
    dir: StorageDir,
    meta: GridMeta,
    edges: Arc<dyn ReadBackend>,
    out_degrees: Vec<u32>,
}

impl GridStore {
    /// Build the grid representation of `el` into `dir` with `p²` blocks.
    pub fn build_into(el: &EdgeList, dir: &StorageDir, p: u32) -> Result<Self> {
        el.validate().map_err(StorageError::Corrupt)?;
        let p = p.clamp(1, el.num_vertices.max(1));
        let starts = hus_core::partition::interval_starts(
            el.num_vertices,
            p,
            hus_core::partition::PartitionStrategy::EqualVertices,
            &[],
        );
        let pu = p as usize;
        let weighted = el.is_weighted();

        // Bucket destination-major.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); pu * pu];
        for (k, e) in el.edges.iter().enumerate() {
            let i = hus_core::partition::interval_of(&starts, e.src);
            let j = hus_core::partition::interval_of(&starts, e.dst);
            buckets[j * pu + i].push(k as u32);
        }

        let mut w = dir.writer(GRID_EDGES)?;
        let mut block_counts = vec![0u64; pu * pu];
        for (b, ids) in buckets.iter().enumerate() {
            block_counts[b] = ids.len() as u64;
            for &k in ids {
                let e = &el.edges[k as usize];
                w.write_pod(&e.src)?;
                w.write_pod(&e.dst)?;
                if weighted {
                    w.write_pod(&el.weights.as_ref().unwrap()[k as usize])?;
                }
            }
        }
        w.finish()?;

        let meta = GridMeta {
            num_vertices: el.num_vertices,
            num_edges: el.num_edges() as u64,
            p,
            weighted,
            interval_starts: starts,
            block_counts,
        };
        dir.put_meta(GRID_META, &serde_json::to_string_pretty(&meta).expect("serializes"))?;
        // Out-degrees (GridGraph keeps per-vertex metadata for PageRank).
        let mut dw = dir.writer("grid_degrees.bin")?;
        dw.write_pod_slice(&el.out_degrees())?;
        dw.finish()?;
        Self::open(dir.clone())
    }

    /// Open a previously built grid directory.
    pub fn open(dir: StorageDir) -> Result<Self> {
        let meta: GridMeta = serde_json::from_str(&dir.get_meta(GRID_META)?)
            .map_err(|e| StorageError::Corrupt(format!("bad grid meta: {e}")))?;
        let edges = dir.reader(GRID_EDGES)?;
        let deg_bytes = std::fs::read(dir.path("grid_degrees.bin"))
            .map_err(|e| StorageError::io_at(dir.path("grid_degrees.bin"), e))?;
        let out_degrees = hus_storage::pod::to_vec::<u32>(&deg_bytes)?;
        Ok(GridStore { dir, meta, edges, out_degrees })
    }

    /// The manifest.
    pub fn meta(&self) -> &GridMeta {
        &self.meta
    }

    /// Storage directory (tracker).
    pub fn dir(&self) -> &StorageDir {
        &self.dir
    }
}

/// The streaming-apply engine.
pub struct GridGraphEngine<'a, Pr: VertexProgram> {
    store: &'a GridStore,
    program: &'a Pr,
    config: BaselineConfig,
}

impl<'a, Pr: VertexProgram> GridGraphEngine<'a, Pr> {
    /// Create an engine for `program` over the grid store.
    pub fn new(store: &'a GridStore, program: &'a Pr, config: BaselineConfig) -> Self {
        GridGraphEngine { store, program, config }
    }

    /// Execute to convergence (or `max_iterations`).
    pub fn run(&self) -> Result<(Vec<Pr::Value>, RunStats)> {
        let meta = &self.store.meta;
        let v = meta.num_vertices;
        let p = meta.p as usize;
        let m = meta.record_bytes() as usize;
        hus_obs::init_from_env();
        let tracker = self.store.dir.tracker();
        let resilience = self.store.dir.resilience();
        let run_io_start = tracker.snapshot();
        let run_res_start = resilience.snapshot();
        let run_start = Instant::now();

        let scratch = self.store.dir.subdir(&scratch_name(&self.config, "grid"))?;
        let mut values: VertexStore<Pr::Value> =
            VertexStore::create(&scratch, "vals", &meta.interval_starts, |x| self.program.init(x))?;

        let always = self.program.always_active();
        let mut active = if always {
            ActiveSet::all(v)
        } else {
            ActiveSet::from_fn(v, |x| self.program.initially_active(x))
        };

        let mut iterations = Vec::new();
        let mut total_edges = 0u64;
        let mut converged = false;

        for iteration in 0..self.config.max_iterations {
            let active_vertices = active.count();
            if active_vertices == 0 {
                converged = true;
                break;
            }
            let active_edges = active.active_degree_sum(0, v, &self.store.out_degrees);
            let io_start = tracker.snapshot();
            let t_start = Instant::now();
            let next_active = if always { ActiveSet::all(v) } else { ActiveSet::new(v) };
            let mut edges_this_iter = 0u64;

            // Which source intervals have any active vertex (block-level
            // selective scheduling).
            let row_active: Vec<bool> = (0..p)
                .map(|i| {
                    active.count_range(meta.interval_starts[i], meta.interval_starts[i + 1]) > 0
                })
                .collect();

            // Destination-major streaming-apply pass.
            for j in 0..p {
                let _s = span!("stream.column", interval = j);
                let dst_base = meta.interval_starts[j];
                // D_j: destination chunk, loaded once per column,
                // initialized from reset(S_j).
                let s_j = values.load_current(j, Access::Sequential)?;
                let mut d_j: Vec<Pr::Value> = s_j
                    .iter()
                    .enumerate()
                    .map(|(k, val)| self.program.reset(dst_base + k as u32, val))
                    .collect();
                #[allow(clippy::needless_range_loop)] // i indexes meta tables and chunk state alike
                for i in 0..p {
                    if !row_active[i] || meta.block_count(i, j) == 0 {
                        continue; // selective scheduling skips the block
                    }
                    let s_i = values.load_current(i, Access::Sequential)?;
                    let src_base = meta.interval_starts[i];
                    // Stream the whole block — edge-list records.
                    let count = meta.block_count(i, j) as usize;
                    let mut bytes = vec![0u8; count * m];
                    self.store.edges.read_at(
                        meta.block_offset(i, j),
                        &mut bytes,
                        Access::Sequential,
                    )?;
                    edges_this_iter += count as u64;
                    for r in 0..count {
                        let rec = &bytes[r * m..(r + 1) * m];
                        let src = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                        if !active.get(src) {
                            continue; // streamed but not applied
                        }
                        let dst = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                        let weight = if meta.weighted {
                            f32::from_le_bytes(rec[8..12].try_into().unwrap())
                        } else {
                            1.0
                        };
                        let ctx = EdgeCtx {
                            src,
                            dst,
                            weight,
                            src_out_degree: self.store.out_degrees[src as usize],
                        };
                        let src_val = &s_i[(src - src_base) as usize];
                        if let Some(msg) = self.program.scatter(src_val, &ctx) {
                            if self.program.combine(&mut d_j[(dst - dst_base) as usize], msg) {
                                next_active.set(dst);
                            }
                        }
                    }
                }
                values.write_next(j, &d_j)?;
            }
            {
                let _s = span!("sync");
                for j in 0..p {
                    values.commit(j);
                }
            }

            total_edges += edges_this_iter;
            let it = IterationStats {
                iteration,
                // GridGraph is a pure push system (paper §2.2).
                model: UpdateModel::Rop,
                gated: false,
                c_rop: f64::NAN,
                c_cop: f64::NAN,
                rop_units: p as u32,
                cop_units: 0,
                active_vertices,
                active_edges,
                edges_processed: edges_this_iter,
                io: tracker.snapshot().since(&io_start),
                wall_seconds: t_start.elapsed().as_secs_f64(),
                phases: hus_obs::finish_iteration("gridgraph", iteration),
            };
            if let Some(sink) = hus_obs::sink::trace() {
                sink.emit_iteration("gridgraph", &it);
            }
            iterations.push(it);
            active = next_active;
            if always && iteration + 1 == self.config.max_iterations {
                break;
            }
        }

        let stats = RunStats {
            iterations,
            total_io: tracker.snapshot().since(&run_io_start),
            wall_seconds: run_start.elapsed().as_secs_f64(),
            edges_processed: total_edges,
            converged,
            threads: self.config.threads,
            resilience: resilience.snapshot().since(&run_res_start),
            checkpoints: Default::default(),
        };
        if let Some(sink) = hus_obs::sink::trace() {
            sink.emit_run("gridgraph", &stats);
        }
        Ok((values.read_all_current()?, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_algos::{reference, Bfs, PageRank, Wcc};
    use hus_gen::{classic, Csr};

    fn grid(el: &EdgeList, p: u32) -> (tempfile::TempDir, GridStore) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("gg")).unwrap();
        let store = GridStore::build_into(el, &dir, p).unwrap();
        (tmp, store)
    }

    #[test]
    fn block_layout_is_destination_major_and_complete() {
        let el = hus_gen::rmat(100, 600, 2, hus_gen::RmatConfig::default());
        let (_t, store) = grid(&el, 4);
        let total: u64 = store.meta.block_counts.iter().sum();
        assert_eq!(total, el.num_edges() as u64);
        assert_eq!(store.dir.file_len(GRID_EDGES).unwrap(), total * store.meta.record_bytes());
        // Offsets are monotone in storage order.
        let mut prev = 0;
        for j in 0..4 {
            for i in 0..4 {
                let off = store.meta.block_offset(i, j);
                assert!(off >= prev);
                prev = off;
            }
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let el = hus_gen::rmat(200, 1500, 3, hus_gen::RmatConfig::default());
        let csr = Csr::from_edge_list(&el);
        let want = reference::bfs_levels(&csr, 0);
        let (_t, store) = grid(&el, 4);
        let (got, stats) =
            GridGraphEngine::new(&store, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
        assert!(stats.converged);
        assert_eq!(got, want);
    }

    #[test]
    fn wcc_matches_reference() {
        let el = hus_gen::rmat(150, 500, 4, hus_gen::RmatConfig::default()).symmetrize();
        let csr = Csr::from_edge_list(&el);
        let want = reference::wcc_labels(&csr);
        let (_t, store) = grid(&el, 3);
        let (got, _) = GridGraphEngine::new(&store, &Wcc, BaselineConfig::default()).run().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn pagerank_matches_reference() {
        let el = hus_gen::rmat(120, 900, 5, hus_gen::RmatConfig::default());
        let csr = Csr::from_edge_list(&el);
        let want = reference::pagerank(&csr, 0.85, 5);
        let (_t, store) = grid(&el, 3);
        let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
        let (got, _) = GridGraphEngine::new(&store, &PageRank::new(120), cfg).run().unwrap();
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() <= 1e-3 * w.max(1e-6), "v{v}: {g} vs {w}");
        }
    }

    #[test]
    fn selective_scheduling_skips_inactive_blocks() {
        // Path graph, BFS from the last vertex: frontier is empty after
        // one iteration, so almost no blocks stream.
        let el = classic::path(100);
        let (_t, store) = grid(&el, 4);
        store.dir().tracker().reset();
        let (_vals, stats) =
            GridGraphEngine::new(&store, &Bfs::new(99), BaselineConfig::default()).run().unwrap();
        // Vertex 99 has no out-edges: one iteration, zero edges streamed
        // except blocks of its (active) interval.
        let streamed = stats.edges_processed;
        assert!(streamed < el.num_edges() as u64, "streamed {streamed}");
    }

    #[test]
    fn streams_whole_blocks_for_single_active_vertex() {
        // One active source in an interval forces the entire block row
        // to stream — the waste HUS's ROP avoids.
        let el = hus_gen::rmat(200, 2000, 6, hus_gen::RmatConfig::default());
        let (_t, store) = grid(&el, 2);
        let (_vals, stats) =
            GridGraphEngine::new(&store, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
        let first_iter = &stats.iterations[0];
        // Vertex 0's interval spans half the grid: both its blocks
        // stream fully even though only vertex 0 is active.
        let row0_edges: u64 = (0..2).map(|j| store.meta.block_count(0, j)).sum();
        assert_eq!(first_iter.edges_processed, row0_edges);
        assert!(row0_edges as f64 > store.out_degrees[0] as f64);
    }

    #[test]
    fn io_is_sequential_only() {
        let el = hus_gen::rmat(100, 700, 7, hus_gen::RmatConfig::default());
        let (_t, store) = grid(&el, 2);
        let (_vals, stats) =
            GridGraphEngine::new(&store, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
        assert_eq!(stats.total_io.rand_read_bytes, 0, "GridGraph never reads randomly");
        assert!(stats.total_io.seq_read_bytes > 0);
    }
}
