//! Semi-external engine in the style of FlashGraph (FAST'15) /
//! Graphene (FAST'17), discussed in the paper's related work (§5):
//! **vertex values live entirely in memory**, only adjacency data stays
//! on disk, and edge access is selective.
//!
//! It runs over the same dual-block representation as HUS-Graph
//! (out-blocks + indices), pushing from active vertices with selective
//! loads, but pays **zero vertex I/O**. The paper positions such systems
//! as needing "expensive SSD arrays and large memory" to shine; the
//! `exp_semi_external` experiment shows exactly that — on the HDD
//! profile it behaves like ROP, on the SSD profile it pulls far ahead.

use crate::common::BaselineConfig;
use hus_core::active::ActiveSet;
use hus_core::predict::UpdateModel;
use hus_core::program::EdgeCtx;
use hus_core::stats::{IterationStats, RunStats};
use hus_core::{HusGraph, VertexProgram};
use hus_obs::span;
use hus_storage::{Access, Result};
use std::time::Instant;

/// The semi-external engine (in-memory vertex state, on-disk edges).
pub struct SemiExternalEngine<'a, Pr: VertexProgram> {
    graph: &'a HusGraph,
    program: &'a Pr,
    config: BaselineConfig,
}

impl<'a, Pr: VertexProgram> SemiExternalEngine<'a, Pr> {
    /// Create an engine for `program` over a dual-block graph.
    pub fn new(graph: &'a HusGraph, program: &'a Pr, config: BaselineConfig) -> Self {
        SemiExternalEngine { graph, program, config }
    }

    /// Execute to convergence (or `max_iterations`).
    pub fn run(&self) -> Result<(Vec<Pr::Value>, RunStats)> {
        let meta = self.graph.meta();
        let v = meta.num_vertices;
        let p = self.graph.p();
        hus_obs::init_from_env();
        let tracker = self.graph.dir().tracker();
        let resilience = self.graph.dir().resilience();
        let run_io_start = tracker.snapshot();
        let run_res_start = resilience.snapshot();
        let run_start = Instant::now();

        // All vertex state pinned in memory: the semi-external premise.
        let mut current: Vec<Pr::Value> = (0..v).map(|x| self.program.init(x)).collect();

        let always = self.program.always_active();
        let mut active = if always {
            ActiveSet::all(v)
        } else {
            ActiveSet::from_fn(v, |x| self.program.initially_active(x))
        };

        let mut iterations = Vec::new();
        let mut total_edges = 0u64;
        let mut converged = false;

        for iteration in 0..self.config.max_iterations {
            let active_vertices = active.count();
            if active_vertices == 0 {
                converged = true;
                break;
            }
            let active_edges = active.active_degree_sum(0, v, self.graph.out_degrees());
            let io_start = tracker.snapshot();
            let t_start = Instant::now();
            let next_active = if always { ActiveSet::all(v) } else { ActiveSet::new(v) };
            let mut edges_this_iter = 0u64;

            // Next values start from reset(current) — synchronous.
            let mut next: Vec<Pr::Value> = current
                .iter()
                .enumerate()
                .map(|(x, val)| self.program.reset(x as u32, val))
                .collect();

            for i in 0..p {
                let base = meta.interval_start(i);
                let end = meta.interval_starts[i + 1];
                let actives: Vec<u32> = active.iter_range(base, end).collect();
                if actives.is_empty() {
                    continue;
                }
                let _s = span!("push.row", interval = i);
                for j in 0..p {
                    let block_edges = meta.out_block(i, j).edge_count;
                    if block_edges == 0 {
                        continue;
                    }
                    let index = self.graph.load_out_index(i, j, Access::Sequential)?;
                    // Same cost-based fetch policy as ROP: selective
                    // ranges vs one coalesced sweep.
                    let requested: u64 = actives
                        .iter()
                        .map(|&x| {
                            let l = (x - base) as usize;
                            (index[l + 1] - index[l]) as u64
                        })
                        .sum();
                    if requested == 0 {
                        continue;
                    }
                    let coalesce = requested as f64 * 40.0 >= block_edges as f64;
                    let batch =
                        if coalesce { Some(self.graph.load_out_block_batch(i, j)?) } else { None };
                    for &src in &actives {
                        let local = (src - base) as usize;
                        let (lo, hi) = (index[local], index[local + 1]);
                        if lo == hi {
                            continue;
                        }
                        let n = (hi - lo) as usize;
                        let src_val = current[src as usize];
                        let mut push = |records: &hus_core::graph::EdgeRecords, offset: usize| {
                            for k in 0..n {
                                let dst = records.neighbor(offset + k);
                                let ctx = EdgeCtx {
                                    src,
                                    dst,
                                    weight: records.weight(offset + k),
                                    src_out_degree: self.graph.out_degrees()[src as usize],
                                };
                                if let Some(msg) = self.program.scatter(&src_val, &ctx) {
                                    if self.program.combine(&mut next[dst as usize], msg) {
                                        next_active.set(dst);
                                    }
                                }
                            }
                        };
                        match &batch {
                            Some(b) => push(b, lo as usize),
                            None => push(&self.graph.load_out_records(i, j, lo, hi)?, 0),
                        }
                        edges_this_iter += n as u64;
                    }
                }
            }

            current = next;
            total_edges += edges_this_iter;
            let it = IterationStats {
                iteration,
                model: UpdateModel::Rop,
                gated: false,
                c_rop: f64::NAN,
                c_cop: f64::NAN,
                rop_units: p as u32,
                cop_units: 0,
                active_vertices,
                active_edges,
                edges_processed: edges_this_iter,
                io: tracker.snapshot().since(&io_start),
                wall_seconds: t_start.elapsed().as_secs_f64(),
                phases: hus_obs::finish_iteration("semi-external", iteration),
            };
            if let Some(sink) = hus_obs::sink::trace() {
                sink.emit_iteration("semi-external", &it);
            }
            iterations.push(it);
            active = next_active;
            if always && iteration + 1 == self.config.max_iterations {
                break;
            }
        }

        let stats = RunStats {
            iterations,
            total_io: tracker.snapshot().since(&run_io_start),
            wall_seconds: run_start.elapsed().as_secs_f64(),
            edges_processed: total_edges,
            converged,
            threads: self.config.threads,
            resilience: resilience.snapshot().since(&run_res_start),
            checkpoints: Default::default(),
        };
        if let Some(sink) = hus_obs::sink::trace() {
            sink.emit_run("semi-external", &stats);
        }
        Ok((current, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_algos::{reference, Bfs, PageRank, Wcc};
    use hus_core::BuildConfig;
    use hus_gen::{Csr, EdgeList};
    use hus_storage::StorageDir;

    fn graph(el: &EdgeList, p: u32) -> (tempfile::TempDir, HusGraph) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("g")).unwrap();
        let g = HusGraph::build_into(el, &dir, &BuildConfig::with_p(p)).unwrap();
        (tmp, g)
    }

    #[test]
    fn bfs_matches_reference() {
        let el = hus_gen::rmat(200, 1500, 3, Default::default());
        let want = reference::bfs_levels(&Csr::from_edge_list(&el), 0);
        let (_t, g) = graph(&el, 4);
        let (got, stats) =
            SemiExternalEngine::new(&g, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
        assert!(stats.converged);
        assert_eq!(got, want);
    }

    #[test]
    fn wcc_matches_reference() {
        let el = hus_gen::rmat(150, 600, 4, Default::default()).symmetrize();
        let want = reference::wcc_labels(&Csr::from_edge_list(&el));
        let (_t, g) = graph(&el, 3);
        let (got, _) = SemiExternalEngine::new(&g, &Wcc, BaselineConfig::default()).run().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn pagerank_matches_reference() {
        let el = hus_gen::rmat(120, 900, 5, Default::default());
        let want = reference::pagerank(&Csr::from_edge_list(&el), 0.85, 5);
        let (_t, g) = graph(&el, 3);
        let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
        let (got, _) = SemiExternalEngine::new(&g, &PageRank::new(120), cfg).run().unwrap();
        for (v, (gv, w)) in got.iter().zip(&want).enumerate() {
            assert!((gv - w).abs() <= 1e-3 * w.max(1e-6), "v{v}: {gv} vs {w}");
        }
    }

    #[test]
    fn performs_no_vertex_io() {
        // Semi-external reads only edge data: no writes at all, and
        // total reads bounded by edges + indices.
        let el = hus_gen::rmat(150, 1000, 6, Default::default());
        let (_t, g) = graph(&el, 3);
        g.dir().tracker().reset();
        let (_vals, stats) =
            SemiExternalEngine::new(&g, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
        assert_eq!(stats.total_io.write_bytes, 0, "vertex state never hits disk");
        let hus_io = {
            g.dir().tracker().reset();
            let cfg = hus_core::RunConfig::default();
            let (_, s) = hus_core::Engine::new(&g, &Bfs::new(0), cfg).run().unwrap();
            s.total_io.total_bytes()
        };
        assert!(
            stats.total_io.total_bytes() < hus_io,
            "semi-external {} must beat out-of-core {hus_io} on I/O",
            stats.total_io.total_bytes()
        );
    }
}
