//! Shared configuration and helpers for the baseline engines.

use std::sync::atomic::{AtomicU64, Ordering};

/// Run configuration shared by both baseline engines.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Worker threads (recorded into the stats; both baseline inner
    /// loops are sequential per block, as their papers' streaming orders
    /// are, so threads enter only the modeled CPU term).
    pub threads: usize,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Scratch directory name for per-run state (edge values / vertex
    /// values), created under the store directory. `None` derives a
    /// unique name.
    pub scratch_name: Option<String>,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            max_iterations: 1_000,
            scratch_name: None,
        }
    }
}

static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Unique scratch directory name for a run.
pub fn scratch_name(config: &BaselineConfig, prefix: &str) -> String {
    config.scratch_name.clone().unwrap_or_else(|| {
        format!(
            "{prefix}_scratch_{}_{}",
            std::process::id(),
            SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed)
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_scratch_names_are_unique() {
        let cfg = BaselineConfig::default();
        assert_ne!(scratch_name(&cfg, "x"), scratch_name(&cfg, "x"));
    }

    #[test]
    fn explicit_scratch_name_wins() {
        let cfg = BaselineConfig { scratch_name: Some("fixed".into()), ..Default::default() };
        assert_eq!(scratch_name(&cfg, "x"), "fixed");
    }
}
