//! X-Stream-style baseline: edge-centric scatter-gather over streaming
//! partitions (Roy, Mihailovic, Zwaenepoel — SOSP'13).
//!
//! The graph is split into `K` streaming partitions, each owning a
//! vertex interval and an **unordered** edge file (all edges whose
//! source lies in the interval — no sorting, no index; X-Stream's pitch
//! was trading all pre-processing for pure streaming). An iteration is
//! two phases:
//!
//! * **Scatter**: stream every partition's edge file; each edge with an
//!   active source appends an `(dst, message)` update record to the
//!   *update file* of the destination's partition — intermediate data
//!   written to disk, like the original.
//! * **Gather**: stream every partition's update file, folding messages
//!   into the vertex values; update files are then discarded.
//!
//! Per iteration it therefore reads all `E` edges and both writes and
//! reads one update record per live edge — the I/O profile that placed
//! X-Stream between GraphChi and GridGraph historically, and the system
//! the paper's Figure 11 quotes an SSD speedup for.
//!
//! Synchronous semantics via the shared double-buffered vertex store, so
//! results are bit-comparable with the other synchronous engines.

use crate::common::{scratch_name, BaselineConfig};
use hus_core::active::ActiveSet;
use hus_core::predict::UpdateModel;
use hus_core::program::EdgeCtx;
use hus_core::stats::{IterationStats, RunStats};
use hus_core::vertex_store::VertexStore;
use hus_core::VertexProgram;
use hus_gen::EdgeList;
use hus_obs::span;
use hus_storage::{pod, Access, ReadBackend, Result, StorageDir, StorageError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// X-Stream manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XStreamMeta {
    /// Vertex count.
    pub num_vertices: u32,
    /// Edge count.
    pub num_edges: u64,
    /// Number of streaming partitions.
    pub k: u32,
    /// Whether records carry weights.
    pub weighted: bool,
    /// Interval boundaries (`k + 1` entries).
    pub interval_starts: Vec<u32>,
    /// Edge record count per partition.
    pub partition_counts: Vec<u64>,
}

impl XStreamMeta {
    /// Edge record size (src + dst [+ weight]).
    pub fn record_bytes(&self) -> u64 {
        if self.weighted {
            12
        } else {
            8
        }
    }
}

const XS_META: &str = "xstream_meta.json";

fn partition_file(i: usize) -> String {
    format!("xs_part_{i}.edges")
}

/// A built X-Stream representation.
pub struct XStreamStore {
    dir: StorageDir,
    meta: XStreamMeta,
    partitions: Vec<Arc<dyn ReadBackend>>,
    out_degrees: Vec<u32>,
}

impl XStreamStore {
    /// Build the streaming partitions of `el` into `dir`. No sorting —
    /// edges are appended to their source partition in input order.
    pub fn build_into(el: &EdgeList, dir: &StorageDir, k: u32) -> Result<Self> {
        el.validate().map_err(StorageError::Corrupt)?;
        let k = k.clamp(1, el.num_vertices.max(1));
        let starts = hus_core::partition::interval_starts(
            el.num_vertices,
            k,
            hus_core::partition::PartitionStrategy::EqualVertices,
            &[],
        );
        let ku = k as usize;
        let weighted = el.is_weighted();
        let mut writers: Vec<_> =
            (0..ku).map(|i| dir.writer(&partition_file(i))).collect::<Result<Vec<_>>>()?;
        let mut partition_counts = vec![0u64; ku];
        for (idx, e) in el.edges.iter().enumerate() {
            let i = hus_core::partition::interval_of(&starts, e.src);
            partition_counts[i] += 1;
            writers[i].write_pod(&e.src)?;
            writers[i].write_pod(&e.dst)?;
            if weighted {
                writers[i].write_pod(&el.weights.as_ref().unwrap()[idx])?;
            }
        }
        for w in writers {
            w.finish()?;
        }
        let meta = XStreamMeta {
            num_vertices: el.num_vertices,
            num_edges: el.num_edges() as u64,
            k,
            weighted,
            interval_starts: starts,
            partition_counts,
        };
        dir.put_meta(XS_META, &serde_json::to_string_pretty(&meta).expect("serializes"))?;
        let mut dw = dir.writer("xs_degrees.bin")?;
        dw.write_pod_slice(&el.out_degrees())?;
        dw.finish()?;
        Self::open(dir.clone())
    }

    /// Open a previously built X-Stream directory.
    pub fn open(dir: StorageDir) -> Result<Self> {
        let meta: XStreamMeta = serde_json::from_str(&dir.get_meta(XS_META)?)
            .map_err(|e| StorageError::Corrupt(format!("bad xstream meta: {e}")))?;
        let partitions = (0..meta.k as usize)
            .map(|i| dir.reader(&partition_file(i)))
            .collect::<Result<Vec<_>>>()?;
        let deg_bytes = std::fs::read(dir.path("xs_degrees.bin"))
            .map_err(|e| StorageError::io_at(dir.path("xs_degrees.bin"), e))?;
        let out_degrees = pod::to_vec::<u32>(&deg_bytes)?;
        Ok(XStreamStore { dir, meta, partitions, out_degrees })
    }

    /// The manifest.
    pub fn meta(&self) -> &XStreamMeta {
        &self.meta
    }

    /// Storage directory (tracker).
    pub fn dir(&self) -> &StorageDir {
        &self.dir
    }
}

/// The edge-centric scatter-gather engine.
pub struct XStreamEngine<'a, Pr: VertexProgram> {
    store: &'a XStreamStore,
    program: &'a Pr,
    config: BaselineConfig,
}

impl<'a, Pr: VertexProgram> XStreamEngine<'a, Pr> {
    /// Create an engine for `program` over the X-Stream store.
    pub fn new(store: &'a XStreamStore, program: &'a Pr, config: BaselineConfig) -> Self {
        XStreamEngine { store, program, config }
    }

    /// Execute to convergence (or `max_iterations`).
    pub fn run(&self) -> Result<(Vec<Pr::Value>, RunStats)> {
        let meta = &self.store.meta;
        let v = meta.num_vertices;
        let k = meta.k as usize;
        let m = meta.record_bytes() as usize;
        let value_size = std::mem::size_of::<Pr::Value>();
        let update_size = 4 + value_size; // dst id + message
        hus_obs::init_from_env();
        let tracker = self.store.dir.tracker();
        let resilience = self.store.dir.resilience();
        let run_io_start = tracker.snapshot();
        let run_res_start = resilience.snapshot();
        let run_start = Instant::now();

        let scratch = self.store.dir.subdir(&scratch_name(&self.config, "xs"))?;
        let mut values: VertexStore<Pr::Value> =
            VertexStore::create(&scratch, "vals", &meta.interval_starts, |x| self.program.init(x))?;

        let always = self.program.always_active();
        let mut active = if always {
            ActiveSet::all(v)
        } else {
            ActiveSet::from_fn(v, |x| self.program.initially_active(x))
        };

        let mut iterations = Vec::new();
        let mut total_edges = 0u64;
        let mut converged = false;

        for iteration in 0..self.config.max_iterations {
            let active_vertices = active.count();
            if active_vertices == 0 {
                converged = true;
                break;
            }
            let active_edges = active.active_degree_sum(0, v, &self.store.out_degrees);
            let io_start = tracker.snapshot();
            let t_start = Instant::now();
            let next_active = if always { ActiveSet::all(v) } else { ActiveSet::new(v) };
            let mut edges_this_iter = 0u64;

            // --- Scatter phase: stream every edge, emit updates. --------
            let mut update_writers: Vec<_> = (0..k)
                .map(|j| scratch.writer(&format!("updates_{j}.bin")))
                .collect::<Result<Vec<_>>>()?;
            for i in 0..k {
                let _s = span!("scatter.partition", interval = i);
                let s_i = values.load_current(i, Access::Sequential)?;
                let src_base = meta.interval_starts[i];
                let count = meta.partition_counts[i] as usize;
                let mut bytes = vec![0u8; count * m];
                if count > 0 {
                    self.store.partitions[i].read_at(0, &mut bytes, Access::Sequential)?;
                }
                edges_this_iter += count as u64;
                for r in 0..count {
                    let rec = &bytes[r * m..(r + 1) * m];
                    let src = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                    if !active.get(src) {
                        continue;
                    }
                    let dst = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                    let weight = if meta.weighted {
                        f32::from_le_bytes(rec[8..12].try_into().unwrap())
                    } else {
                        1.0
                    };
                    let ctx = EdgeCtx {
                        src,
                        dst,
                        weight,
                        src_out_degree: self.store.out_degrees[src as usize],
                    };
                    if let Some(msg) = self.program.scatter(&s_i[(src - src_base) as usize], &ctx) {
                        let j = hus_core::partition::interval_of(&meta.interval_starts, dst);
                        update_writers[j].write_pod(&dst)?;
                        update_writers[j].write_pod(&msg)?;
                    }
                }
            }
            for w in update_writers {
                w.finish()?;
            }

            // --- Gather phase: stream updates, fold into vertex values. --
            for j in 0..k {
                let _s = span!("gather.partition", interval = j);
                let dst_base = meta.interval_starts[j];
                let s_j = values.load_current(j, Access::Sequential)?;
                let mut d_j: Vec<Pr::Value> = s_j
                    .iter()
                    .enumerate()
                    .map(|(x, val)| self.program.reset(dst_base + x as u32, val))
                    .collect();
                let reader = scratch.reader(&format!("updates_{j}.bin"))?;
                let len = reader.len() as usize;
                let mut bytes = vec![0u8; len];
                if len > 0 {
                    reader.read_at(0, &mut bytes, Access::Sequential)?;
                }
                for r in 0..len / update_size {
                    let at = r * update_size;
                    let dst = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
                    let msg = pod::to_vec::<Pr::Value>(&bytes[at + 4..at + 4 + value_size])?[0];
                    if self.program.combine(&mut d_j[(dst - dst_base) as usize], msg) {
                        next_active.set(dst);
                    }
                }
                values.write_next(j, &d_j)?;
            }
            {
                let _s = span!("sync");
                for j in 0..k {
                    values.commit(j);
                }
            }

            total_edges += edges_this_iter;
            let it = IterationStats {
                iteration,
                // Edge-centric scatter = push classification (§2.2).
                model: UpdateModel::Rop,
                gated: false,
                c_rop: f64::NAN,
                c_cop: f64::NAN,
                rop_units: k as u32,
                cop_units: 0,
                active_vertices,
                active_edges,
                edges_processed: edges_this_iter,
                io: tracker.snapshot().since(&io_start),
                wall_seconds: t_start.elapsed().as_secs_f64(),
                phases: hus_obs::finish_iteration("xstream", iteration),
            };
            if let Some(sink) = hus_obs::sink::trace() {
                sink.emit_iteration("xstream", &it);
            }
            iterations.push(it);
            active = next_active;
            if always && iteration + 1 == self.config.max_iterations {
                break;
            }
        }

        let stats = RunStats {
            iterations,
            total_io: tracker.snapshot().since(&run_io_start),
            wall_seconds: run_start.elapsed().as_secs_f64(),
            edges_processed: total_edges,
            converged,
            threads: self.config.threads,
            resilience: resilience.snapshot().since(&run_res_start),
            checkpoints: Default::default(),
        };
        if let Some(sink) = hus_obs::sink::trace() {
            sink.emit_run("xstream", &stats);
        }
        Ok((values.read_all_current()?, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_algos::{reference, Bfs, PageRank, Wcc};
    use hus_gen::Csr;

    fn xs(el: &EdgeList, k: u32) -> (tempfile::TempDir, XStreamStore) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("xs")).unwrap();
        let store = XStreamStore::build_into(el, &dir, k).unwrap();
        (tmp, store)
    }

    #[test]
    fn partitions_preserve_input_order_unsorted() {
        let el = EdgeList::from_pairs([(0, 3), (0, 1), (3, 0), (1, 2)]);
        let (_t, store) = xs(&el, 2);
        assert_eq!(store.meta.partition_counts, vec![3, 1]);
        // Partition 0 holds the src<2 edges in input order (no sorting).
        let mut bytes = vec![0u8; 24];
        store.partitions[0].read_at(0, &mut bytes, Access::Sequential).unwrap();
        let first_dst = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        assert_eq!(first_dst, 3, "input order kept");
    }

    #[test]
    fn bfs_matches_reference() {
        let el = hus_gen::rmat(200, 1500, 3, Default::default());
        let want = reference::bfs_levels(&Csr::from_edge_list(&el), 0);
        let (_t, store) = xs(&el, 4);
        let (got, stats) =
            XStreamEngine::new(&store, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
        assert!(stats.converged);
        assert_eq!(got, want);
    }

    #[test]
    fn wcc_matches_reference() {
        let el = hus_gen::rmat(150, 600, 4, Default::default()).symmetrize();
        let want = reference::wcc_labels(&Csr::from_edge_list(&el));
        let (_t, store) = xs(&el, 3);
        let (got, _) = XStreamEngine::new(&store, &Wcc, BaselineConfig::default()).run().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn pagerank_matches_reference_exactly() {
        let el = hus_gen::rmat(120, 900, 5, Default::default());
        let want = reference::pagerank(&Csr::from_edge_list(&el), 0.85, 5);
        let (_t, store) = xs(&el, 3);
        let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
        let (got, _) = XStreamEngine::new(&store, &PageRank::new(120), cfg).run().unwrap();
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() <= 1e-3 * w.max(1e-6), "v{v}: {g} vs {w}");
        }
    }

    #[test]
    fn writes_update_files_proportional_to_live_edges() {
        // PageRank scatters every edge: per iteration the update files
        // carry one (dst, msg) record per edge — written AND read back.
        let el = hus_gen::rmat(150, 1200, 6, Default::default());
        let (_t, store) = xs(&el, 3);
        let cfg = BaselineConfig { max_iterations: 2, ..Default::default() };
        let (_vals, stats) = XStreamEngine::new(&store, &PageRank::new(150), cfg).run().unwrap();
        let e = el.num_edges() as u64;
        for it in &stats.iterations {
            assert!(
                it.io.write_bytes >= e * 8,
                "iteration {} wrote {} for {e} updates",
                it.iteration,
                it.io.write_bytes
            );
        }
    }

    #[test]
    fn io_sits_between_gridgraph_and_graphchi_on_pagerank() {
        let el = hus_gen::rmat(200, 1600, 7, Default::default());
        let (_t1, xs_store) = xs(&el, 3);
        let t2 = tempfile::tempdir().unwrap();
        let grid = crate::gridgraph::GridStore::build_into(
            &el,
            &StorageDir::create(t2.path().join("gg")).unwrap(),
            3,
        )
        .unwrap();
        let t3 = tempfile::tempdir().unwrap();
        let psw = crate::graphchi::PswStore::build_into(
            &el,
            &StorageDir::create(t3.path().join("psw")).unwrap(),
            3,
        )
        .unwrap();
        let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
        let pr = PageRank::new(200);
        let xs_io =
            XStreamEngine::new(&xs_store, &pr, cfg.clone()).run().unwrap().1.total_io.total_bytes();
        grid.dir().tracker().reset();
        let grid_io = crate::gridgraph::GridGraphEngine::new(&grid, &pr, cfg.clone())
            .run()
            .unwrap()
            .1
            .total_io
            .total_bytes();
        psw.dir().tracker().reset();
        let psw_io = crate::graphchi::GraphChiEngine::new(&psw, &pr, cfg)
            .run()
            .unwrap()
            .1
            .total_io
            .total_bytes();
        assert!(grid_io < xs_io, "GridGraph {grid_io} < X-Stream {xs_io}");
        assert!(xs_io < psw_io, "X-Stream {xs_io} < GraphChi {psw_io}");
    }
}
