//! GraphChi-style baseline: parallel sliding windows (Kyrola, Blelloch,
//! Guestrin — OSDI'12).
//!
//! The graph is split into `P` shards by destination interval, each
//! sorted by source. Executing interval `j` loads its *memory shard*
//! (all in-edges of interval `j`) plus a *sliding window* of every other
//! shard (the records whose sources lie in interval `j` — interval `j`'s
//! out-edges), reconstructs the in-edge subgraph in memory (the
//! "time-consuming subgraph construction phase" the HUS-Graph paper
//! calls out, §4.4), runs the vertex-centric update, and **writes the
//! edge values back** — messages travel through per-edge values on disk,
//! which is what makes GraphChi's I/O volume large (reads *and* writes
//! roughly `2·E` edge values per iteration).
//!
//! Like the original, execution is asynchronous: values written by
//! earlier execution intervals of an iteration are visible to later
//! ones. Propagation algorithms reach the same fixpoint as the
//! synchronous engines; PageRank reaches the same fixpoint along a
//! slightly different trajectory (the tests compare converged ranks).

use crate::common::{scratch_name, BaselineConfig};
use hus_core::active::ActiveSet;
use hus_core::predict::UpdateModel;
use hus_core::program::EdgeCtx;
use hus_core::stats::{IterationStats, RunStats};
use hus_core::VertexProgram;
use hus_gen::EdgeList;
use hus_obs::span;
use hus_storage::file::TrackedFile;
use hus_storage::{pod, Access, ReadBackend, Result, StorageDir, StorageError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// PSW manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PswMeta {
    /// Vertex count.
    pub num_vertices: u32,
    /// Edge count.
    pub num_edges: u64,
    /// Shard count `P`.
    pub p: u32,
    /// Whether records carry weights.
    pub weighted: bool,
    /// Interval boundaries (`p + 1` entries).
    pub interval_starts: Vec<u32>,
    /// Per shard: `p + 1` record indices delimiting the source-interval
    /// windows (shard records are sorted by source, so window `i` of
    /// shard `k` is records `window_offsets[k][i]..window_offsets[k][i+1]`).
    pub window_offsets: Vec<Vec<u64>>,
}

impl PswMeta {
    /// Edge record size in bytes (src + dst [+ weight]).
    pub fn record_bytes(&self) -> u64 {
        if self.weighted {
            12
        } else {
            8
        }
    }

    /// Record count of shard `k`.
    pub fn shard_count(&self, k: usize) -> u64 {
        *self.window_offsets[k].last().unwrap()
    }
}

const PSW_META: &str = "psw_meta.json";

fn shard_file(k: usize) -> String {
    format!("psw_shard_{k}.edges")
}

/// A built PSW representation.
pub struct PswStore {
    dir: StorageDir,
    meta: PswMeta,
    shards: Vec<Arc<dyn ReadBackend>>,
    out_degrees: Vec<u32>,
}

impl PswStore {
    /// Build the PSW shards of `el` into `dir`.
    pub fn build_into(el: &EdgeList, dir: &StorageDir, p: u32) -> Result<Self> {
        el.validate().map_err(StorageError::Corrupt)?;
        let p = p.clamp(1, el.num_vertices.max(1));
        let starts = hus_core::partition::interval_starts(
            el.num_vertices,
            p,
            hus_core::partition::PartitionStrategy::EqualVertices,
            &[],
        );
        let pu = p as usize;
        let weighted = el.is_weighted();

        // Bucket by destination interval, then sort each shard by source.
        let mut shard_edges: Vec<Vec<u32>> = vec![Vec::new(); pu];
        for (k, e) in el.edges.iter().enumerate() {
            let j = hus_core::partition::interval_of(&starts, e.dst);
            shard_edges[j].push(k as u32);
        }
        let mut window_offsets = Vec::with_capacity(pu);
        for (j, ids) in shard_edges.iter_mut().enumerate() {
            ids.sort_by_key(|&k| el.edges[k as usize].src);
            let mut w = dir.writer(&shard_file(j))?;
            let mut offsets = vec![0u64; pu + 1];
            for &k in ids.iter() {
                let e = &el.edges[k as usize];
                let i = hus_core::partition::interval_of(&starts, e.src);
                offsets[i + 1] += 1;
                w.write_pod(&e.src)?;
                w.write_pod(&e.dst)?;
                if weighted {
                    w.write_pod(&el.weights.as_ref().unwrap()[k as usize])?;
                }
            }
            for i in 0..pu {
                offsets[i + 1] += offsets[i];
            }
            window_offsets.push(offsets);
            w.finish()?;
        }

        let meta = PswMeta {
            num_vertices: el.num_vertices,
            num_edges: el.num_edges() as u64,
            p,
            weighted,
            interval_starts: starts,
            window_offsets,
        };
        dir.put_meta(PSW_META, &serde_json::to_string_pretty(&meta).expect("serializes"))?;
        let mut dw = dir.writer("psw_degrees.bin")?;
        dw.write_pod_slice(&el.out_degrees())?;
        dw.finish()?;
        Self::open(dir.clone())
    }

    /// Open a previously built PSW directory.
    pub fn open(dir: StorageDir) -> Result<Self> {
        let meta: PswMeta = serde_json::from_str(&dir.get_meta(PSW_META)?)
            .map_err(|e| StorageError::Corrupt(format!("bad psw meta: {e}")))?;
        let shards =
            (0..meta.p as usize).map(|k| dir.reader(&shard_file(k))).collect::<Result<Vec<_>>>()?;
        let deg_bytes = std::fs::read(dir.path("psw_degrees.bin"))
            .map_err(|e| StorageError::io_at(dir.path("psw_degrees.bin"), e))?;
        let out_degrees = pod::to_vec::<u32>(&deg_bytes)?;
        Ok(PswStore { dir, meta, shards, out_degrees })
    }

    /// The manifest.
    pub fn meta(&self) -> &PswMeta {
        &self.meta
    }

    /// Storage directory (tracker).
    pub fn dir(&self) -> &StorageDir {
        &self.dir
    }

    fn read_records(&self, k: usize, lo: u64, hi: u64) -> Result<Vec<u8>> {
        let m = self.meta.record_bytes();
        let mut bytes = vec![0u8; ((hi - lo) * m) as usize];
        if hi > lo {
            self.shards[k].read_at(lo * m, &mut bytes, Access::Sequential)?;
        }
        Ok(bytes)
    }
}

/// Per-run edge-value state for one shard (values + validity bytes).
struct ShardValues<V> {
    vals: TrackedFile,
    valid: TrackedFile,
    _marker: std::marker::PhantomData<V>,
}

impl<V: pod::Pod> ShardValues<V> {
    fn create(scratch: &StorageDir, k: usize, count: u64) -> Result<Self> {
        let vals = scratch.update(&format!("vals_{k}.bin"))?;
        let valid = scratch.update(&format!("valid_{k}.bin"))?;
        vals.set_len(count * std::mem::size_of::<V>() as u64)?;
        valid.set_len(count)?;
        Ok(ShardValues { vals, valid, _marker: std::marker::PhantomData })
    }

    fn load(&self, lo: u64, hi: u64) -> Result<(Vec<V>, Vec<u8>)> {
        let n = (hi - lo) as usize;
        let vals = hus_storage::read_pod_vec::<V, _>(
            &self.vals,
            lo * std::mem::size_of::<V>() as u64,
            n,
            Access::Sequential,
        )?;
        let valid = hus_storage::read_pod_vec::<u8, _>(&self.valid, lo, n, Access::Sequential)?;
        Ok((vals, valid))
    }

    fn store(&self, lo: u64, vals: &[V], valid: &[u8]) -> Result<()> {
        self.vals.write_at(lo * std::mem::size_of::<V>() as u64, pod::as_bytes(vals))?;
        self.valid.write_at(lo, valid)?;
        Ok(())
    }
}

/// The PSW engine.
pub struct GraphChiEngine<'a, Pr: VertexProgram> {
    store: &'a PswStore,
    program: &'a Pr,
    config: BaselineConfig,
}

impl<'a, Pr: VertexProgram> GraphChiEngine<'a, Pr> {
    /// Create an engine for `program` over the PSW store.
    pub fn new(store: &'a PswStore, program: &'a Pr, config: BaselineConfig) -> Self {
        GraphChiEngine { store, program, config }
    }

    /// Execute to convergence (or `max_iterations`).
    pub fn run(&self) -> Result<(Vec<Pr::Value>, RunStats)> {
        let meta = &self.store.meta;
        let v = meta.num_vertices;
        let p = meta.p as usize;
        let m = meta.record_bytes() as usize;
        hus_obs::init_from_env();
        let tracker = self.store.dir.tracker();
        let resilience = self.store.dir.resilience();
        let run_io_start = tracker.snapshot();
        let run_res_start = resilience.snapshot();
        let run_start = Instant::now();

        let scratch = self.store.dir.subdir(&scratch_name(&self.config, "psw"))?;
        // Per-shard edge-value state, zero-initialized (invalid).
        let shard_values: Vec<ShardValues<Pr::Value>> = (0..p)
            .map(|k| ShardValues::create(&scratch, k, meta.shard_count(k)))
            .collect::<Result<Vec<_>>>()?;
        // Vertex values (single buffer — PSW is asynchronous).
        let vertex_vals = scratch.update("vertex_vals.bin")?;
        {
            let init: Vec<Pr::Value> = (0..v).map(|x| self.program.init(x)).collect();
            vertex_vals.set_len(v as u64 * std::mem::size_of::<Pr::Value>() as u64)?;
            vertex_vals.write_at(0, pod::as_bytes(&init))?;
        }

        let always = self.program.always_active();
        let mut active = if always {
            ActiveSet::all(v)
        } else {
            ActiveSet::from_fn(v, |x| self.program.initially_active(x))
        };

        let mut iterations = Vec::new();
        let mut total_edges = 0u64;
        let mut converged = false;

        for iteration in 0..self.config.max_iterations {
            let active_vertices = active.count();
            if active_vertices == 0 {
                converged = true;
                break;
            }
            let active_edges = active.active_degree_sum(0, v, &self.store.out_degrees);
            let io_start = tracker.snapshot();
            let t_start = Instant::now();
            let next_active = if always { ActiveSet::all(v) } else { ActiveSet::new(v) };
            let mut edges_this_iter = 0u64;

            for j in 0..p {
                let _s = span!("psw.interval", interval = j);
                edges_this_iter += self.execute_interval(
                    j,
                    m,
                    &shard_values,
                    &vertex_vals,
                    &active,
                    &next_active,
                )?;
            }

            total_edges += edges_this_iter;
            let it = IterationStats {
                iteration,
                // Vertex-centric gather — the pull side of the paper's
                // classification (§2.2).
                model: UpdateModel::Cop,
                gated: false,
                c_rop: f64::NAN,
                c_cop: f64::NAN,
                rop_units: 0,
                cop_units: p as u32,
                active_vertices,
                active_edges,
                edges_processed: edges_this_iter,
                io: tracker.snapshot().since(&io_start),
                wall_seconds: t_start.elapsed().as_secs_f64(),
                phases: hus_obs::finish_iteration("graphchi", iteration),
            };
            if let Some(sink) = hus_obs::sink::trace() {
                sink.emit_iteration("graphchi", &it);
            }
            iterations.push(it);
            active = next_active;
            if always && iteration + 1 == self.config.max_iterations {
                break;
            }
        }

        let values: Vec<Pr::Value> =
            hus_storage::read_pod_vec(&vertex_vals, 0, v as usize, Access::Sequential)?;
        let stats = RunStats {
            iterations,
            total_io: tracker.snapshot().since(&run_io_start),
            wall_seconds: run_start.elapsed().as_secs_f64(),
            edges_processed: total_edges,
            converged,
            threads: self.config.threads,
            resilience: resilience.snapshot().since(&run_res_start),
            checkpoints: Default::default(),
        };
        if let Some(sink) = hus_obs::sink::trace() {
            sink.emit_run("graphchi", &stats);
        }
        Ok((values, stats))
    }

    /// One PSW execution interval: memory shard + sliding windows,
    /// gather-apply-scatter, write-back. Returns edge records touched.
    #[allow(clippy::too_many_arguments)]
    fn execute_interval(
        &self,
        j: usize,
        m: usize,
        shard_values: &[ShardValues<Pr::Value>],
        vertex_vals: &TrackedFile,
        active: &ActiveSet,
        next_active: &ActiveSet,
    ) -> Result<u64> {
        let meta = &self.store.meta;
        let p = meta.p as usize;
        let base = meta.interval_starts[j];
        let len = (meta.interval_starts[j + 1] - base) as usize;
        let value_size = std::mem::size_of::<Pr::Value>() as u64;
        let mut touched = 0u64;

        // --- Load phase ---------------------------------------------------
        // Memory shard: every in-edge of interval j, with values+validity.
        let mem_count = meta.shard_count(j);
        let mem_edges = self.store.read_records(j, 0, mem_count)?;
        let (mut mem_vals, mut mem_valid) = shard_values[j].load(0, mem_count)?;
        touched += mem_count;

        // Sliding windows: interval j's out-edges in every other shard.
        struct Window<V> {
            shard: usize,
            lo: u64,
            edges: Vec<u8>,
            vals: Vec<V>,
            valid: Vec<u8>,
            /// per-local-source record offsets within the window
            src_offsets: Vec<u32>,
        }
        let mut windows: Vec<Window<Pr::Value>> = Vec::with_capacity(p - 1);
        #[allow(clippy::needless_range_loop)] // k indexes meta tables and shard state alike
        for k in 0..p {
            if k == j {
                continue;
            }
            let (lo, hi) = (meta.window_offsets[k][j], meta.window_offsets[k][j + 1]);
            if lo == hi {
                continue;
            }
            let edges = self.store.read_records(k, lo, hi)?;
            let (vals, valid) = shard_values[k].load(lo, hi)?;
            touched += hi - lo;
            let src_offsets = src_offsets_of(&edges, m, base, len);
            windows.push(Window { shard: k, lo, edges, vals, valid, src_offsets });
        }
        // The memory shard's own window (sources in interval j, inside
        // shard j) is scattered to in place.
        let own_lo = meta.window_offsets[j][j] as usize;
        let own_hi = meta.window_offsets[j][j + 1] as usize;
        let own_offsets = src_offsets_of(&mem_edges[own_lo * m..own_hi * m], m, base, len);

        // Vertex values of the execution interval.
        let mut vals: Vec<Pr::Value> = hus_storage::read_pod_vec(
            vertex_vals,
            base as u64 * value_size,
            len,
            Access::Sequential,
        )?;

        // Subgraph construction: in-edge record indices per destination.
        let mut in_counts = vec![0u32; len + 1];
        for r in 0..mem_count as usize {
            let dst = rec_dst(&mem_edges, m, r);
            in_counts[(dst - base) as usize + 1] += 1;
        }
        for i in 0..len {
            in_counts[i + 1] += in_counts[i];
        }
        let mut in_pos = in_counts.clone();
        let mut in_records = vec![0u32; mem_count as usize];
        for r in 0..mem_count as usize {
            let dst = rec_dst(&mem_edges, m, r);
            let slot = &mut in_pos[(dst - base) as usize];
            in_records[*slot as usize] = r as u32;
            *slot += 1;
        }

        // --- Update phase --------------------------------------------------
        for local in 0..len {
            let vertex = base + local as u32;
            // Gather: fold valid in-edge values into reset(prev).
            let prev = vals[local];
            let mut newval = self.program.reset(vertex, &prev);
            for &r in &in_records[in_counts[local] as usize..in_counts[local + 1] as usize] {
                if mem_valid[r as usize] != 0 {
                    self.program.combine(&mut newval, mem_vals[r as usize]);
                }
            }
            let changed = newval != prev;
            if changed {
                vals[local] = newval;
            }
            if !(changed || active.get(vertex)) {
                continue;
            }
            // Scatter: write messages onto the vertex's out-edges. A
            // destination is (re)scheduled only when the edge's value
            // actually changes — GraphChi's selective scheduling; without
            // it the frontier never drains.
            let scatter_region =
                |edges: &[u8], vals: &mut [Pr::Value], valid: &mut [u8], lo: u32, hi: u32| {
                    for r in lo as usize..hi as usize {
                        let dst = rec_dst(edges, m, r);
                        let ctx = EdgeCtx {
                            src: vertex,
                            dst,
                            weight: rec_weight(edges, m, r, meta.weighted),
                            src_out_degree: self.store.out_degrees[vertex as usize],
                        };
                        if let Some(msg) = self.program.scatter(&newval, &ctx) {
                            if valid[r] == 0 || vals[r] != msg {
                                vals[r] = msg;
                                valid[r] = 1;
                                next_active.set(dst);
                            }
                        }
                    }
                };
            // Own-shard region (offsets relative to own window start).
            let (lo, hi) = (own_offsets[local], own_offsets[local + 1]);
            if lo < hi {
                let (lo, hi) = (own_lo as u32 + lo, own_lo as u32 + hi);
                scatter_region(&mem_edges, &mut mem_vals, &mut mem_valid, lo, hi);
            }
            for w in &mut windows {
                let (lo, hi) = (w.src_offsets[local], w.src_offsets[local + 1]);
                if lo < hi {
                    scatter_region(&w.edges, &mut w.vals, &mut w.valid, lo, hi);
                }
            }
        }

        // --- Write-back phase ----------------------------------------------
        shard_values[j].store(0, &mem_vals, &mem_valid)?;
        for w in &windows {
            shard_values[w.shard].store(w.lo, &w.vals, &w.valid)?;
        }
        vertex_vals.write_at(base as u64 * value_size, pod::as_bytes(&vals))?;
        Ok(touched)
    }
}

#[inline]
fn rec_src(edges: &[u8], m: usize, r: usize) -> u32 {
    u32::from_le_bytes(edges[r * m..r * m + 4].try_into().unwrap())
}

#[inline]
fn rec_dst(edges: &[u8], m: usize, r: usize) -> u32 {
    u32::from_le_bytes(edges[r * m + 4..r * m + 8].try_into().unwrap())
}

#[inline]
fn rec_weight(edges: &[u8], m: usize, r: usize, weighted: bool) -> f32 {
    if weighted {
        f32::from_le_bytes(edges[r * m + 8..r * m + 12].try_into().unwrap())
    } else {
        1.0
    }
}

/// Per-local-source record offsets of a source-sorted record region.
fn src_offsets_of(edges: &[u8], m: usize, base: u32, len: usize) -> Vec<u32> {
    let count = edges.len() / m.max(1);
    let mut offsets = vec![0u32; len + 1];
    for r in 0..count {
        let src = rec_src(edges, m, r);
        offsets[(src - base) as usize + 1] += 1;
    }
    for i in 0..len {
        offsets[i + 1] += offsets[i];
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use hus_algos::{reference, Bfs, PageRank, Sssp, Wcc};
    use hus_gen::Csr;

    fn psw(el: &EdgeList, p: u32) -> (tempfile::TempDir, PswStore) {
        let tmp = tempfile::tempdir().unwrap();
        let dir = StorageDir::create(tmp.path().join("psw")).unwrap();
        let store = PswStore::build_into(el, &dir, p).unwrap();
        (tmp, store)
    }

    #[test]
    fn window_offsets_partition_each_shard() {
        let el = hus_gen::rmat(100, 700, 2, hus_gen::RmatConfig::default());
        let (_t, store) = psw(&el, 4);
        let total: u64 = (0..4).map(|k| store.meta.shard_count(k)).sum();
        assert_eq!(total, el.num_edges() as u64);
        for k in 0..4 {
            let offs = &store.meta.window_offsets[k];
            assert!(offs.windows(2).all(|w| w[0] <= w[1]), "shard {k}: {offs:?}");
            assert_eq!(offs[0], 0);
        }
    }

    #[test]
    fn bfs_reaches_reference_fixpoint() {
        let el = hus_gen::rmat(200, 1500, 3, hus_gen::RmatConfig::default());
        let csr = Csr::from_edge_list(&el);
        let want = reference::bfs_levels(&csr, 0);
        let (_t, store) = psw(&el, 4);
        let (got, stats) =
            GraphChiEngine::new(&store, &Bfs::new(0), BaselineConfig::default()).run().unwrap();
        assert!(stats.converged);
        assert_eq!(got, want);
    }

    #[test]
    fn wcc_reaches_reference_fixpoint() {
        let el = hus_gen::rmat(120, 500, 4, hus_gen::RmatConfig::default()).symmetrize();
        let csr = Csr::from_edge_list(&el);
        let want = reference::wcc_labels(&csr);
        let (_t, store) = psw(&el, 3);
        let (got, _) = GraphChiEngine::new(&store, &Wcc, BaselineConfig::default()).run().unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn sssp_reaches_dijkstra_distances() {
        let el =
            hus_gen::rmat(150, 1100, 5, hus_gen::RmatConfig::default()).with_hash_weights(0.1, 4.0);
        let csr = Csr::from_edge_list(&el);
        let want = reference::sssp_distances(&csr, 0);
        let (_t, store) = psw(&el, 3);
        let (got, _) =
            GraphChiEngine::new(&store, &Sssp::new(0), BaselineConfig::default()).run().unwrap();
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            let ok =
                (g.is_infinite() && w.is_infinite()) || (g - w).abs() <= 1e-4 * w.abs().max(1.0);
            assert!(ok, "v{v}: {g} vs {w}");
        }
    }

    #[test]
    fn pagerank_converges_to_reference_fixpoint() {
        let el = hus_gen::rmat(100, 800, 6, hus_gen::RmatConfig::default());
        let csr = Csr::from_edge_list(&el);
        let want = reference::pagerank(&csr, 0.85, 60);
        let (_t, store) = psw(&el, 3);
        let cfg = BaselineConfig { max_iterations: 60, ..Default::default() };
        let (got, _) = GraphChiEngine::new(&store, &PageRank::new(100), cfg).run().unwrap();
        for (v, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() <= 0.02 * w.max(1e-6), "v{v}: {g} vs {w}");
        }
    }

    #[test]
    fn writes_edge_values_every_iteration() {
        // The defining I/O trait of GraphChi: per iteration it writes on
        // the order of the edge-value volume back to disk.
        let el = hus_gen::rmat(150, 1200, 7, hus_gen::RmatConfig::default());
        let (_t, store) = psw(&el, 3);
        let cfg = BaselineConfig { max_iterations: 3, ..Default::default() };
        let (_vals, stats) = GraphChiEngine::new(&store, &PageRank::new(150), cfg).run().unwrap();
        let e = el.num_edges() as u64;
        for it in &stats.iterations {
            // mem shard + windows ≈ 2E values of 4 bytes plus validity.
            assert!(
                it.io.write_bytes >= e * 4,
                "iteration {} wrote only {} bytes for {e} edges",
                it.iteration,
                it.io.write_bytes
            );
        }
    }

    #[test]
    fn io_volume_exceeds_gridgraph_on_pagerank() {
        // Figure 9's qualitative claim, at unit-test scale.
        let el = hus_gen::rmat(200, 1600, 8, hus_gen::RmatConfig::default());
        let (_t1, psw_store) = psw(&el, 3);
        let tmp2 = tempfile::tempdir().unwrap();
        let grid_dir = StorageDir::create(tmp2.path().join("gg")).unwrap();
        let grid = crate::gridgraph::GridStore::build_into(&el, &grid_dir, 3).unwrap();
        let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
        let (_, chi_stats) =
            GraphChiEngine::new(&psw_store, &PageRank::new(200), cfg.clone()).run().unwrap();
        let (_, grid_stats) =
            crate::gridgraph::GridGraphEngine::new(&grid, &PageRank::new(200), cfg).run().unwrap();
        assert!(
            chi_stats.total_io.total_bytes() > grid_stats.total_io.total_bytes(),
            "GraphChi {} vs GridGraph {}",
            chi_stats.total_io.total_bytes(),
            grid_stats.total_io.total_bytes()
        );
    }
}
