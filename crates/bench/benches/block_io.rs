//! Benchmarks of the on-disk building blocks: dual-block construction,
//! in-block streaming (COP's fetch), selective out-record loads (ROP's
//! fetch), and vertex-store interval transfers.

use criterion::{
    criterion_group, criterion_main, BatchSize, Criterion, Throughput as CrThroughput,
};
use hus_core::vertex_store::VertexStore;
use hus_core::{build, BuildConfig, HusGraph};
use hus_gen::rmat;
use hus_storage::{Access, StorageDir};
use std::hint::black_box;

fn graph_dir(vertices: u32, edges: usize, p: u32) -> (tempfile::TempDir, HusGraph) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    let el = rmat(vertices, edges, 7, Default::default());
    let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p(p)).unwrap();
    (tmp, g)
}

fn bench_builder(c: &mut Criterion) {
    let el = rmat(20_000, 200_000, 3, Default::default());
    let mut g = c.benchmark_group("builder");
    g.throughput(CrThroughput::Elements(el.num_edges() as u64));
    g.sample_size(10);
    g.bench_function("dual_block_200k_edges_p8", |b| {
        b.iter_batched(
            || tempfile::tempdir().unwrap(),
            |tmp| {
                let dir = StorageDir::create(tmp.path().join("g")).unwrap();
                build(&el, &dir, &BuildConfig::with_p(8)).unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_block_reads(c: &mut Criterion) {
    let (_tmp, g) = graph_dir(20_000, 200_000, 4);
    let mut group = c.benchmark_group("block_reads");

    group.bench_function("stream_in_block", |b| {
        b.iter(|| {
            let recs = g.stream_in_block(0, 0).unwrap();
            black_box(recs.len())
        })
    });

    let index = g.load_out_index(0, 0, Access::Sequential).unwrap();
    // Every 64th vertex of interval 0 with a non-empty range.
    let ranges: Vec<(u32, u32)> = (0..index.len() - 1)
        .step_by(64)
        .map(|v| (index[v], index[v + 1]))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    group.bench_function("selective_out_ranges", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(lo, hi) in &ranges {
                total += g.load_out_records(0, 0, lo, hi).unwrap().len();
            }
            black_box(total)
        })
    });

    group.bench_function("coalesced_out_block", |b| {
        b.iter(|| black_box(g.load_out_block_batch(0, 0).unwrap().len()))
    });
    group.finish();
}

fn bench_vertex_store(c: &mut Criterion) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("s")).unwrap();
    let starts: Vec<u32> = vec![0, 250_000, 500_000, 750_000, 1_000_000];
    let store: VertexStore<f32> = VertexStore::create(&dir, "v", &starts, |_| 1.0).unwrap();
    let buf = store.load_current(0, Access::Sequential).unwrap();
    let mut g = c.benchmark_group("vertex_store");
    g.throughput(CrThroughput::Bytes(250_000 * 4));
    g.bench_function("load_interval_1mb", |b| {
        b.iter(|| black_box(store.load_current(0, Access::Sequential).unwrap().len()))
    });
    g.bench_function("write_interval_1mb", |b| {
        b.iter(|| store.write_next(0, black_box(&buf)).unwrap())
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    use hus_storage::{CachedBackend, ReadBackend};
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("s")).unwrap();
    let mut w = dir.writer("d.bin").unwrap();
    w.write_pod_slice(&(0u64..262_144).collect::<Vec<u64>>()).unwrap(); // 2 MiB
    w.finish().unwrap();

    let mut g = c.benchmark_group("page_cache");
    let plain = dir.reader("d.bin").unwrap();
    let cached = CachedBackend::with_budget(dir.reader("d.bin").unwrap(), 4 << 20);
    // Warm the cache once.
    let mut buf = vec![0u8; 4096];
    for off in (0..2_000_000u64).step_by(4096) {
        cached.read_at(off, &mut buf, Access::Random).unwrap();
    }
    g.bench_function("hit_4k", |b| {
        b.iter(|| cached.read_at(black_box(8192), &mut buf, Access::Random).unwrap())
    });
    g.bench_function("uncached_4k", |b| {
        b.iter(|| plain.read_at(black_box(8192), &mut buf, Access::Random).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_builder, bench_block_reads, bench_vertex_store, bench_cache
}
criterion_main!(benches);
