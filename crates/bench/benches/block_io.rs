//! Benchmarks of the on-disk building blocks: dual-block construction,
//! in-block streaming (COP's fetch), selective out-record loads (ROP's
//! fetch), and vertex-store interval transfers.

use criterion::{
    criterion_group, criterion_main, BatchSize, Criterion, Throughput as CrThroughput,
};
use hus_core::vertex_store::VertexStore;
use hus_core::{build, BuildConfig, HusGraph};
use hus_gen::rmat;
use hus_storage::{Access, CachedBackend, ReadBackend, StorageDir};
use std::hint::black_box;

fn graph_dir(vertices: u32, edges: usize, p: u32) -> (tempfile::TempDir, HusGraph) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    let el = rmat(vertices, edges, 7, Default::default());
    let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p(p)).unwrap();
    (tmp, g)
}

fn bench_builder(c: &mut Criterion) {
    let el = rmat(20_000, 200_000, 3, Default::default());
    let mut g = c.benchmark_group("builder");
    g.throughput(CrThroughput::Elements(el.num_edges() as u64));
    g.sample_size(10);
    g.bench_function("dual_block_200k_edges_p8", |b| {
        b.iter_batched(
            || tempfile::tempdir().unwrap(),
            |tmp| {
                let dir = StorageDir::create(tmp.path().join("g")).unwrap();
                build(&el, &dir, &BuildConfig::with_p(8)).unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_block_reads(c: &mut Criterion) {
    let (_tmp, g) = graph_dir(20_000, 200_000, 4);
    let mut group = c.benchmark_group("block_reads");

    group.bench_function("stream_in_block", |b| {
        b.iter(|| {
            let recs = g.stream_in_block(0, 0).unwrap();
            black_box(recs.len())
        })
    });

    let index = g.load_out_index(0, 0, Access::Sequential).unwrap();
    // Every 64th vertex of interval 0 with a non-empty range.
    let ranges: Vec<(u32, u32)> = (0..index.len() - 1)
        .step_by(64)
        .map(|v| (index[v], index[v + 1]))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    group.bench_function("selective_out_ranges", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(lo, hi) in &ranges {
                total += g.load_out_records(0, 0, lo, hi).unwrap().len();
            }
            black_box(total)
        })
    });

    group.bench_function("coalesced_out_block", |b| {
        b.iter(|| black_box(g.load_out_block_batch(0, 0).unwrap().len()))
    });
    group.finish();
}

fn bench_vertex_store(c: &mut Criterion) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("s")).unwrap();
    let starts: Vec<u32> = vec![0, 250_000, 500_000, 750_000, 1_000_000];
    let store: VertexStore<f32> = VertexStore::create(&dir, "v", &starts, |_| 1.0).unwrap();
    let buf = store.load_current(0, Access::Sequential).unwrap();
    let mut g = c.benchmark_group("vertex_store");
    g.throughput(CrThroughput::Bytes(250_000 * 4));
    g.bench_function("load_interval_1mb", |b| {
        b.iter(|| black_box(store.load_current(0, Access::Sequential).unwrap().len()))
    });
    g.bench_function("write_interval_1mb", |b| {
        b.iter(|| store.write_next(0, black_box(&buf)).unwrap())
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("s")).unwrap();
    let mut w = dir.writer("d.bin").unwrap();
    w.write_pod_slice(&(0u64..262_144).collect::<Vec<u64>>()).unwrap(); // 2 MiB
    w.finish().unwrap();

    let mut g = c.benchmark_group("page_cache");
    let plain = dir.reader("d.bin").unwrap();
    let cached = CachedBackend::with_budget(dir.reader("d.bin").unwrap(), 4 << 20);
    // Warm the cache once.
    let mut buf = vec![0u8; 4096];
    for off in (0..2_000_000u64).step_by(4096) {
        cached.read_at(off, &mut buf, Access::Random).unwrap();
    }
    g.bench_function("hit_4k", |b| {
        b.iter(|| cached.read_at(black_box(8192), &mut buf, Access::Random).unwrap())
    });
    g.bench_function("uncached_4k", |b| {
        b.iter(|| plain.read_at(black_box(8192), &mut buf, Access::Random).unwrap())
    });
    g.finish();
}

/// One contended trial: `threads` workers each issue `reads` record-sized
/// (64 B) reads scattered over their own disjoint slice of hot
/// (pre-warmed) pages; returns the wall-clock for all of them to finish.
/// The access shape mirrors selective ROP probes — tiny reads, all cache
/// hits — so the cost is dominated by page lookup, exactly where a single
/// global lock serialises and a sharded cache does not.
fn contended_reads<B: ReadBackend + Send + Sync>(
    cache: &CachedBackend<B>,
    threads: usize,
    pages_per_thread: u64,
    reads: usize,
) -> std::time::Duration {
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            scope.spawn(move || {
                let mut buf = vec![0u8; 64];
                let region = t * pages_per_thread * 4096;
                let span = pages_per_thread * 4096 - 64;
                let mut lcg = t.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                for _ in 0..reads {
                    lcg = lcg.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    cache
                        .read_at(region + lcg % span, &mut buf, hus_storage::Access::Random)
                        .unwrap();
                }
                black_box(buf[0]);
            });
        }
    });
    start.elapsed()
}

/// Median wall-clock of 9 fresh contended trials against `cache`.
fn contended_median<B: ReadBackend + Send + Sync>(
    cache: &CachedBackend<B>,
    threads: usize,
    pages_per_thread: u64,
    reads: usize,
) -> u128 {
    let mut ns: Vec<u128> = (0..9)
        .map(|_| contended_reads(cache, threads, pages_per_thread, reads).as_nanos())
        .collect();
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn bench_contended_cache(c: &mut Criterion) {
    const THREADS: usize = 8;
    const PAGES_PER_THREAD: u64 = 16;
    const READS: usize = 20_000;

    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("s")).unwrap();
    let mut w = dir.writer("d.bin").unwrap();
    w.write_pod_slice(&(0u64..262_144).collect::<Vec<u64>>()).unwrap(); // 2 MiB
    w.finish().unwrap();

    // Auto-sized sharding (1 shard on a 1-core host, up to the cap on
    // big machines) against the old single global lock. Pinning 16
    // shards here used to *regress* low-core hosts — shard overhead with
    // no parallelism to amortise it — which is exactly what auto-sizing
    // fixes, and what the assert below pins down.
    let sharded = CachedBackend::new(dir.reader("d.bin").unwrap(), 4 << 20, 4096);
    let single = CachedBackend::with_shards(dir.reader("d.bin").unwrap(), 4 << 20, 4096, 1);
    // Warm every page both caches will serve so the trials measure pure
    // hit-path lock contention, not disk reads.
    let mut buf = vec![0u8; 4096];
    for off in (0..THREADS as u64 * PAGES_PER_THREAD).map(|p| p * 4096) {
        sharded.read_at(off, &mut buf, Access::Random).unwrap();
        single.read_at(off, &mut buf, Access::Random).unwrap();
    }

    let mut g = c.benchmark_group("page_cache_contended");
    g.sample_size(10);
    g.bench_function("auto_sharded_8thread", |b| {
        b.iter(|| contended_reads(&sharded, THREADS, PAGES_PER_THREAD, READS))
    });
    g.bench_function("single_lock_8thread", |b| {
        b.iter(|| contended_reads(&single, THREADS, PAGES_PER_THREAD, READS))
    });
    g.finish();

    let sharded_ns = contended_median(&sharded, THREADS, PAGES_PER_THREAD, READS);
    let single_ns = contended_median(&single, THREADS, PAGES_PER_THREAD, READS);
    let speedup = single_ns as f64 / sharded_ns as f64;
    println!(
        "page_cache_contended: auto {} shard(s) {sharded_ns} ns vs single-lock {single_ns} ns \
         ({speedup:.2}x)",
        sharded.num_shards(),
    );
    // Regression guard: auto-sizing must never make the sharded cache
    // meaningfully slower than the single lock (on a 1-core host the two
    // configurations are structurally identical; on multi-core hosts
    // sharding should win). 0.85 leaves room for scheduler noise.
    assert!(speedup >= 0.85, "auto-sized sharded cache regressed vs single lock: {speedup:.2}x");
}

/// One measured point of the scaling sweep.
struct SweepPoint {
    threads: usize,
    backend: &'static str,
    codec: &'static str,
    mb_per_s: f64,
    wall_s: f64,
}

/// Wall-clock a forced-COP PageRank run (the COP streaming workload:
/// every in-block of every column is streamed each iteration) and
/// return (seconds, logical bytes moved). Median of `trials` runs.
fn cop_stream_run(graph: &hus_core::HusGraph, threads: usize, trials: usize) -> (f64, u64) {
    use hus_core::{RunConfig, UpdateMode};
    let mut secs: Vec<f64> = Vec::with_capacity(trials);
    let mut bytes = 0u64;
    for _ in 0..trials {
        graph.dir().tracker().reset();
        let cfg = RunConfig {
            mode: UpdateMode::ForceCop,
            threads,
            max_iterations: 3,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let (_, stats) =
            hus_core::Engine::new(graph, &hus_algos::PageRank::new(graph.meta().num_vertices), cfg)
                .run()
                .unwrap();
        secs.push(t0.elapsed().as_secs_f64());
        bytes = stats.total_io.total_bytes();
    }
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (secs[secs.len() / 2], bytes)
}

/// The multicore scaling sweep (tentpole of the direct-I/O PR): COP
/// streaming throughput across threads × backend × codec, written to
/// `BENCH_pipeline.json` (schema 3). `host_cores` is recorded honestly;
/// the ≥1.3x parallel-vs-serial-file assertion only applies on hosts
/// that can actually run two workers at once.
fn bench_scaling_sweep(_c: &mut Criterion) {
    use hus_codec::Codec;
    use hus_core::{BuildConfig, HusGraph};
    use hus_storage::BackendKind;

    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let tmp = tempfile::tempdir().unwrap();
    let el = rmat(20_000, 200_000, 7, Default::default());

    let mut points: Vec<SweepPoint> = Vec::new();
    for (codec, codec_name) in [(Codec::Raw, "raw"), (Codec::DeltaVarint, "delta-varint")] {
        let root = tmp.path().join(codec_name);
        let dir = StorageDir::create_with(&root, BackendKind::File).unwrap();
        HusGraph::build_into(&el, &dir, &BuildConfig::with_p_codec(4, codec)).unwrap();
        for (kind, backend_name) in [
            (BackendKind::File, "file"),
            (BackendKind::Mmap, "mmap"),
            (BackendKind::Direct, "direct"),
        ] {
            let dir = StorageDir::open(&root).unwrap().with_backend(kind);
            let graph = HusGraph::open(dir).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let (wall_s, bytes) = cop_stream_run(&graph, threads, 3);
                points.push(SweepPoint {
                    threads,
                    backend: backend_name,
                    codec: codec_name,
                    mb_per_s: bytes as f64 / 1e6 / wall_s,
                    wall_s,
                });
            }
        }
    }

    let serial_file = points
        .iter()
        .find(|p| p.threads == 1 && p.backend == "file" && p.codec == "raw")
        .map(|p| p.mb_per_s)
        .unwrap();
    let best_parallel = points
        .iter()
        .filter(|p| p.threads >= 2)
        .max_by(|a, b| a.mb_per_s.partial_cmp(&b.mb_per_s).unwrap());
    let best = best_parallel.unwrap();
    let speedup = best.mb_per_s / serial_file;

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"backend\": \"{}\", \"codec\": \"{}\", \
                 \"mb_per_s\": {:.1}, \"wall_s\": {:.4}}}",
                p.threads, p.backend, p.codec, p.mb_per_s, p.wall_s
            )
        })
        .collect();
    let out = format!(
        "{{\n  {},\n  \"workload\": \"cop_stream_pagerank_3iter_200k_edges_p4\",\n  \
         \"points\": [\n{}\n  ],\n  \
         \"serial_file_mb_per_s\": {:.1},\n  \
         \"best_parallel\": {{\"threads\": {}, \"backend\": \"{}\", \"codec\": \"{}\", \
         \"mb_per_s\": {:.1}}},\n  \"parallel_speedup\": {:.2}\n}}\n",
        hus_bench::bench_json_preamble_v("cop_scaling", hus_bench::BENCH_PIPELINE_SCHEMA),
        rows.join(",\n"),
        serial_file,
        best.threads,
        best.backend,
        best.codec,
        best.mb_per_s,
        speedup,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &out).unwrap();
    println!("wrote {path}:\n{out}");

    // On a host with real parallelism, the pipeline must actually pay
    // off: the best parallel configuration has to beat the serial
    // buffered-file baseline by a clear margin. A single-core host can
    // only timeslice, so the curve there is recorded but not judged.
    if host_cores >= 2 {
        assert!(
            speedup >= 1.3,
            "best parallel config ({} threads, {}, {}) is only {speedup:.2}x over serial \
             FileBackend on a {host_cores}-core host",
            best.threads,
            best.backend,
            best.codec,
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_builder, bench_block_reads, bench_vertex_store, bench_cache,
        bench_contended_cache, bench_scaling_sweep
}
criterion_main!(benches);
