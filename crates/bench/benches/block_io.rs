//! Benchmarks of the on-disk building blocks: dual-block construction,
//! in-block streaming (COP's fetch), selective out-record loads (ROP's
//! fetch), and vertex-store interval transfers.

use criterion::{
    criterion_group, criterion_main, BatchSize, Criterion, Throughput as CrThroughput,
};
use hus_core::vertex_store::VertexStore;
use hus_core::{build, BuildConfig, HusGraph};
use hus_gen::rmat;
use hus_storage::{Access, CachedBackend, ReadBackend, StorageDir};
use std::hint::black_box;

fn graph_dir(vertices: u32, edges: usize, p: u32) -> (tempfile::TempDir, HusGraph) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    let el = rmat(vertices, edges, 7, Default::default());
    let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p(p)).unwrap();
    (tmp, g)
}

fn bench_builder(c: &mut Criterion) {
    let el = rmat(20_000, 200_000, 3, Default::default());
    let mut g = c.benchmark_group("builder");
    g.throughput(CrThroughput::Elements(el.num_edges() as u64));
    g.sample_size(10);
    g.bench_function("dual_block_200k_edges_p8", |b| {
        b.iter_batched(
            || tempfile::tempdir().unwrap(),
            |tmp| {
                let dir = StorageDir::create(tmp.path().join("g")).unwrap();
                build(&el, &dir, &BuildConfig::with_p(8)).unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn bench_block_reads(c: &mut Criterion) {
    let (_tmp, g) = graph_dir(20_000, 200_000, 4);
    let mut group = c.benchmark_group("block_reads");

    group.bench_function("stream_in_block", |b| {
        b.iter(|| {
            let recs = g.stream_in_block(0, 0).unwrap();
            black_box(recs.len())
        })
    });

    let index = g.load_out_index(0, 0, Access::Sequential).unwrap();
    // Every 64th vertex of interval 0 with a non-empty range.
    let ranges: Vec<(u32, u32)> = (0..index.len() - 1)
        .step_by(64)
        .map(|v| (index[v], index[v + 1]))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    group.bench_function("selective_out_ranges", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(lo, hi) in &ranges {
                total += g.load_out_records(0, 0, lo, hi).unwrap().len();
            }
            black_box(total)
        })
    });

    group.bench_function("coalesced_out_block", |b| {
        b.iter(|| black_box(g.load_out_block_batch(0, 0).unwrap().len()))
    });
    group.finish();
}

fn bench_vertex_store(c: &mut Criterion) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("s")).unwrap();
    let starts: Vec<u32> = vec![0, 250_000, 500_000, 750_000, 1_000_000];
    let store: VertexStore<f32> = VertexStore::create(&dir, "v", &starts, |_| 1.0).unwrap();
    let buf = store.load_current(0, Access::Sequential).unwrap();
    let mut g = c.benchmark_group("vertex_store");
    g.throughput(CrThroughput::Bytes(250_000 * 4));
    g.bench_function("load_interval_1mb", |b| {
        b.iter(|| black_box(store.load_current(0, Access::Sequential).unwrap().len()))
    });
    g.bench_function("write_interval_1mb", |b| {
        b.iter(|| store.write_next(0, black_box(&buf)).unwrap())
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("s")).unwrap();
    let mut w = dir.writer("d.bin").unwrap();
    w.write_pod_slice(&(0u64..262_144).collect::<Vec<u64>>()).unwrap(); // 2 MiB
    w.finish().unwrap();

    let mut g = c.benchmark_group("page_cache");
    let plain = dir.reader("d.bin").unwrap();
    let cached = CachedBackend::with_budget(dir.reader("d.bin").unwrap(), 4 << 20);
    // Warm the cache once.
    let mut buf = vec![0u8; 4096];
    for off in (0..2_000_000u64).step_by(4096) {
        cached.read_at(off, &mut buf, Access::Random).unwrap();
    }
    g.bench_function("hit_4k", |b| {
        b.iter(|| cached.read_at(black_box(8192), &mut buf, Access::Random).unwrap())
    });
    g.bench_function("uncached_4k", |b| {
        b.iter(|| plain.read_at(black_box(8192), &mut buf, Access::Random).unwrap())
    });
    g.finish();
}

/// One contended trial: `threads` workers each issue `reads` record-sized
/// (64 B) reads scattered over their own disjoint slice of hot
/// (pre-warmed) pages; returns the wall-clock for all of them to finish.
/// The access shape mirrors selective ROP probes — tiny reads, all cache
/// hits — so the cost is dominated by page lookup, exactly where a single
/// global lock serialises and a sharded cache does not.
fn contended_reads<B: ReadBackend + Send + Sync>(
    cache: &CachedBackend<B>,
    threads: usize,
    pages_per_thread: u64,
    reads: usize,
) -> std::time::Duration {
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            scope.spawn(move || {
                let mut buf = vec![0u8; 64];
                let region = t * pages_per_thread * 4096;
                let span = pages_per_thread * 4096 - 64;
                let mut lcg = t.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                for _ in 0..reads {
                    lcg = lcg.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    cache
                        .read_at(region + lcg % span, &mut buf, hus_storage::Access::Random)
                        .unwrap();
                }
                black_box(buf[0]);
            });
        }
    });
    start.elapsed()
}

fn bench_contended_cache(c: &mut Criterion) {
    const THREADS: usize = 8;
    const PAGES_PER_THREAD: u64 = 16;
    const READS: usize = 20_000;

    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("s")).unwrap();
    let mut w = dir.writer("d.bin").unwrap();
    w.write_pod_slice(&(0u64..262_144).collect::<Vec<u64>>()).unwrap(); // 2 MiB
    w.finish().unwrap();

    let sharded = CachedBackend::with_shards(dir.reader("d.bin").unwrap(), 4 << 20, 4096, 16);
    let single = CachedBackend::with_shards(dir.reader("d.bin").unwrap(), 4 << 20, 4096, 1);
    // Warm every page both caches will serve so the trials measure pure
    // hit-path lock contention, not disk reads.
    let mut buf = vec![0u8; 4096];
    for off in (0..THREADS as u64 * PAGES_PER_THREAD).map(|p| p * 4096) {
        sharded.read_at(off, &mut buf, Access::Random).unwrap();
        single.read_at(off, &mut buf, Access::Random).unwrap();
    }

    let mut g = c.benchmark_group("page_cache_contended");
    g.sample_size(10);
    g.bench_function("sharded_8thread", |b| {
        b.iter(|| contended_reads(&sharded, THREADS, PAGES_PER_THREAD, READS))
    });
    g.bench_function("single_lock_8thread", |b| {
        b.iter(|| contended_reads(&single, THREADS, PAGES_PER_THREAD, READS))
    });
    g.finish();

    // Side-channel summary for CI: medians over fresh trials, written next
    // to the workspace manifest as BENCH_pipeline.json.
    let median = |cache: &CachedBackend<_>| {
        let mut ns: Vec<u128> = (0..9)
            .map(|_| contended_reads(cache, THREADS, PAGES_PER_THREAD, READS).as_nanos())
            .collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    };
    let sharded_ns = median(&sharded);
    let single_ns = median(&single);
    // `host_cores` (from the shared preamble) qualifies the speedup:
    // shard-vs-single-lock contention only materialises when the worker
    // threads actually run in parallel; on a single-core host the two
    // configurations converge to the same timesliced throughput and the
    // ratio is noise around 1.0.
    let out = format!(
        "{{\n  {},\n  \"threads\": {THREADS},\n  \
         \"sharded_shards\": {},\n  \"sharded_ns_median\": {sharded_ns},\n  \
         \"single_lock_ns_median\": {single_ns},\n  \"speedup\": {:.2}\n}}\n",
        hus_bench::bench_json_preamble("page_cache_contended"),
        sharded.num_shards(),
        single_ns as f64 / sharded_ns as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &out).unwrap();
    println!("wrote {path}:\n{out}");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_builder, bench_block_reads, bench_vertex_store, bench_cache,
        bench_contended_cache
}
criterion_main!(benches);
