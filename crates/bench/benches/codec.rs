//! Benchmarks of the per-block edge codecs: encode and decode
//! throughput over real dual-block record runs, plus a side-channel
//! summary (compression ratio and decode throughput) written to
//! `BENCH_codec.json` for CI.

use criterion::{criterion_group, criterion_main, Criterion, Throughput as CrThroughput};
use hus_codec::Codec;
use hus_core::{BuildConfig, HusGraph};
use hus_gen::rmat;
use hus_storage::StorageDir;
use std::hint::black_box;

/// Decoded record runs (unweighted: 4-byte LE neighbor ids) of every
/// non-empty in-block of `g` — the exact byte sequences the builder
/// hands to `Codec::encode`.
fn in_block_runs(g: &HusGraph) -> Vec<Vec<u8>> {
    let mut runs = Vec::new();
    for j in 0..g.p() {
        for i in 0..g.p() {
            let recs = g.stream_in_block(i, j).unwrap();
            if recs.is_empty() {
                continue;
            }
            let mut run = Vec::with_capacity(recs.len() * 4);
            for k in 0..recs.len() {
                run.extend_from_slice(&recs.neighbor(k).to_le_bytes());
            }
            runs.push(run);
        }
    }
    runs
}

fn encode_all(codec: Codec, runs: &[Vec<u8>], out: &mut Vec<Vec<u8>>) -> usize {
    out.clear();
    let mut total = 0;
    for run in runs {
        let mut enc = Vec::new();
        codec.encode(run, 4, &mut enc);
        total += enc.len();
        out.push(enc);
    }
    total
}

fn decode_all(codec: Codec, encoded: &[Vec<u8>], runs: &[Vec<u8>], scratch: &mut Vec<u8>) {
    for (enc, run) in encoded.iter().zip(runs) {
        scratch.resize(run.len(), 0);
        codec.decode(enc, 4, scratch).unwrap();
        black_box(scratch.last());
    }
}

fn bench_codecs(c: &mut Criterion) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = StorageDir::create(tmp.path().join("g")).unwrap();
    let el = rmat(1 << 16, 400_000, 7, Default::default());
    let g = HusGraph::build_into(&el, &dir, &BuildConfig::with_p_codec(8, Codec::Raw)).unwrap();
    let runs = in_block_runs(&g);
    let decoded_bytes: u64 = runs.iter().map(|r| r.len() as u64).sum();

    let mut group = c.benchmark_group("codec");
    group.throughput(CrThroughput::Bytes(decoded_bytes));
    let mut encoded = Vec::new();
    for codec in Codec::ALL {
        group.bench_function(format!("encode/{}", codec.name()), |b| {
            b.iter(|| black_box(encode_all(codec, &runs, &mut encoded)))
        });
        encode_all(codec, &runs, &mut encoded);
        let mut scratch = Vec::new();
        group.bench_function(format!("decode/{}", codec.name()), |b| {
            b.iter(|| decode_all(codec, &encoded, &runs, &mut scratch))
        });
    }
    group.finish();

    // Side-channel summary for CI: compression ratio from a real
    // delta-varint build of the same graph, decode throughput as the
    // median of fresh whole-shard decode passes.
    let dv_dir = StorageDir::create(tmp.path().join("dv")).unwrap();
    let dv = HusGraph::build_into(&el, &dv_dir, &BuildConfig::with_p_codec(8, Codec::DeltaVarint))
        .unwrap();
    let meta = dv.meta();
    let mut decode_mbps = Vec::new();
    for codec in Codec::ALL {
        let enc_total = encode_all(codec, &runs, &mut encoded) as u64;
        let mut scratch = Vec::new();
        let mut ns: Vec<u128> = (0..9)
            .map(|_| {
                let t0 = std::time::Instant::now();
                decode_all(codec, &encoded, &runs, &mut scratch);
                t0.elapsed().as_nanos()
            })
            .collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2].max(1);
        decode_mbps.push((codec.name(), enc_total, decoded_bytes as f64 * 1e3 / median as f64));
    }
    let [(_, _, raw_mbps), (_, dv_enc, dv_mbps)] = decode_mbps[..] else { unreachable!() };
    // `decode_threads` / `buffers_resident` qualify the headline number:
    // the decode passes are single-threaded over heap-resident encoded
    // buffers, so the figure is pure CPU decode throughput — no I/O, no
    // parallel speedup baked in.
    let out = format!(
        "{{\n  {},\n  \"edges\": {},\n  \"decoded_bytes\": {decoded_bytes},\n  \
         \"decode_threads\": 1,\n  \"buffers_resident\": true,\n  \
         \"delta_varint_encoded_bytes\": {dv_enc},\n  \
         \"compression_ratio\": {:.3},\n  \
         \"raw_decode_mb_per_s\": {raw_mbps:.1},\n  \
         \"delta_varint_decode_mb_per_s\": {dv_mbps:.1}\n}}\n",
        hus_bench::bench_json_preamble("codec"),
        meta.num_edges,
        meta.compression_ratio(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json");
    std::fs::write(path, &out).unwrap();
    println!("wrote {path}:\n{out}");

    // Regression guard for the SIMD/branch-light decode rewrite: on
    // x86_64 CI runners the delta-varint decoder must clear 2 GB/s (the
    // old byte-at-a-time loop managed ~565 MB/s). Other architectures
    // and dev laptops record the number without judging it.
    if cfg!(target_arch = "x86_64") && std::env::var_os("CI").is_some() {
        assert!(
            dv_mbps >= 2000.0,
            "delta-varint decode regressed to {dv_mbps:.0} MB/s (< 2 GB/s) on x86_64 CI"
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codecs
}
criterion_main!(benches);
