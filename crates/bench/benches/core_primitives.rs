//! Micro-benchmarks of the hot in-memory primitives: frontier bitmap
//! operations, predictor evaluation, and pod byte-casting.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hus_core::{ActiveSet, Predictor};
use hus_storage::Throughput;
use std::hint::black_box;

fn bench_active_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("active_set");
    let n = 1_000_000u32;

    g.bench_function("set_1m_bits", |b| {
        b.iter_batched(
            || ActiveSet::new(n),
            |set| {
                for v in (0..n).step_by(3) {
                    set.set(v);
                }
                set
            },
            BatchSize::SmallInput,
        )
    });

    let sparse = ActiveSet::from_fn(n, |v| v % 1000 == 0);
    g.bench_function("iter_sparse_1m", |b| {
        b.iter(|| -> u64 { sparse.iter().map(|v| v as u64).sum() })
    });

    let dense = ActiveSet::from_fn(n, |v| v % 2 == 0);
    g.bench_function("iter_dense_1m", |b| {
        b.iter(|| -> u64 { dense.iter().map(|v| v as u64).sum() })
    });

    let degrees: Vec<u32> = (0..n).map(|v| v % 50).collect();
    g.bench_function("active_degree_sum_1m", |b| {
        b.iter(|| dense.active_degree_sum(0, n, black_box(&degrees)))
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let predictor = Predictor::new(
        Throughput { sequential_bps: 120e6, random_bps: 1e6, batched_bps: 40e6 },
        4.0,
        4,
    );
    c.bench_function("predictor/select_iteration", |b| {
        b.iter(|| {
            predictor.select_iteration(
                black_box(10_000),
                black_box(400_000),
                black_box(42_000_000),
                black_box(1_500_000_000),
                black_box(16),
            )
        })
    });
}

fn bench_pod(c: &mut Criterion) {
    let values: Vec<u32> = (0..1_000_000).collect();
    let bytes = hus_storage::pod::as_bytes(&values).to_vec();
    let mut g = c.benchmark_group("pod");
    g.bench_function("cast_slice_4mb", |b| {
        b.iter(|| hus_storage::pod::cast_slice::<u32>(black_box(&bytes)).unwrap().len())
    });
    g.bench_function("to_vec_4mb", |b| {
        b.iter(|| hus_storage::pod::to_vec::<u32>(black_box(&bytes)).unwrap().len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_active_set, bench_predictor, bench_pod
}
criterion_main!(benches);
