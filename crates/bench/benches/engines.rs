//! End-to-end engine benchmarks on a small fixed R-MAT graph: BFS and
//! PageRank under each system and each HUS update mode. (These measure
//! wall time through the page cache — the paper-scale comparisons with
//! modeled device time live in the `src/bin/*` experiment binaries.)

use criterion::{criterion_group, criterion_main, Criterion};
use hus_algos::{Bfs, PageRank};
use hus_baselines::{BaselineConfig, GraphChiEngine, GridGraphEngine};
use hus_bench::harness::{build_stores, Stores};
use hus_core::{Engine, RunConfig, UpdateMode};
use hus_gen::rmat;
use std::hint::black_box;

fn stores() -> (tempfile::TempDir, Stores, u32) {
    let tmp = tempfile::tempdir().unwrap();
    let el = rmat(10_000, 100_000, 9, Default::default());
    let stores = build_stores(&el, 4, tmp.path()).unwrap();
    let n = el.num_vertices;
    (tmp, stores, n)
}

fn bench_bfs(c: &mut Criterion) {
    let (_tmp, stores, _) = stores();
    let mut g = c.benchmark_group("bfs_10k_100k");
    g.sample_size(10);
    for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop, UpdateMode::Hybrid] {
        g.bench_function(format!("hus_{mode:?}"), |b| {
            b.iter(|| {
                let cfg = RunConfig { mode, threads: 2, ..Default::default() };
                black_box(Engine::new(&stores.hus, &Bfs::new(0), cfg).run().unwrap().1)
            })
        });
    }
    g.bench_function("gridgraph", |b| {
        b.iter(|| {
            black_box(
                GridGraphEngine::new(&stores.grid, &Bfs::new(0), BaselineConfig::default())
                    .run()
                    .unwrap()
                    .1,
            )
        })
    });
    g.bench_function("graphchi", |b| {
        b.iter(|| {
            black_box(
                GraphChiEngine::new(&stores.psw, &Bfs::new(0), BaselineConfig::default())
                    .run()
                    .unwrap()
                    .1,
            )
        })
    });
    g.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let (_tmp, stores, n) = stores();
    let pr = PageRank::new(n);
    let mut g = c.benchmark_group("pagerank5_10k_100k");
    g.sample_size(10);
    g.bench_function("hus_hybrid", |b| {
        b.iter(|| {
            let cfg = RunConfig { max_iterations: 5, threads: 2, ..Default::default() };
            black_box(Engine::new(&stores.hus, &pr, cfg).run().unwrap().1)
        })
    });
    g.bench_function("gridgraph", |b| {
        b.iter(|| {
            let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
            black_box(GridGraphEngine::new(&stores.grid, &pr, cfg).run().unwrap().1)
        })
    });
    g.bench_function("graphchi", |b| {
        b.iter(|| {
            let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
            black_box(GraphChiEngine::new(&stores.psw, &pr, cfg).run().unwrap().1)
        })
    });
    g.finish();
}

/// Telemetry overhead check: the same PageRank workload with
/// instrumentation fully disabled (the default path — every metric call
/// is one relaxed atomic load), with registry metrics on, and with
/// per-block heatmap attribution on. The disabled path is the
/// acceptance-gated one: its cost over an uninstrumented engine is the
/// atomic-load checks alone, and the emitted `BENCH_overhead.json`
/// records the measured on/off deltas so CI can watch for regressions.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let (_tmp, stores, n) = stores();
    let pr = PageRank::new(n);
    let run_once = || {
        let cfg = RunConfig { max_iterations: 5, threads: 2, ..Default::default() };
        black_box(Engine::new(&stores.hus, &pr, cfg).run().unwrap().1)
    };
    let configure = |metrics: bool, heatmap: bool| {
        hus_obs::set_enabled(metrics);
        hus_obs::set_heatmap_enabled(heatmap);
        hus_obs::attr::reset();
    };

    let mut g = c.benchmark_group("telemetry_pagerank5_10k_100k");
    g.sample_size(10);
    for (name, metrics, heatmap) in
        [("off", false, false), ("metrics", true, false), ("metrics_heatmap", true, true)]
    {
        g.bench_function(name, |b| {
            configure(metrics, heatmap);
            b.iter(run_once)
        });
    }
    g.finish();

    // Side-channel medians for CI: fresh trials per configuration,
    // interleaved round-robin so drift (page cache warmup, thermal)
    // spreads evenly across the three arms.
    let mut wall: [Vec<u128>; 3] = Default::default();
    for _ in 0..9 {
        for (slot, &(metrics, heatmap)) in
            [(false, false), (true, false), (true, true)].iter().enumerate()
        {
            configure(metrics, heatmap);
            let t0 = std::time::Instant::now();
            run_once();
            wall[slot].push(t0.elapsed().as_nanos());
        }
    }
    configure(false, false);
    let median = |v: &mut Vec<u128>| {
        v.sort_unstable();
        v[v.len() / 2].max(1)
    };
    let [mut off, mut metrics, mut heat] = wall;
    let (off_ns, metrics_ns, heat_ns) = (median(&mut off), median(&mut metrics), median(&mut heat));
    let pct = |on: u128| (on as f64 / off_ns as f64 - 1.0) * 100.0;
    let out = format!(
        "{{\n  {},\n  \"pagerank_iters\": 5,\n  \"off_ns_median\": {off_ns},\n  \
         \"metrics_ns_median\": {metrics_ns},\n  \"metrics_heatmap_ns_median\": {heat_ns},\n  \
         \"metrics_overhead_pct\": {:.2},\n  \"metrics_heatmap_overhead_pct\": {:.2}\n}}\n",
        hus_bench::bench_json_preamble("telemetry_overhead"),
        pct(metrics_ns),
        pct(heat_ns),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overhead.json");
    std::fs::write(path, &out).unwrap();
    println!("wrote {path}:\n{out}");
}

criterion_group!(benches, bench_bfs, bench_pagerank, bench_telemetry_overhead);
criterion_main!(benches);
