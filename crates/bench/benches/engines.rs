//! End-to-end engine benchmarks on a small fixed R-MAT graph: BFS and
//! PageRank under each system and each HUS update mode. (These measure
//! wall time through the page cache — the paper-scale comparisons with
//! modeled device time live in the `src/bin/*` experiment binaries.)

use criterion::{criterion_group, criterion_main, Criterion};
use hus_algos::{Bfs, PageRank};
use hus_baselines::{BaselineConfig, GraphChiEngine, GridGraphEngine};
use hus_bench::harness::{build_stores, Stores};
use hus_core::{Engine, RunConfig, UpdateMode};
use hus_gen::rmat;
use std::hint::black_box;

fn stores() -> (tempfile::TempDir, Stores, u32) {
    let tmp = tempfile::tempdir().unwrap();
    let el = rmat(10_000, 100_000, 9, Default::default());
    let stores = build_stores(&el, 4, tmp.path()).unwrap();
    let n = el.num_vertices;
    (tmp, stores, n)
}

fn bench_bfs(c: &mut Criterion) {
    let (_tmp, stores, _) = stores();
    let mut g = c.benchmark_group("bfs_10k_100k");
    g.sample_size(10);
    for mode in [UpdateMode::ForceRop, UpdateMode::ForceCop, UpdateMode::Hybrid] {
        g.bench_function(format!("hus_{mode:?}"), |b| {
            b.iter(|| {
                let cfg = RunConfig { mode, threads: 2, ..Default::default() };
                black_box(Engine::new(&stores.hus, &Bfs::new(0), cfg).run().unwrap().1)
            })
        });
    }
    g.bench_function("gridgraph", |b| {
        b.iter(|| {
            black_box(
                GridGraphEngine::new(&stores.grid, &Bfs::new(0), BaselineConfig::default())
                    .run()
                    .unwrap()
                    .1,
            )
        })
    });
    g.bench_function("graphchi", |b| {
        b.iter(|| {
            black_box(
                GraphChiEngine::new(&stores.psw, &Bfs::new(0), BaselineConfig::default())
                    .run()
                    .unwrap()
                    .1,
            )
        })
    });
    g.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let (_tmp, stores, n) = stores();
    let pr = PageRank::new(n);
    let mut g = c.benchmark_group("pagerank5_10k_100k");
    g.sample_size(10);
    g.bench_function("hus_hybrid", |b| {
        b.iter(|| {
            let cfg = RunConfig { max_iterations: 5, threads: 2, ..Default::default() };
            black_box(Engine::new(&stores.hus, &pr, cfg).run().unwrap().1)
        })
    });
    g.bench_function("gridgraph", |b| {
        b.iter(|| {
            let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
            black_box(GridGraphEngine::new(&stores.grid, &pr, cfg).run().unwrap().1)
        })
    });
    g.bench_function("graphchi", |b| {
        b.iter(|| {
            let cfg = BaselineConfig { max_iterations: 5, ..Default::default() };
            black_box(GraphChiEngine::new(&stores.psw, &pr, cfg).run().unwrap().1)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bfs, bench_pagerank);
criterion_main!(benches);
