//! Closed-loop load generation against a live `hus serve` daemon
//! (DESIGN.md §12): point-lookup QPS and tail latency for {1, 4, 8}
//! client threads, plus lookup latency while a full-graph analytics
//! scan holds one admission slot — summarized to `BENCH_serve.json`
//! for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use hus_core::{BuildConfig, HusGraph};
use hus_gen::rmat;
use hus_serve::{serve, Client, ServeConfig};
use hus_storage::StorageDir;
use std::hint::black_box;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

const NV: u32 = 1 << 14;
const BASE_EDGES: usize = 150_000;
const P: u32 = 8;
const PER_THREAD: usize = 2_000;
const SCAN_PR_ITERS: u32 = 3;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn build_graph(root: &Path) -> StorageDir {
    let el = rmat(NV, BASE_EDGES, 7, Default::default());
    let dir = StorageDir::create(root.join("g")).unwrap();
    HusGraph::build_into(&el, &dir, &BuildConfig::with_p(P)).unwrap();
    StorageDir::open(root.join("g")).unwrap()
}

struct LoadResult {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Closed loop: each thread sends degree/neighbors lookups back to
/// back over its own connection and records per-request wall time.
fn closed_loop(addr: &str, threads: usize) -> LoadResult {
    let t0 = Instant::now();
    let mut latencies_ns: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let mut state = 0x5eed_0000 + t as u64;
                    let mut lat = Vec::with_capacity(PER_THREAD);
                    for k in 0..PER_THREAD {
                        let v = (splitmix64(&mut state) % u64::from(NV)) as u32;
                        let op = if k % 2 == 0 { "degree" } else { "neighbors" };
                        let line = format!(r#"{{"op":"{op}","v":{v}}}"#);
                        let q0 = Instant::now();
                        let resp = c.request_raw(&line).unwrap();
                        lat.push(q0.elapsed().as_nanos() as u64);
                        assert!(resp.contains(r#""ok":true"#), "lookup failed: {resp}");
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();
    let pct = |p: f64| latencies_ns[((latencies_ns.len() - 1) as f64 * p) as usize] as f64 / 1e3;
    LoadResult { qps: latencies_ns.len() as f64 / wall, p50_us: pct(0.50), p99_us: pct(0.99) }
}

fn bench_serve(c: &mut Criterion) {
    let tmp = tempfile::tempdir().unwrap();
    let dir = build_graph(tmp.path());
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_inflight: 16,
        byte_budget: 0,
        accept_queue: 64,
        query_threads: 1,
        refresh_interval_ms: 1_000,
        deadline_ms: 0,
        idle_ms: 30_000,
        chaos_ops: false,
    };
    let mut server = serve(dir, config).unwrap();
    let addr = server.addr().to_string();

    // Criterion: single-request round trip (connect once, reuse).
    let mut client = Client::connect(&addr).unwrap();
    let mut group = c.benchmark_group("serve");
    group.bench_function("degree_roundtrip", |b| {
        let mut state = 42u64;
        b.iter(|| {
            let v = (splitmix64(&mut state) % u64::from(NV)) as u32;
            let resp = client.request_raw(&format!(r#"{{"op":"degree","v":{v}}}"#)).unwrap();
            black_box(resp);
        })
    });
    group.finish();
    drop(client);

    // Closed-loop QPS + tails at 1, 4 and 8 client threads.
    let sweep: Vec<(usize, LoadResult)> =
        [1usize, 4, 8].into_iter().map(|t| (t, closed_loop(&addr, t))).collect();

    // Lookup latency while one slot streams full-graph PageRank scans:
    // the analytics client loops until the lookup side finishes.
    let stop = AtomicBool::new(false);
    let scans = AtomicU64::new(0);
    let (under_scan, scans_done) = std::thread::scope(|s| {
        let scanner = s.spawn(|| {
            let mut c = Client::connect(&addr).unwrap();
            while !stop.load(Ordering::SeqCst) {
                let resp = c
                    .request_raw(&format!(r#"{{"op":"pagerank","iters":{SCAN_PR_ITERS}}}"#))
                    .unwrap();
                assert!(resp.contains(r#""ok":true"#), "scan failed: {resp}");
                scans.fetch_add(1, Ordering::SeqCst);
            }
        });
        let r = closed_loop(&addr, 4);
        stop.store(true, Ordering::SeqCst);
        scanner.join().unwrap();
        (r, scans.load(Ordering::SeqCst))
    });

    let rows: Vec<String> = sweep
        .iter()
        .map(|(t, r)| {
            format!(
                "    {{\"threads\": {t}, \"qps\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
                r.qps, r.p50_us, r.p99_us
            )
        })
        .collect();
    let out = format!(
        "{{\n  {},\n  \"num_vertices\": {NV},\n  \"base_edges\": {BASE_EDGES},\n  \
         \"per_thread_requests\": {PER_THREAD},\n  \"closed_loop\": [\n{}\n  ],\n  \
         \"under_scan\": {{\"threads\": 4, \"qps\": {:.0}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"scans_completed\": {scans_done}}}\n}}\n",
        hus_bench::bench_json_preamble("serve"),
        rows.join(",\n"),
        under_scan.qps,
        under_scan.p50_us,
        under_scan.p99_us,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &out).unwrap();
    println!("wrote {path}:\n{out}");

    // Loose sanity gate: a point lookup is one in-memory degree read or
    // a handful of 8-byte index reads plus a localhost round trip;
    // anything below 200 QPS single-client means the serve path grew
    // accidental blocking.
    let single = &sweep[0].1;
    assert!(single.qps > 200.0, "single-client lookups collapsed to {:.0} QPS", single.qps);

    server.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);
