//! Benchmarks of the streaming-ingest path (DESIGN.md §11): memtable
//! update throughput, the end-to-end ingest rate including spills, and
//! the read-side overhead of running PageRank through the delta
//! overlay at 0, 1 and 4 live delta runs — summarized to
//! `BENCH_ingest.json` for CI.

use criterion::{
    criterion_group, criterion_main, BatchSize, Criterion, Throughput as CrThroughput,
};
use hus_core::{BuildConfig, DynamicGraph, Engine, HusGraph, RunConfig};
use hus_gen::rmat;
use hus_storage::StorageDir;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

const NV: u64 = 1 << 14;
const BASE_EDGES: usize = 150_000;
const P: u32 = 8;
const BATCH: usize = 25_000;
const PR_ITERS: usize = 3;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One batch of pseudo-random updates (7 inserts : 1 delete).
fn apply(dg: &mut DynamicGraph, n: usize, seed: u64) {
    let mut state = seed;
    for _ in 0..n {
        let x = splitmix64(&mut state);
        let src = (x % NV) as u32;
        let dst = ((x >> 32) % NV) as u32;
        if x.is_multiple_of(8) {
            dg.delete_edge(src, dst).unwrap();
        } else {
            dg.insert_edge(src, dst, 1.0).unwrap();
        }
    }
}

fn build_base(root: &Path, name: &str) -> StorageDir {
    let el = rmat(NV as u32, BASE_EDGES, 7, Default::default());
    let dir = StorageDir::create(root.join(name)).unwrap();
    HusGraph::build_into(&el, &dir, &BuildConfig::with_p(P)).unwrap();
    StorageDir::open(root.join(name)).unwrap()
}

/// Prepare a directory carrying `runs` spilled delta runs of `BATCH`
/// updates each (distinct seeds, so runs overlap but are not equal).
fn with_runs(root: &Path, name: &str, runs: usize) -> StorageDir {
    let dir = build_base(root, name);
    let mut dg = DynamicGraph::open(dir).unwrap();
    for r in 0..runs {
        apply(&mut dg, BATCH, 100 + r as u64);
        dg.flush().unwrap();
    }
    assert_eq!(dg.run_count(), runs);
    StorageDir::open(root.join(name)).unwrap()
}

/// Single-threaded PageRank wall time over whatever `dir` holds (base
/// plus any live runs), overlay materialization included.
fn pagerank_ms(dir: StorageDir) -> f64 {
    let mut dg = DynamicGraph::open(dir).unwrap();
    let t0 = Instant::now();
    let g = dg.snapshot().unwrap();
    let pr = hus_algos::PageRank::new(NV as u32);
    let cfg = RunConfig { threads: 1, max_iterations: PR_ITERS, ..Default::default() };
    black_box(Engine::new(g, &pr, cfg).run().unwrap());
    t0.elapsed().as_secs_f64() * 1e3
}

fn median_ms(dir: &Path, samples: usize) -> f64 {
    let mut ms: Vec<f64> =
        (0..samples).map(|_| pagerank_ms(StorageDir::open(dir).unwrap())).collect();
    ms.sort_by(|a, b| a.total_cmp(b));
    ms[ms.len() / 2]
}

fn bench_ingest(c: &mut Criterion) {
    let tmp = tempfile::tempdir().unwrap();
    build_base(tmp.path(), "mem");

    // Criterion: pure memtable ingestion (no spill in the hot loop).
    let mut group = c.benchmark_group("ingest");
    group.throughput(CrThroughput::Elements(10_000));
    group.bench_function("memtable_10k_updates", |b| {
        b.iter_batched(
            || DynamicGraph::open(StorageDir::open(tmp.path().join("mem")).unwrap()).unwrap(),
            |mut dg| {
                apply(&mut dg, 10_000, 1);
                black_box(dg.memtable_len());
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();

    // End-to-end ingest rate: 4 batches, each spilled to its own run.
    let dir = build_base(tmp.path(), "rate");
    let mut dg = DynamicGraph::open(dir).unwrap();
    let updates = 4 * BATCH;
    let t0 = Instant::now();
    for r in 0..4 {
        apply(&mut dg, BATCH, 100 + r as u64);
        dg.flush().unwrap();
    }
    let updates_per_s = updates as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(dg.run_count(), 4);
    drop(dg);

    // Read overhead: identical PageRank work at 0, 1 and 4 live runs.
    // The same update seeds are used, so the 4-run graph strictly
    // contains the 1-run graph's updates.
    with_runs(tmp.path(), "r1", 1);
    with_runs(tmp.path(), "r4", 4);
    let ms0 = median_ms(&tmp.path().join("mem"), 5);
    let ms1 = median_ms(&tmp.path().join("r1"), 5);
    let ms4 = median_ms(&tmp.path().join("r4"), 5);

    let out = format!(
        "{{\n  {},\n  \"base_edges\": {BASE_EDGES},\n  \"updates\": {updates},\n  \
         \"spills\": 4,\n  \"updates_per_s\": {updates_per_s:.0},\n  \
         \"pr_iters\": {PR_ITERS},\n  \"pr_threads\": 1,\n  \
         \"pr_ms_0_runs\": {ms0:.2},\n  \"pr_ms_1_run\": {ms1:.2},\n  \
         \"pr_ms_4_runs\": {ms4:.2},\n  \
         \"read_overhead_1_run\": {:.3},\n  \"read_overhead_4_runs\": {:.3}\n}}\n",
        hus_bench::bench_json_preamble("ingest"),
        ms1 / ms0,
        ms4 / ms0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, &out).unwrap();
    println!("wrote {path}:\n{out}");

    // Loose sanity gate rather than a tight perf assertion: ingest
    // must stay comfortably above pathological (the memtable is an
    // in-memory BTreeMap; anything below ~50k updates/s means the
    // write path grew accidental I/O).
    assert!(updates_per_s > 50_000.0, "streaming ingest collapsed to {updates_per_s:.0} updates/s");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest
}
criterion_main!(benches);
