//! Shared machinery: prepare workloads, build all three representations,
//! run any (system, algorithm) pair, and model device time.

use hus_algos::{Bfs, PageRank, Sssp, Wcc};
use hus_baselines::{
    BaselineConfig, GraphChiEngine, GridGraphEngine, GridStore, PswStore, SemiExternalEngine,
    XStreamEngine, XStreamStore,
};
use hus_core::{BuildConfig, Engine, HusGraph, RunConfig, RunStats, UpdateMode};
use hus_gen::{Dataset, EdgeList};
use hus_storage::{CostModel, DeviceProfile, Result, StorageDir, Throughput};
use std::path::Path;

/// Which engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// HUS-Graph with the hybrid update strategy.
    Hus,
    /// HUS-Graph forced to Row-oriented Push in all iterations.
    HusRop,
    /// HUS-Graph forced to Column-oriented Pull in all iterations.
    HusCop,
    /// The GridGraph-style baseline.
    GridGraph,
    /// The GraphChi-style baseline.
    GraphChi,
    /// The X-Stream-style baseline (edge-centric scatter-gather).
    XStream,
    /// FlashGraph-style semi-external execution over the HUS store.
    SemiExternal,
}

impl SystemKind {
    /// Display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Hus => "HUS-Graph",
            SystemKind::HusRop => "ROP",
            SystemKind::HusCop => "COP",
            SystemKind::GridGraph => "GridGraph",
            SystemKind::GraphChi => "GraphChi",
            SystemKind::XStream => "X-Stream",
            SystemKind::SemiExternal => "SemiExt",
        }
    }
}

/// Which benchmark algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// 5 iterations of standard PageRank (all vertices active).
    PageRank,
    /// Breadth-first search to convergence.
    Bfs,
    /// Weakly connected components to convergence (symmetrized graph).
    Wcc,
    /// Single-source shortest paths to convergence (hash weights).
    Sssp,
}

impl AlgoKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoKind::PageRank => "PageRank",
            AlgoKind::Bfs => "BFS",
            AlgoKind::Wcc => "WCC",
            AlgoKind::Sssp => "SSSP",
        }
    }

    /// All four benchmark algorithms in the paper's order.
    pub const ALL: [AlgoKind; 4] =
        [AlgoKind::PageRank, AlgoKind::Bfs, AlgoKind::Wcc, AlgoKind::Sssp];
}

/// A prepared workload: the edge list in the form the algorithm needs,
/// plus run parameters.
pub struct Workload {
    /// Dataset display name.
    pub name: String,
    /// The edge list (symmetrized for WCC, weighted for SSSP).
    pub el: EdgeList,
    /// Algorithm to run.
    pub algo: AlgoKind,
    /// BFS/SSSP source (see [`pick_source`]).
    pub source: u32,
}

/// Prepare the workload for `(dataset, algo)` at the `HUS_SCALE` scale.
pub fn workload(dataset: Dataset, algo: AlgoKind) -> Workload {
    workload_from(dataset.name(), dataset.generate(), algo)
}

/// Prepare a workload from an explicit edge list.
pub fn workload_from(name: &str, el: EdgeList, algo: AlgoKind) -> Workload {
    let el = match algo {
        AlgoKind::Wcc => el.symmetrize(),
        AlgoKind::Sssp => el.with_hash_weights(1.0, 1.25),
        _ => el,
    };
    let source = pick_source(&el);
    Workload { name: name.to_string(), el, algo, source }
}

/// BFS/SSSP source selection: the lowest-out-degree vertex that still
/// reaches at least a quarter of the graph (verified with an in-memory
/// BFS). Starting at a hub collapses power-law traversals into 2–3
/// levels; a peripheral source gives the ramp-up levels real BFS
/// evaluations (e.g. Graph500's random roots) exhibit. Falls back to the
/// max-degree hub if no low-degree vertex reaches enough.
pub fn pick_source(el: &EdgeList) -> u32 {
    let degrees = el.out_degrees();
    if el.num_edges() == 0 {
        return 0;
    }
    let csr = hus_gen::Csr::from_edge_list(el);
    let mut candidates: Vec<u32> =
        (0..el.num_vertices).filter(|&v| degrees[v as usize] > 0).collect();
    candidates.sort_by_key(|&v| degrees[v as usize]);
    for &v in candidates.iter().take(16) {
        let levels = hus_algos::reference::bfs_levels(&csr, v);
        let reached = levels.iter().filter(|&&l| l != hus_algos::UNREACHED).count();
        if reached * 4 >= el.num_vertices as usize {
            return v;
        }
    }
    degrees.iter().enumerate().max_by_key(|(_, &d)| d).map(|(v, _)| v as u32).unwrap_or(0)
}

/// All three on-disk representations of one edge list, each in its own
/// subdirectory with its own tracker.
pub struct Stores {
    /// HUS-Graph dual-block representation.
    pub hus: HusGraph,
    /// GridGraph-style grid.
    pub grid: GridStore,
    /// GraphChi-style PSW shards.
    pub psw: PswStore,
    /// X-Stream-style streaming partitions.
    pub xs: XStreamStore,
}

/// Build all three representations of `el` under `root` with `p`
/// partitions each.
pub fn build_stores(el: &EdgeList, p: u32, root: &Path) -> Result<Stores> {
    let hus_dir = StorageDir::create(root.join("hus"))?;
    let hus = HusGraph::build_into(el, &hus_dir, &BuildConfig::with_p(p))?;
    let grid_dir = StorageDir::create(root.join("grid"))?;
    let grid = GridStore::build_into(el, &grid_dir, p)?;
    let psw_dir = StorageDir::create(root.join("psw"))?;
    let psw = PswStore::build_into(el, &psw_dir, p)?;
    let xs_dir = StorageDir::create(root.join("xs"))?;
    let xs = XStreamStore::build_into(el, &xs_dir, p)?;
    // Builder traffic must not pollute run measurements.
    hus.dir().tracker().reset();
    grid.dir().tracker().reset();
    psw.dir().tracker().reset();
    xs.dir().tracker().reset();
    Ok(Stores { hus, grid, psw, xs })
}

/// PageRank iteration count used throughout (paper: "five iterations").
pub const PAGERANK_ITERS: usize = 5;

/// Run `workload` on the HUS engine with an explicit configuration.
pub fn run_hus(graph: &HusGraph, w: &Workload, mut config: RunConfig) -> Result<RunStats> {
    if w.algo == AlgoKind::PageRank {
        config.max_iterations = PAGERANK_ITERS;
    }
    if let Some(tp) = env_probe_throughput() {
        config.throughput = tp;
    }
    let stats = match w.algo {
        AlgoKind::PageRank => {
            Engine::new(graph, &PageRank::new(w.el.num_vertices), config).run()?.1
        }
        AlgoKind::Bfs => Engine::new(graph, &Bfs::new(w.source), config).run()?.1,
        AlgoKind::Wcc => Engine::new(graph, &Wcc, config).run()?.1,
        AlgoKind::Sssp => Engine::new(graph, &Sssp::new(w.source), config).run()?.1,
    };
    Ok(stats)
}

/// Run `workload` on any system with `threads` workers.
pub fn run_system(
    stores: &Stores,
    system: SystemKind,
    w: &Workload,
    threads: usize,
) -> Result<RunStats> {
    match system {
        SystemKind::Hus | SystemKind::HusRop | SystemKind::HusCop => {
            let mode = match system {
                SystemKind::HusRop => UpdateMode::ForceRop,
                SystemKind::HusCop => UpdateMode::ForceCop,
                _ => UpdateMode::Hybrid,
            };
            stores.hus.dir().tracker().reset();
            run_hus(&stores.hus, w, RunConfig { mode, threads, ..Default::default() })
        }
        SystemKind::GridGraph => {
            stores.grid.dir().tracker().reset();
            let cfg = BaselineConfig {
                threads,
                max_iterations: baseline_iters(w.algo),
                ..Default::default()
            };
            let stats = match w.algo {
                AlgoKind::PageRank => {
                    GridGraphEngine::new(&stores.grid, &PageRank::new(w.el.num_vertices), cfg)
                        .run()?
                        .1
                }
                AlgoKind::Bfs => {
                    GridGraphEngine::new(&stores.grid, &Bfs::new(w.source), cfg).run()?.1
                }
                AlgoKind::Wcc => GridGraphEngine::new(&stores.grid, &Wcc, cfg).run()?.1,
                AlgoKind::Sssp => {
                    GridGraphEngine::new(&stores.grid, &Sssp::new(w.source), cfg).run()?.1
                }
            };
            Ok(stats)
        }
        SystemKind::XStream => {
            stores.xs.dir().tracker().reset();
            let cfg = BaselineConfig {
                threads,
                max_iterations: baseline_iters(w.algo),
                ..Default::default()
            };
            let stats = match w.algo {
                AlgoKind::PageRank => {
                    XStreamEngine::new(&stores.xs, &PageRank::new(w.el.num_vertices), cfg).run()?.1
                }
                AlgoKind::Bfs => XStreamEngine::new(&stores.xs, &Bfs::new(w.source), cfg).run()?.1,
                AlgoKind::Wcc => XStreamEngine::new(&stores.xs, &Wcc, cfg).run()?.1,
                AlgoKind::Sssp => {
                    XStreamEngine::new(&stores.xs, &Sssp::new(w.source), cfg).run()?.1
                }
            };
            Ok(stats)
        }
        SystemKind::SemiExternal => {
            stores.hus.dir().tracker().reset();
            let cfg = BaselineConfig {
                threads,
                max_iterations: baseline_iters(w.algo),
                ..Default::default()
            };
            let stats = match w.algo {
                AlgoKind::PageRank => {
                    SemiExternalEngine::new(&stores.hus, &PageRank::new(w.el.num_vertices), cfg)
                        .run()?
                        .1
                }
                AlgoKind::Bfs => {
                    SemiExternalEngine::new(&stores.hus, &Bfs::new(w.source), cfg).run()?.1
                }
                AlgoKind::Wcc => SemiExternalEngine::new(&stores.hus, &Wcc, cfg).run()?.1,
                AlgoKind::Sssp => {
                    SemiExternalEngine::new(&stores.hus, &Sssp::new(w.source), cfg).run()?.1
                }
            };
            Ok(stats)
        }
        SystemKind::GraphChi => {
            stores.psw.dir().tracker().reset();
            let cfg = BaselineConfig {
                threads,
                max_iterations: baseline_iters(w.algo),
                ..Default::default()
            };
            let stats = match w.algo {
                AlgoKind::PageRank => {
                    GraphChiEngine::new(&stores.psw, &PageRank::new(w.el.num_vertices), cfg)
                        .run()?
                        .1
                }
                AlgoKind::Bfs => {
                    GraphChiEngine::new(&stores.psw, &Bfs::new(w.source), cfg).run()?.1
                }
                AlgoKind::Wcc => GraphChiEngine::new(&stores.psw, &Wcc, cfg).run()?.1,
                AlgoKind::Sssp => {
                    GraphChiEngine::new(&stores.psw, &Sssp::new(w.source), cfg).run()?.1
                }
            };
            Ok(stats)
        }
    }
}

fn baseline_iters(algo: AlgoKind) -> usize {
    match algo {
        AlgoKind::PageRank => PAGERANK_ITERS,
        _ => 1_000,
    }
}

/// Schema version stamped into every `BENCH_*.json` side-channel file
/// (bump when an emitter's field set changes shape).
pub const BENCH_SCHEMA: u32 = 2;

/// Schema version of `BENCH_pipeline.json`: the multicore scaling sweep
/// (threads × backend × codec curves) emitted by the `block_io` bench.
pub const BENCH_PIPELINE_SCHEMA: u32 = 3;

/// Uniform preamble for the `BENCH_*.json` emitters: bench name, the
/// shared schema version, and the host's core count — results are only
/// comparable between hosts of similar parallelism, so every file
/// carries the qualifier.
pub fn bench_json_preamble(bench: &str) -> String {
    bench_json_preamble_v(bench, BENCH_SCHEMA)
}

/// [`bench_json_preamble`] with an explicit schema version, for emitters
/// whose field set has moved past [`BENCH_SCHEMA`].
pub fn bench_json_preamble_v(bench: &str, schema: u32) -> String {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    format!("\"bench\": {bench:?},\n  \"schema\": {schema},\n  \"host_cores\": {cores}")
}

/// Modeled HDD runtime of a run (the paper's evaluation device).
pub fn modeled_hdd_seconds(stats: &RunStats) -> f64 {
    stats.modeled_seconds(&CostModel::new(DeviceProfile::hdd()))
}

/// Environment knob: partition count (default 8).
pub fn env_p() -> u32 {
    std::env::var("HUS_P").ok().and_then(|s| s.parse().ok()).unwrap_or(8)
}

/// Environment knob: worker threads (default 16, the paper machine's
/// core count — the pool genuinely runs that many workers, and the
/// modeled CPU term divides by it).
pub fn env_threads() -> usize {
    std::env::var("HUS_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(16)
}

/// Environment knob: `HUS_PROBE=1` measures the host's real read
/// throughputs with the fio-style probe (`hus_storage::probe`, the same
/// measurement `hus probe` prints) and feeds them to the hybrid
/// predictor in place of the device preset. Measured once per process;
/// probe failures fall back to the preset with a warning.
pub fn env_probe_throughput() -> Option<Throughput> {
    static PROBED: std::sync::OnceLock<Option<Throughput>> = std::sync::OnceLock::new();
    *PROBED.get_or_init(|| {
        if std::env::var("HUS_PROBE").as_deref() != Ok("1") {
            return None;
        }
        let opts = hus_storage::probe::ProbeOptions::default();
        match hus_storage::probe::measure(&std::env::temp_dir(), &opts) {
            Ok(report) => Some(report.read),
            Err(e) => {
                eprintln!("warning: HUS_PROBE probe failed ({e}); using the device preset");
                None
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload(algo: AlgoKind) -> Workload {
        let el = hus_gen::rmat(200, 1500, 5, Default::default());
        workload_from("tiny", el, algo)
    }

    #[test]
    fn workload_prepares_per_algo() {
        let base = tiny_workload(AlgoKind::Bfs);
        let wcc = tiny_workload(AlgoKind::Wcc);
        let sssp = tiny_workload(AlgoKind::Sssp);
        assert!(wcc.el.num_edges() == 2 * base.el.num_edges(), "WCC symmetrized");
        assert!(sssp.el.is_weighted(), "SSSP weighted");
        assert!(!base.el.is_weighted());
        // Source reaches a substantial part of the graph.
        let csr = hus_gen::Csr::from_edge_list(&base.el);
        let levels = hus_algos::reference::bfs_levels(&csr, base.source);
        let reached = levels.iter().filter(|&&l| l != hus_algos::UNREACHED).count();
        assert!(reached * 4 >= base.el.num_vertices as usize, "reached {reached}");
    }

    #[test]
    fn all_systems_run_all_algorithms() {
        let tmp = tempfile::tempdir().unwrap();
        for algo in AlgoKind::ALL {
            let w = tiny_workload(algo);
            let stores = build_stores(&w.el, 3, &tmp.path().join(algo.name())).unwrap();
            for system in [
                SystemKind::Hus,
                SystemKind::HusRop,
                SystemKind::HusCop,
                SystemKind::GridGraph,
                SystemKind::GraphChi,
                SystemKind::XStream,
                SystemKind::SemiExternal,
            ] {
                let stats = run_system(&stores, system, &w, 2).unwrap();
                assert!(stats.num_iterations() > 0, "{system:?} {algo:?}");
                assert!(stats.total_io.total_bytes() > 0, "{system:?} {algo:?}");
                assert!(modeled_hdd_seconds(&stats) > 0.0);
            }
        }
    }

    #[test]
    fn pagerank_runs_exactly_five_iterations_everywhere() {
        let tmp = tempfile::tempdir().unwrap();
        let w = tiny_workload(AlgoKind::PageRank);
        let stores = build_stores(&w.el, 2, tmp.path()).unwrap();
        for system in [SystemKind::Hus, SystemKind::GridGraph, SystemKind::GraphChi] {
            let stats = run_system(&stores, system, &w, 1).unwrap();
            assert_eq!(stats.num_iterations(), PAGERANK_ITERS, "{system:?}");
        }
    }
}
