//! # hus-bench — experiment harness
//!
//! Regenerates every table and figure of the HUS-Graph paper's
//! evaluation (§4) against the scaled synthetic datasets (see
//! `DESIGN.md` for the substitution rationale and the per-experiment
//! index). Each `src/bin/*.rs` binary reproduces one table/figure and
//! prints it in a paper-like layout; `benches/` holds Criterion
//! micro-benchmarks of the core building blocks.
//!
//! Common knobs (environment variables):
//!
//! * `HUS_SCALE` — dataset scale divisor (default 1000; smaller = bigger
//!   graphs).
//! * `HUS_P` — interval/grid partition count for all systems (default 8).
//! * `HUS_THREADS` — worker threads (default: all cores).

#![warn(missing_docs)]

pub mod harness;
pub mod report;

pub use harness::{
    bench_json_preamble, bench_json_preamble_v, build_stores, run_hus, run_system, workload,
    AlgoKind, Stores, SystemKind, Workload, BENCH_PIPELINE_SCHEMA, BENCH_SCHEMA,
};
pub use report::{fmt_gb, fmt_secs, fmt_speedup, Table};
