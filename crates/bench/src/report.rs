//! Plain-text table rendering for the experiment binaries.
//!
//! The implementation moved to `hus-obs` (the observability crate's
//! human-readable sink); this module re-exports it so existing
//! `crate::report::*` call sites are unchanged.

pub use hus_obs::table::{fmt_gb, fmt_secs, fmt_speedup, Table};
