//! Extension experiment — semi-external execution (paper §5 related
//! work: FlashGraph / Graphene).
//!
//! Pins all vertex values in memory and accesses only edges on disk,
//! over the same dual-block files as HUS-Graph. The paper's claim: such
//! systems "close the performance gap between in-memory and out-of-core
//! graph processing" but "rely on expensive SSD arrays and large
//! memory". We verify the shape: on the HDD profile the semi-external
//! engine's advantage over HUS is modest (selective reads are still
//! seek-bound), on the SSD profile it pulls far ahead — while needing
//! `|V| × N` bytes of RAM that true out-of-core systems do not.

use hus_bench::fmt_secs;
use hus_bench::harness::{env_p, env_threads};
use hus_bench::{build_stores, run_system, workload, AlgoKind, SystemKind, Table};
use hus_gen::Dataset;
use hus_storage::{CostModel, DeviceProfile};

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = env_p();
    let threads = env_threads();
    println!("# Extension: semi-external vs out-of-core — SK2005 (scale {scale}, P={p})");

    let hdd = CostModel::new(DeviceProfile::hdd());
    let ssd = CostModel::new(DeviceProfile::ssd());

    for algo in [AlgoKind::Bfs, AlgoKind::Wcc, AlgoKind::Sssp, AlgoKind::PageRank] {
        let tmp = tempfile::tempdir().expect("tempdir");
        let w = workload(Dataset::Sk2005, algo);
        let stores = build_stores(&w.el, p, tmp.path()).expect("build");
        let mut t = Table::new(&["system", "I/O (MB)", "HDD", "SSD"]);
        for sys in [SystemKind::Hus, SystemKind::SemiExternal] {
            let stats = run_system(&stores, sys, &w, threads).expect("run");
            t.row(vec![
                sys.name().to_string(),
                format!("{:.1}", stats.total_io.total_bytes() as f64 / 1e6),
                fmt_secs(stats.modeled_seconds(&hdd)),
                fmt_secs(stats.modeled_seconds(&ssd)),
            ]);
        }
        t.print(&format!("{} on SK2005", algo.name()));
    }
    println!(
        "\nShape check: the semi-external engine does no vertex I/O, so it \
         always moves fewer bytes; its time advantage is largest on SSD \
         (selective reads stop being seek-bound) — at the cost of pinning \
         all |V|·N bytes of vertex state in RAM."
    );
}
