//! Table 3 — execution time of the four algorithms on all five datasets
//! under GraphChi, GridGraph and HUS-Graph.
//!
//! Reports modeled HDD seconds (DESIGN.md explains why modeled time is
//! the comparable metric on a page-cached container) and the speedup of
//! HUS-Graph over each baseline; the paper reports 3.3x–23.1x over
//! GraphChi and 1.4x–11.5x over GridGraph.

use hus_bench::harness::{env_p, env_threads, modeled_hdd_seconds};
use hus_bench::{build_stores, run_system, workload, AlgoKind, SystemKind, Table};
use hus_bench::{fmt_secs, fmt_speedup};
use hus_gen::Dataset;

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = env_p();
    let threads = env_threads();
    println!(
        "# Table 3: Execution time (modeled HDD seconds; scale {scale}, P={p}, {threads} threads)"
    );

    let mut t = Table::new(&["Dataset", "System", "PageRank", "BFS", "WCC", "SSSP"]);
    let mut speedups: Vec<(String, f64)> = Vec::new();

    for dataset in Dataset::ALL {
        let tmp = tempfile::tempdir().expect("tempdir");
        // seconds[algo][system]
        let mut secs = vec![[0.0f64; 3]; AlgoKind::ALL.len()];
        for (ai, algo) in AlgoKind::ALL.iter().enumerate() {
            let w = workload(dataset, *algo);
            let stores = build_stores(&w.el, p, &tmp.path().join(algo.name())).expect("build");
            for (si, sys) in
                [SystemKind::GraphChi, SystemKind::GridGraph, SystemKind::Hus].iter().enumerate()
            {
                let stats = run_system(&stores, *sys, &w, threads).expect("run");
                secs[ai][si] = modeled_hdd_seconds(&stats);
            }
        }
        for (si, sys) in
            [SystemKind::GraphChi, SystemKind::GridGraph, SystemKind::Hus].iter().enumerate()
        {
            t.row(vec![
                if si == 0 { dataset.name().to_string() } else { String::new() },
                sys.name().to_string(),
                fmt_secs(secs[0][si]),
                fmt_secs(secs[1][si]),
                fmt_secs(secs[2][si]),
                fmt_secs(secs[3][si]),
            ]);
        }
        for (ai, algo) in AlgoKind::ALL.iter().enumerate() {
            speedups.push((
                format!("{} {} vs GraphChi", dataset.name(), algo.name()),
                secs[ai][0] / secs[ai][2],
            ));
            speedups.push((
                format!("{} {} vs GridGraph", dataset.name(), algo.name()),
                secs[ai][1] / secs[ai][2],
            ));
        }
    }
    t.print("Execution time");

    let chi: Vec<f64> =
        speedups.iter().filter(|(n, _)| n.contains("GraphChi")).map(|(_, s)| *s).collect();
    let grid: Vec<f64> =
        speedups.iter().filter(|(n, _)| n.contains("GridGraph")).map(|(_, s)| *s).collect();
    let range = |v: &[f64]| {
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        (min, max)
    };
    let (cmin, cmax) = range(&chi);
    let (gmin, gmax) = range(&grid);
    println!(
        "\nHUS-Graph speedup over GraphChi: {}-{} (paper: 3.3x-23.1x)",
        fmt_speedup(cmin),
        fmt_speedup(cmax)
    );
    println!(
        "HUS-Graph speedup over GridGraph: {}-{} (paper: 1.4x-11.5x)",
        fmt_speedup(gmin),
        fmt_speedup(gmax)
    );
}
