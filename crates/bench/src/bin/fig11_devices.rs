//! Figure 11 — effect of I/O devices (HDD vs SSD).
//!
//! WCC and SSSP on SK2005 for all three systems, with the same measured
//! I/O traffic priced on the HDD and SSD device profiles. The paper
//! finds every system gains on SSD but HUS-Graph gains the most, since
//! its selective (random) accesses are what SSDs accelerate.
//!
//! Note: the HUS run's predictor is fed the device throughputs, so the
//! hybrid chooses more ROP iterations on the SSD — the runs genuinely
//! differ, not just their pricing.

use hus_bench::fmt_secs;
use hus_bench::harness::{env_p, env_threads};
use hus_bench::{build_stores, run_hus, run_system, workload, AlgoKind, SystemKind, Table};
use hus_core::RunConfig;
use hus_gen::Dataset;
use hus_storage::{CostModel, DeviceProfile};

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = env_p();
    let threads = env_threads();
    println!("# Figure 11: HDD vs SSD — SK2005 (scale {scale}, P={p})");

    let hdd = CostModel::new(DeviceProfile::hdd());
    let ssd = CostModel::new(DeviceProfile::ssd());

    for algo in [AlgoKind::Wcc, AlgoKind::Sssp] {
        let tmp = tempfile::tempdir().expect("tempdir");
        let w = workload(Dataset::Sk2005, algo);
        let stores = build_stores(&w.el, p, tmp.path()).expect("build");
        let mut t = Table::new(&["system", "HDD", "SSD", "speedup"]);
        for sys in
            [SystemKind::GraphChi, SystemKind::XStream, SystemKind::GridGraph, SystemKind::Hus]
        {
            let (hdd_secs, ssd_secs) = match sys {
                SystemKind::Hus => {
                    // Run twice: the predictor sees the device it runs on.
                    stores.hus.dir().tracker().reset();
                    let hdd_stats = run_hus(
                        &stores.hus,
                        &w,
                        RunConfig {
                            threads,
                            throughput: DeviceProfile::hdd().read,
                            ..Default::default()
                        },
                    )
                    .expect("hus hdd");
                    stores.hus.dir().tracker().reset();
                    let ssd_stats = run_hus(
                        &stores.hus,
                        &w,
                        RunConfig {
                            threads,
                            throughput: DeviceProfile::ssd().read,
                            ..Default::default()
                        },
                    )
                    .expect("hus ssd");
                    (hdd_stats.modeled_seconds(&hdd), ssd_stats.modeled_seconds(&ssd))
                }
                _ => {
                    let stats = run_system(&stores, sys, &w, threads).expect("run");
                    (stats.modeled_seconds(&hdd), stats.modeled_seconds(&ssd))
                }
            };
            t.row(vec![
                sys.name().to_string(),
                fmt_secs(hdd_secs),
                fmt_secs(ssd_secs),
                format!("{:.1}x", hdd_secs / ssd_secs),
            ]);
        }
        t.print(&format!("{} on SK2005", algo.name()));
    }
    println!(
        "\nShape check: every system speeds up on SSD; HUS-Graph's speedup is \
         the largest because selective random loads are what SSDs fix \
         (paper: 1.4x / 1.6x / 1.9x for GraphChi / X-Stream / HUS)."
    );
}
