//! Figure 1 — percentage of active edges per iteration for PageRank,
//! BFS and WCC on LiveJournal.
//!
//! Reproduces the motivation figure: PageRank keeps 100% of edges active
//! every iteration, while BFS and WCC need only a small fraction in most
//! iterations — the waste a full-I/O model pays.

use hus_bench::{build_stores, run_hus, workload, AlgoKind, Table};
use hus_core::RunConfig;
use hus_gen::Dataset;

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = hus_bench::harness::env_p();
    println!("# Figure 1: % of active edges per iteration — LiveJournal (scale {scale}, P={p})");

    let tmp = tempfile::tempdir().expect("tempdir");
    let mut series: Vec<(&str, Vec<f64>)> = Vec::new();

    for algo in [AlgoKind::PageRank, AlgoKind::Bfs, AlgoKind::Wcc] {
        let w = workload(Dataset::LiveJournal, algo);
        let stores = build_stores(&w.el, p, &tmp.path().join(algo.name())).expect("build stores");
        let stats = run_hus(&stores.hus, &w, RunConfig::default()).expect("run");
        let e = w.el.num_edges() as f64;
        let pct: Vec<f64> =
            stats.iterations.iter().map(|it| 100.0 * it.active_edges as f64 / e).collect();
        series.push((algo.name(), pct));
    }

    let iters = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut t = Table::new(&["iteration", "PageRank %", "BFS %", "WCC %"]);
    for i in 0..iters {
        let cell = |s: &[f64]| s.get(i).map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into());
        t.row(vec![
            (i + 1).to_string(),
            cell(&series[0].1),
            cell(&series[1].1),
            cell(&series[2].1),
        ]);
    }
    t.print("Active edges per iteration (% of |E|)");

    println!(
        "\nShape check: PageRank is pinned at 100%; BFS/WCC peak early and \
         collapse to <1% in the tail iterations (paper Figure 1)."
    );
}
