//! Figure 7 — effect of the hybrid update strategy.
//!
//! Runs BFS, WCC and SSSP on Twitter2010 and SK2005 under three update
//! strategies (pure ROP, pure COP, Hybrid) and reports the modeled HDD
//! runtime (subfigures a/c) and the I/O amount (subfigures b/d).

use hus_bench::harness::{env_p, env_threads, modeled_hdd_seconds};
use hus_bench::{build_stores, run_system, workload, AlgoKind, SystemKind, Table};
use hus_bench::{fmt_gb, fmt_secs};
use hus_gen::Dataset;

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = env_p();
    let threads = env_threads();
    println!("# Figure 7: ROP vs COP vs Hybrid (scale {scale}, P={p}, {threads} threads)");

    for dataset in [Dataset::Twitter2010, Dataset::Sk2005] {
        let tmp = tempfile::tempdir().expect("tempdir");
        let mut time_t = Table::new(&["algorithm", "ROP", "COP", "Hybrid"]);
        let mut io_t = Table::new(&["algorithm", "ROP", "COP", "Hybrid"]);
        for algo in [AlgoKind::Bfs, AlgoKind::Wcc, AlgoKind::Sssp] {
            let w = workload(dataset, algo);
            let stores = build_stores(&w.el, p, &tmp.path().join(algo.name())).expect("build");
            let mut times = Vec::new();
            let mut ios = Vec::new();
            let mut hybrid_best = true;
            let mut results = Vec::new();
            for sys in [SystemKind::HusRop, SystemKind::HusCop, SystemKind::Hus] {
                let stats = run_system(&stores, sys, &w, threads).expect("run");
                results.push((sys, modeled_hdd_seconds(&stats), stats.total_io.total_bytes()));
            }
            for (_, secs, bytes) in &results {
                times.push(fmt_secs(*secs));
                ios.push(fmt_gb(*bytes));
            }
            let hybrid_secs = results[2].1;
            if hybrid_secs > results[0].1 * 1.05 || hybrid_secs > results[1].1 * 1.05 {
                hybrid_best = false;
            }
            time_t.row(vec![
                format!("{}{}", algo.name(), if hybrid_best { "" } else { " (!)" }),
                times[0].clone(),
                times[1].clone(),
                times[2].clone(),
            ]);
            io_t.row(vec![algo.name().into(), ios[0].clone(), ios[1].clone(), ios[2].clone()]);
        }
        time_t.print(&format!("Modeled HDD execution time — {}", dataset.name()));
        io_t.print(&format!("I/O amount — {}", dataset.name()));
    }
    println!(
        "\nShape check: Hybrid matches the better of ROP/COP per workload \
         ((!) marks a >5% miss); ROP always moves the least data, COP the most."
    );
}
