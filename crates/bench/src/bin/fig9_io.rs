//! Figure 9 — I/O amount comparison.
//!
//! PageRank, BFS and SSSP on Twitter2010, SK2005 and UK2007 under
//! GraphChi, GridGraph and HUS-Graph; reports total bytes transferred
//! (reads + writes) and the read/write split. The paper finds HUS's I/O
//! 3.9x/1.9x smaller than GraphChi/GridGraph on PageRank and 18.4x/8.8x
//! smaller on the propagation algorithms.

use hus_bench::fmt_gb;
use hus_bench::harness::{env_p, env_threads};
use hus_bench::{build_stores, run_system, workload, AlgoKind, SystemKind, Table};
use hus_gen::Dataset;

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = env_p();
    let threads = env_threads();
    println!("# Figure 9: I/O amount (scale {scale}, P={p})");

    for dataset in [Dataset::Twitter2010, Dataset::Sk2005, Dataset::Uk2007] {
        let tmp = tempfile::tempdir().expect("tempdir");
        let mut t = Table::new(&[
            "algorithm",
            "GraphChi",
            "GridGraph",
            "HUS-Graph",
            "vs GraphChi",
            "vs GridGraph",
        ]);
        for algo in [AlgoKind::PageRank, AlgoKind::Bfs, AlgoKind::Sssp] {
            let w = workload(dataset, algo);
            let stores = build_stores(&w.el, p, &tmp.path().join(algo.name())).expect("build");
            let mut bytes = [0u64; 3];
            for (si, sys) in
                [SystemKind::GraphChi, SystemKind::GridGraph, SystemKind::Hus].iter().enumerate()
            {
                let stats = run_system(&stores, *sys, &w, threads).expect("run");
                bytes[si] = stats.total_io.total_bytes();
            }
            t.row(vec![
                algo.name().into(),
                fmt_gb(bytes[0]),
                fmt_gb(bytes[1]),
                fmt_gb(bytes[2]),
                format!("{:.1}x less", bytes[0] as f64 / bytes[2] as f64),
                format!("{:.1}x less", bytes[1] as f64 / bytes[2] as f64),
            ]);
        }
        t.print(&format!("I/O amount — {}", dataset.name()));
    }
    println!(
        "\nShape check: GraphChi's edge-value write-back dominates everywhere; \
         HUS's savings are modest on PageRank (format compactness only) and \
         large on BFS/SSSP (selective access)."
    );
}
