//! Ablation — number of intervals `P` and partitioning strategy
//! (paper §3.2: "by selecting P such that each in-block or out-block and
//! the corresponding vertices can fit in memory").
//!
//! Sweeps P for BFS and PageRank on Twitter2010 and compares equal-vertex
//! intervals against degree-balanced ones. Larger P shrinks blocks (less
//! memory) but multiplies the per-interval vertex/index overhead — the
//! `(2|V|/P + |V|)·N` term is paid per interval, so vertex I/O grows
//! linearly with P.

use hus_bench::harness::{env_threads, modeled_hdd_seconds};
use hus_bench::{fmt_gb, fmt_secs};
use hus_bench::{run_hus, workload, AlgoKind, Table};
use hus_core::{build, BuildConfig, HusGraph, PartitionStrategy, RunConfig};
use hus_gen::Dataset;
use hus_storage::StorageDir;
use std::time::Instant;

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let threads = env_threads();
    println!("# Ablation: interval count P and partition strategy (Twitter2010, scale {scale})");

    for algo in [AlgoKind::Bfs, AlgoKind::PageRank] {
        let w = workload(Dataset::Twitter2010, algo);
        let mut t = Table::new(&[
            "P",
            "strategy",
            "build time",
            "disk footprint",
            "modeled time",
            "run I/O",
        ]);
        for strategy in [PartitionStrategy::EqualVertices, PartitionStrategy::BalancedOutDegree] {
            for p in [2u32, 4, 8, 16, 32] {
                let tmp = tempfile::tempdir().expect("tempdir");
                let dir = StorageDir::create(tmp.path().join("g")).expect("dir");
                let cfg = BuildConfig { p: Some(p), partition: strategy, ..Default::default() };
                let start = Instant::now();
                build(&w.el, &dir, &cfg).expect("build");
                let build_secs = start.elapsed().as_secs_f64();
                let footprint = dir.disk_footprint().expect("footprint");
                let graph = HusGraph::open(dir).expect("open");
                graph.dir().tracker().reset();
                let stats =
                    run_hus(&graph, &w, RunConfig { threads, ..Default::default() }).expect("run");
                t.row(vec![
                    p.to_string(),
                    match strategy {
                        PartitionStrategy::EqualVertices => "equal-vertices",
                        PartitionStrategy::BalancedOutDegree => "degree-balanced",
                    }
                    .to_string(),
                    fmt_secs(build_secs),
                    fmt_gb(footprint),
                    fmt_secs(modeled_hdd_seconds(&stats)),
                    fmt_gb(stats.total_io.total_bytes()),
                ]);
            }
        }
        t.print(&format!("{} on Twitter2010", algo.name()));
    }
    println!(
        "\nShape check: run I/O grows with P (per-interval vertex/index \
         overhead) while per-block memory shrinks; degree-balanced intervals \
         help skewed graphs by evening row work."
    );
}
