//! Extension experiment — effect of the memory budget.
//!
//! The paper gives every system an 8 GB budget on a 16 GB machine (§4.1)
//! but does not sweep it. Here the HUS store is read through an LRU page
//! cache of varying size (see `hus-storage::cache`): cache hits never
//! reach the device, so billed I/O falls as the budget approaches the
//! working set — and the hybrid's advantage narrows, since re-streamed
//! COP blocks become cache hits.

use hus_bench::fmt_secs;
use hus_bench::harness::{env_p, env_threads, modeled_hdd_seconds};
use hus_bench::{run_hus, workload, AlgoKind, Table};
use hus_core::{BuildConfig, HusGraph, RunConfig, UpdateMode};
use hus_gen::Dataset;
use hus_storage::{BackendKind, StorageDir};

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = env_p();
    let threads = env_threads();
    println!("# Extension: memory budget sweep — Twitter2010 (scale {scale}, P={p})");

    for algo in [AlgoKind::Bfs, AlgoKind::PageRank] {
        let w = workload(Dataset::Twitter2010, algo);
        // Build once with the plain backend.
        let tmp = tempfile::tempdir().expect("tempdir");
        let plain = StorageDir::create(tmp.path().join("g")).expect("dir");
        hus_core::build(&w.el, &plain, &BuildConfig::with_p(p)).expect("build");
        let edges_bytes = w.el.num_edges() as u64 * if w.el.is_weighted() { 8 } else { 4 };

        let mut t =
            Table::new(&["cache budget", "device I/O (MB)", "modeled HDD", "mode mix (ROP/COP)"]);
        for budget in [0u64, edges_bytes / 8, edges_bytes / 2, edges_bytes * 2] {
            let kind = if budget == 0 {
                BackendKind::File
            } else {
                BackendKind::Cached { budget_bytes: budget }
            };
            let dir = StorageDir::open(tmp.path().join("g")).expect("open").with_backend(kind);
            let g = HusGraph::open(dir).expect("open graph");
            g.dir().tracker().reset();
            let cfg = RunConfig { mode: UpdateMode::Hybrid, threads, ..Default::default() };
            let stats = run_hus(&g, &w, cfg).expect("run");
            t.row(vec![
                if budget == 0 {
                    "none (cold)".to_string()
                } else {
                    format!("{:.1} MB", budget as f64 / 1e6)
                },
                format!("{:.1}", stats.total_io.total_bytes() as f64 / 1e6),
                fmt_secs(modeled_hdd_seconds(&stats)),
                format!(
                    "{}/{}",
                    stats.iterations_with_model(hus_core::UpdateModel::Rop),
                    stats.iterations_with_model(hus_core::UpdateModel::Cop)
                ),
            ]);
        }
        t.print(&format!("{} on Twitter2010", algo.name()));
    }
    println!(
        "\nShape check: device I/O falls monotonically with the cache budget; \
         once the edge data fits, repeated COP streams become cache hits and \
         the run approaches in-memory behavior."
    );
}
