//! Figure 10 — effect of thread count on performance.
//!
//! The paper's §4.5 observation: for the small LiveJournal graph, whose
//! data fits completely in memory, thread count has a significant impact
//! (except for GraphChi, whose deterministic parallelism limits
//! multi-thread utilization); for the large disk-resident UK2007 graph,
//! performance is I/O-bound and thread count barely matters.
//!
//! Modeling: the in-memory case uses the `memory` device profile (I/O at
//! RAM speed ⇒ CPU-bound ⇒ scales); the disk case uses the HDD profile.
//! GraphChi's CPU term carries an Amdahl serial fraction of 0.5,
//! standing in for the deterministic-parallelism constraint its paper
//! describes.

use hus_bench::fmt_secs;
use hus_bench::harness::{env_p, run_system};
use hus_bench::{build_stores, workload, AlgoKind, SystemKind, Table};
use hus_gen::Dataset;
use hus_storage::{CostModel, DeviceProfile};

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = env_p();
    println!("# Figure 10: thread scaling (scale {scale}, P={p})");

    let cases = [
        (Dataset::LiveJournal, AlgoKind::PageRank, DeviceProfile::memory(), "in-memory"),
        (Dataset::Uk2007, AlgoKind::Bfs, DeviceProfile::hdd(), "disk-resident"),
    ];
    for (dataset, algo, device, label) in cases {
        let tmp = tempfile::tempdir().expect("tempdir");
        let w = workload(dataset, algo);
        let stores = build_stores(&w.el, p, tmp.path()).expect("build");
        let mut t = Table::new(&["threads", "GraphChi", "GridGraph", "HUS-Graph"]);
        for threads in [1usize, 2, 4, 8, 16] {
            let mut cells = vec![threads.to_string()];
            for sys in [SystemKind::GraphChi, SystemKind::GridGraph, SystemKind::Hus] {
                let stats = run_system(&stores, sys, &w, threads).expect("run");
                let mut model = CostModel::new(device.clone());
                if sys == SystemKind::GraphChi {
                    model.serial_fraction = 0.5;
                }
                cells.push(fmt_secs(stats.modeled_seconds(&model)));
            }
            t.row(cells);
        }
        t.print(&format!("{} on {} ({label}, modeled seconds)", algo.name(), dataset.name()));
    }
    println!(
        "\nShape check: the in-memory graph scales with threads (GraphChi \
         least, per its deterministic parallelism); the disk-resident graph \
         is I/O-bound and nearly flat."
    );
}
