//! Ablation — the predictor's α gate and formula variant (paper §3.4).
//!
//! Sweeps the active-fraction gate α for BFS and WCC on SK2005, and
//! compares the refined predictor (vertex transfers billed sequential)
//! against the paper-literal formula. α = 0 forces COP always; α = 1
//! leaves every decision to the cost comparison.

use hus_bench::fmt_secs;
use hus_bench::harness::{env_p, env_threads, modeled_hdd_seconds};
use hus_bench::{build_stores, run_hus, workload, AlgoKind, Table};
use hus_core::{RunConfig, UpdateModel};
use hus_gen::Dataset;

fn main() {
    let scale = hus_gen::datasets::env_scale();
    let p = env_p();
    let threads = env_threads();
    println!("# Ablation: predictor α gate and formula variant (SK2005, scale {scale}, P={p})");

    for algo in [AlgoKind::Bfs, AlgoKind::Wcc] {
        let tmp = tempfile::tempdir().expect("tempdir");
        let w = workload(Dataset::Sk2005, algo);
        let stores = build_stores(&w.el, p, tmp.path()).expect("build");
        let mut t = Table::new(&[
            "alpha",
            "predictor",
            "modeled time",
            "I/O (MB)",
            "ROP iters",
            "COP iters",
        ]);
        for paper_literal in [false, true] {
            for alpha in [0.0, 0.01, 0.05, 0.20, 1.0] {
                stores.hus.dir().tracker().reset();
                let cfg = RunConfig {
                    alpha,
                    paper_literal_predictor: paper_literal,
                    threads,
                    ..Default::default()
                };
                let stats = run_hus(&stores.hus, &w, cfg).expect("run");
                t.row(vec![
                    format!("{:.0}%", alpha * 100.0),
                    if paper_literal { "paper-literal" } else { "refined" }.to_string(),
                    fmt_secs(modeled_hdd_seconds(&stats)),
                    format!("{:.1}", stats.total_io.total_bytes() as f64 / 1e6),
                    stats.iterations_with_model(UpdateModel::Rop).to_string(),
                    stats.iterations_with_model(UpdateModel::Cop).to_string(),
                ]);
            }
        }
        t.print(&format!("{} on SK2005", algo.name()));
    }
    println!(
        "\nShape check: the paper-literal formula never picks ROP (its vertex \
         term is billed at small-request random throughput), so it degenerates \
         to all-COP at every α; the refined predictor recovers the published \
         hybrid behavior, and α mainly bounds how long prediction is even \
         attempted."
    );
}
