//! Diagnostic: per-iteration ROP/COP cost profile for BFS and SSSP on
//! Twitter2010 — the raw data behind Figures 7 and 8, useful when
//! calibrating device profiles or the coalescing policy.

use hus_bench::*;
use hus_gen::Dataset;

fn main() {
    let tmp = tempfile::tempdir().unwrap();
    let p = harness::env_p();
    for algo in [AlgoKind::Bfs, AlgoKind::Sssp] {
        let w = workload(Dataset::Twitter2010, algo);
        let stores = build_stores(&w.el, p, &tmp.path().join(algo.name())).unwrap();
        for sys in [SystemKind::HusRop, SystemKind::HusCop, SystemKind::Hus] {
            let stats = run_system(&stores, sys, &w, harness::env_threads()).unwrap();
            println!("--- {} {} iters={} ---", algo.name(), sys.name(), stats.num_iterations());
            let model = hus_storage::CostModel::new(hus_storage::DeviceProfile::hdd());
            for it in &stats.iterations {
                println!(
                    "  it{:2} {:4} act_v={:7} act_e={:9} modeled={:8.4}s seq={:8.1}K rand={:7.1}K batched={:8.1}K wr={:7.1}K",
                    it.iteration,
                    it.model.to_string(),
                    it.active_vertices,
                    it.active_edges,
                    it.modeled_seconds(&model, stats.threads),
                    it.io.seq_read_bytes as f64 / 1e3,
                    it.io.rand_read_bytes as f64 / 1e3,
                    it.io.batched_read_bytes as f64 / 1e3,
                    it.io.write_bytes as f64 / 1e3
                );
            }
        }
    }
}
