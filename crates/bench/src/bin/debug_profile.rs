//! Profiler: run one (dataset, algorithm, system) combination with
//! tracing enabled, then render the run's per-phase breakdown and its
//! hottest blocks from the JSONL trace.
//!
//! ```text
//! debug_profile [DATASET] [ALGO] [SYSTEM]
//!   DATASET  livejournal | twitter | sk2005 | uk2007 | ukunion   (default: twitter)
//!   ALGO     pagerank | bfs | wcc | sssp                         (default: bfs)
//!   SYSTEM   hus | rop | cop | gridgraph | graphchi | xstream | semiext
//!                                                                (default: hus)
//! ```
//!
//! When `HUS_TRACE` is already set the trace is written there (and kept);
//! otherwise a scratch trace file is used. The usual `HUS_SCALE`,
//! `HUS_P`, `HUS_THREADS` knobs apply.

use hus_bench::*;
use hus_gen::Dataset;
use hus_obs::Table;
use serde_json::Value;

fn parse_dataset(s: &str) -> Option<Dataset> {
    match s.to_ascii_lowercase().as_str() {
        "livejournal" | "lj" => Some(Dataset::LiveJournal),
        "twitter" | "twitter2010" => Some(Dataset::Twitter2010),
        "sk2005" | "sk" => Some(Dataset::Sk2005),
        "uk2007" | "uk" => Some(Dataset::Uk2007),
        "ukunion" => Some(Dataset::UkUnion),
        _ => None,
    }
}

fn parse_algo(s: &str) -> Option<AlgoKind> {
    match s.to_ascii_lowercase().as_str() {
        "pagerank" | "pr" => Some(AlgoKind::PageRank),
        "bfs" => Some(AlgoKind::Bfs),
        "wcc" => Some(AlgoKind::Wcc),
        "sssp" => Some(AlgoKind::Sssp),
        _ => None,
    }
}

fn parse_system(s: &str) -> Option<SystemKind> {
    match s.to_ascii_lowercase().as_str() {
        "hus" | "hybrid" => Some(SystemKind::Hus),
        "rop" => Some(SystemKind::HusRop),
        "cop" => Some(SystemKind::HusCop),
        "gridgraph" | "grid" => Some(SystemKind::GridGraph),
        "graphchi" | "psw" => Some(SystemKind::GraphChi),
        "xstream" | "xs" => Some(SystemKind::XStream),
        "semiext" | "semi" | "semiexternal" => Some(SystemKind::SemiExternal),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: debug_profile [DATASET] [ALGO] [SYSTEM]\n\
         \x20 DATASET  livejournal|twitter|sk2005|uk2007|ukunion (default twitter)\n\
         \x20 ALGO     pagerank|bfs|wcc|sssp (default bfs)\n\
         \x20 SYSTEM   hus|rop|cop|gridgraph|graphchi|xstream|semiext (default hus)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        usage();
    }
    let dataset = match args.first() {
        Some(s) => parse_dataset(s).unwrap_or_else(|| usage()),
        None => Dataset::Twitter2010,
    };
    let algo = match args.get(1) {
        Some(s) => parse_algo(s).unwrap_or_else(|| usage()),
        None => AlgoKind::Bfs,
    };
    let system = match args.get(2) {
        Some(s) => parse_system(s).unwrap_or_else(|| usage()),
        None => SystemKind::Hus,
    };

    // Trace destination: honor HUS_TRACE when the caller set it, fall
    // back to a scratch file. Must happen before the first engine run
    // (init_from_env is one-shot).
    let tmp = tempfile::tempdir().unwrap();
    let keep_trace = std::env::var(hus_obs::TRACE_ENV).map(|v| !v.is_empty()).unwrap_or(false);
    let trace_path = if keep_trace {
        std::env::var(hus_obs::TRACE_ENV).unwrap()
    } else {
        let p = tmp.path().join("profile.jsonl").to_string_lossy().into_owned();
        std::env::set_var(hus_obs::TRACE_ENV, &p);
        p
    };
    hus_obs::init_from_env();
    // Profiling wants the per-block attribution registry regardless of
    // whether the caller exported HUS_HEATMAP.
    hus_obs::set_heatmap_enabled(true);

    let p = harness::env_p();
    let threads = harness::env_threads();
    let w = workload(dataset, algo);
    println!(
        "profiling {} / {} / {}  (|V|={}, |E|={}, P={p}, {threads} threads)",
        w.name,
        algo.name(),
        system.name(),
        w.el.num_vertices,
        w.el.num_edges()
    );
    let stores = build_stores(&w.el, p, &tmp.path().join("stores")).unwrap();
    let stats = run_system(&stores, system, &w, threads).unwrap();

    println!("\n{}", stats.summary());

    // Per-iteration profile (the raw data behind Figures 7 and 8).
    let model = hus_storage::CostModel::new(hus_storage::DeviceProfile::hdd());
    println!("\nper-iteration cost profile:");
    for it in &stats.iterations {
        println!(
            "  it{:2} {:4} act_v={:7} act_e={:9} modeled={:8.4}s seq={:8.1}K rand={:7.1}K batched={:8.1}K wr={:7.1}K",
            it.iteration,
            it.model.to_string(),
            it.active_vertices,
            it.active_edges,
            it.modeled_seconds(&model, stats.threads),
            it.io.seq_read_bytes as f64 / 1e3,
            it.io.rand_read_bytes as f64 / 1e3,
            it.io.batched_read_bytes as f64 / 1e3,
            it.io.write_bytes as f64 / 1e3
        );
    }

    // Cost-model audit trail: the predictor's committed C_rop/C_cop per
    // iteration against the I/O the iteration actually performed (HUS
    // engines only; the baselines never run the predictor).
    if matches!(system, SystemKind::Hus | SystemKind::HusRop | SystemKind::HusCop) {
        let tput = harness::env_probe_throughput()
            .unwrap_or_else(|| hus_storage::DeviceProfile::hdd().read);
        println!("\ncost-model audit (predicted vs actual, predictor throughputs):");
        print!("{}", hus_core::audit::render_table(&hus_core::audit::audit_rows(&stats, &tput)));
    }

    // Phase breakdown aggregated from the engine's in-band stats.
    let mut phase_table = Table::new(&["phase", "spans", "wall", "share", "io"]);
    let total_phase_wall: f64 =
        stats.iterations.iter().flat_map(|it| &it.phases).map(|p| p.wall_seconds).sum();
    let mut names: Vec<&str> = Vec::new();
    for it in &stats.iterations {
        for ph in &it.phases {
            if !names.contains(&ph.name.as_str()) {
                names.push(&ph.name);
            }
        }
    }
    for name in &names {
        let (mut wall, mut count, mut io) = (0.0, 0u64, 0u64);
        for it in &stats.iterations {
            for ph in it.phases.iter().filter(|p| p.name == *name) {
                wall += ph.wall_seconds;
                count += ph.count;
                io += ph.io_bytes;
            }
        }
        phase_table.row(vec![
            name.to_string(),
            count.to_string(),
            hus_obs::fmt_secs(wall),
            format!("{:.1}%", 100.0 * wall / total_phase_wall.max(1e-12)),
            hus_obs::fmt_gb(io),
        ]);
    }
    println!("\nphase breakdown (all iterations):");
    println!("{}", phase_table.render());

    // Registry metrics accumulated across the run (includes the storage
    // layer's latency histograms and the predictor's decision counters).
    let counters = hus_obs::metrics::global().counter_values();
    if !counters.is_empty() {
        let mut t = Table::new(&["counter", "value"]);
        for (name, v) in &counters {
            t.row(vec![name.to_string(), v.to_string()]);
        }
        println!("counters:");
        println!("{}", t.render());
    }
    let gauges = hus_obs::metrics::global().gauge_values();
    if !gauges.is_empty() {
        let mut t = Table::new(&["gauge", "value"]);
        for (name, v) in &gauges {
            t.row(vec![name.to_string(), v.to_string()]);
        }
        println!("gauges (last set value):");
        println!("{}", t.render());
    }
    let hists = hus_obs::metrics::global().histogram_snapshots();
    if !hists.is_empty() {
        let mut t = Table::new(&["histogram", "count", "mean", "p50", "p99"]);
        for (name, h) in &hists {
            t.row(vec![
                name.to_string(),
                h.count.to_string(),
                format!("{:.1}", h.mean()),
                h.quantile(0.5).to_string(),
                h.quantile(0.99).to_string(),
            ]);
        }
        println!("histograms (*_ns in nanoseconds; quantiles are pow-2 bucket bounds):");
        println!("{}", t.render());
    }

    // Hottest blocks by attributed device traffic: what each (i, j)
    // edge block actually cost in raw bytes, cache behavior and decode
    // time (per-block attribution registry).
    let hot_blocks = hus_obs::attr::top_k(10);
    if !hot_blocks.is_empty() {
        let mut t =
            Table::new(&["block", "raw", "encoded", "cache hit%", "decode", "retries", "degraded"]);
        for b in &hot_blocks {
            t.row(vec![
                format!("({}, {})", b.i, b.j),
                hus_obs::fmt_gb(b.raw_bytes),
                hus_obs::fmt_gb(b.encoded_bytes),
                format!("{:.1}", b.hit_rate() * 100.0),
                hus_obs::fmt_secs(b.decode_ns as f64 * 1e-9),
                b.retries.to_string(),
                b.degradations.to_string(),
            ]);
        }
        println!("hottest blocks (attribution registry):");
        println!("{}", t.render());
        print!("{}", hus_obs::attr::render_heatmap(&hus_obs::attr::snapshot()));
    }

    // Hottest blocks: the longest unit spans in the trace file.
    let text = std::fs::read_to_string(&trace_path).unwrap_or_default();
    let mut hot: Vec<(u64, u64, String, u64)> = Vec::new(); // (dur, iter, name, interval)
    for line in text.lines() {
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        if v.get("type") != Some(&Value::Str("span".into())) {
            continue;
        }
        let Some(&Value::U64(interval)) = v.get("interval") else {
            continue;
        };
        let Some(&Value::U64(dur)) = v.get("dur_ns") else {
            continue;
        };
        let Some(&Value::U64(iter)) = v.get("iteration") else {
            continue;
        };
        let Some(Value::Str(name)) = v.get("name") else {
            continue;
        };
        hot.push((dur, iter, name.clone(), interval));
    }
    hot.sort_by_key(|h| std::cmp::Reverse(h.0));
    let k = 10.min(hot.len());
    let mut hot_table = Table::new(&["span", "iter", "interval", "wall"]);
    for (dur, iter, name, interval) in hot.iter().take(k) {
        hot_table.row(vec![
            name.clone(),
            iter.to_string(),
            interval.to_string(),
            hus_obs::fmt_secs(*dur as f64 * 1e-9),
        ]);
    }
    println!("top-{k} hottest blocks (from {trace_path}):");
    println!("{}", hot_table.render());

    // Consistency check: phase wall times should cover the iteration.
    let engine_wall: f64 = stats.iterations.iter().map(|it| it.wall_seconds).sum();
    if engine_wall > 0.0 {
        println!(
            "phase coverage: {:.1}% of {:.3}s iteration wall",
            100.0 * total_phase_wall / engine_wall,
            engine_wall
        );
    }
    if !keep_trace {
        println!("(trace discarded; set {}=path.jsonl to keep it)", hus_obs::TRACE_ENV);
    }
}
